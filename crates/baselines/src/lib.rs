//! Reference engines for the SPECTRE reproduction.
//!
//! * [`sequential`] — windows processed strictly in order with a global
//!   consumed-event set. This is the semantics SPECTRE must reproduce
//!   exactly (paper §2.3: "deliver exactly those complex events that would
//!   be produced in sequential processing") and the source of the
//!   ground-truth consumption-group completion probabilities of
//!   Fig. 10(d)/(e).
//! * [`trex`] — a T-REX-style general-purpose engine: queries are compiled
//!   into explicit finite automata whose predicates run on a small stack
//!   bytecode VM (paper §4.2.3: "T-REX … automatically translates queries
//!   into state machines"). Single-threaded, no parallel consumption
//!   support.
//! * [`waitful`] — the "standard procedure" baseline of paper §2.3: windows
//!   are processed in parallel but a window may only start once every window
//!   it depends on has finished. Used as the no-speculation ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sequential;
pub mod trex;
pub mod waitful;

pub use sequential::{run_sequential, SequentialResult};
pub use trex::TrexEngine;
pub use waitful::{run_waitful, WaitfulResult};
