//! Sequential reference engine: the ground-truth semantics of window-based
//! CEP with consumption policies.
//!
//! Windows are processed strictly in window order; each window's events are
//! fed to a fresh [`WindowDetector`], skipping events already consumed by
//! earlier windows. Completions consume their events globally, excluding
//! them from all later windows (paper §1: "the constituent events of a
//! pattern instance detected in one window are excluded from all other
//! windows as well").
//!
//! The run also measures the *ground-truth completion probability* of
//! consumption groups — created consumption groups vs. produced complex
//! events — exactly the way the paper computes it for Fig. 10(d)/(e)
//! ("performing a sequential pass without speculations: the number of
//! created consumption groups divided by the number of produced complex
//! events").

use std::collections::HashSet;
use std::sync::Arc;

use spectre_events::{Event, Seq};
use spectre_query::window::compute_ranges;
use spectre_query::{ComplexEvent, DetectorAction, Query, WindowDetector};

/// Output and statistics of a sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialResult {
    /// All complex events, in (window id, detection order).
    pub complex_events: Vec<ComplexEvent>,
    /// Number of windows processed.
    pub windows: u64,
    /// Consumption groups (partial matches) created across all windows.
    pub cgs_created: u64,
    /// Consumption groups completed (complex events produced).
    pub cgs_completed: u64,
    /// Distinct events consumed.
    pub consumed_events: u64,
    /// Total detector feeds (events actually processed, after suppression).
    pub events_processed: u64,
    /// Events processed per window, indexed by window id — the per-window
    /// work profile used by the wait-based parallel model.
    pub per_window_processed: Vec<u64>,
}

impl SequentialResult {
    /// Ground-truth completion probability of consumption groups:
    /// `cgs_completed / cgs_created` (1.0 when no group was created).
    pub fn completion_probability(&self) -> f64 {
        if self.cgs_created == 0 {
            1.0
        } else {
            self.cgs_completed as f64 / self.cgs_created as f64
        }
    }
}

/// Runs the query over a finite stream with sequential window processing.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::Schema;
/// use spectre_datasets::{NyseConfig, NyseGenerator};
/// use spectre_query::queries;
/// use spectre_baselines::run_sequential;
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     NyseGenerator::new(NyseConfig::small(2000, 1), &mut schema).collect();
/// let query = Arc::new(queries::q1(&mut schema, 3, 200, Default::default()));
/// let result = run_sequential(&query, &events);
/// assert!(result.completion_probability() <= 1.0);
/// ```
pub fn run_sequential(query: &Arc<Query>, events: &[Event]) -> SequentialResult {
    let ranges = compute_ranges(query.window(), events);
    let mut consumed: HashSet<Seq> = HashSet::new();
    let mut result = SequentialResult {
        complex_events: Vec::new(),
        windows: ranges.len() as u64,
        cgs_created: 0,
        cgs_completed: 0,
        consumed_events: 0,
        events_processed: 0,
        per_window_processed: Vec::with_capacity(ranges.len()),
    };
    let mut actions = Vec::new();
    for range in &ranges {
        let mut window_processed = 0u64;
        let mut detector = WindowDetector::new(Arc::clone(query), range.bounds.id);
        for ev in &events[range.bounds.start_pos as usize..range.end_pos as usize] {
            if consumed.contains(&ev.seq()) {
                detector.on_suppressed();
                continue;
            }
            actions.clear();
            detector.on_event(ev, &mut actions);
            result.events_processed += 1;
            window_processed += 1;
            for action in &actions {
                if let DetectorAction::Completed {
                    complex,
                    consumed: c,
                    ..
                } = action
                {
                    result.complex_events.push(complex.clone());
                    for seq in c {
                        if consumed.insert(*seq) {
                            result.consumed_events += 1;
                        }
                    }
                }
            }
        }
        actions.clear();
        detector.on_window_end(&mut actions);
        result.cgs_created += detector.started_count();
        result.cgs_completed += detector.completed_count();
        result.per_window_processed.push(window_processed);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::{Schema, Value};
    use spectre_query::queries::{self, StockVocab};

    /// Builds the paper's Fig. 1 stream: A1 A2 B1 B2 B3 where the B events
    /// fall inside the windows opened by A1 (B1, B2) and A2 (B1..B3).
    fn fig1_stream(schema: &mut Schema) -> (Vec<Event>, StockVocab) {
        let vocab = StockVocab::install(schema);
        let a = schema.symbol("A");
        let b = schema.symbol("B");
        let mk = |seq: Seq, ts, sym| {
            Event::builder(vocab.quote)
                .seq(seq)
                .ts(ts)
                .attr(vocab.symbol, Value::Symbol(sym))
                .attr(vocab.open_price, 1.0)
                .attr(vocab.close_price, 2.0)
                .build()
        };
        // w1 = [A1 .. A1+60s) covers B1, B2; w2 = [A2 ..) covers B1, B2, B3.
        let events = vec![
            mk(0, 0, a),      // A1 opens w1 (scope 60_000)
            mk(1, 10_000, a), // A2 opens w2
            mk(2, 20_000, b), // B1
            mk(3, 40_000, b), // B2
            mk(4, 65_000, b), // B3 (outside w1, inside w2)
        ];
        (events, vocab)
    }

    #[test]
    fn fig1a_no_consumption_yields_five_complex_events() {
        let mut schema = Schema::new();
        let (events, _) = fig1_stream(&mut schema);
        let mut q = queries::qe(&mut schema, 60_000);
        // strip consumption: CP none
        q = {
            let pattern = Arc::clone(q.pattern());
            spectre_query::Query::builder("QE-none")
                .pattern_arc(pattern)
                .window(q.window().clone())
                .selection(q.selection())
                .consumption(spectre_query::ConsumptionPolicy::None)
                .build()
                .unwrap()
        };
        let result = run_sequential(&Arc::new(q), &events);
        let sets: Vec<Vec<Seq>> = result
            .complex_events
            .iter()
            .map(|c| c.constituents.clone())
            .collect();
        // Paper Fig. 1a: A1B1, A1B2, A2B1, A2B2, A2B3.
        assert_eq!(
            sets,
            vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![1, 4]]
        );
    }

    #[test]
    fn fig1b_selected_b_consumption_yields_three_complex_events() {
        let mut schema = Schema::new();
        let (events, _) = fig1_stream(&mut schema);
        let q = Arc::new(queries::qe(&mut schema, 60_000));
        let result = run_sequential(&q, &events);
        let sets: Vec<Vec<Seq>> = result
            .complex_events
            .iter()
            .map(|c| c.constituents.clone())
            .collect();
        // Paper Fig. 1b: A1B1, A1B2, A2B3 — B1 and B2 consumed in w1.
        assert_eq!(sets, vec![vec![0, 2], vec![0, 3], vec![1, 4]]);
        assert_eq!(result.consumed_events, 3);
    }

    #[test]
    fn completion_probability_is_one_without_created_groups() {
        let mut schema = Schema::new();
        let (events, _) = fig1_stream(&mut schema);
        // query that never matches: impossible symbol
        let ghost = schema.symbol("GHOST");
        let vocab = StockVocab::install(&mut schema);
        let pattern = spectre_query::Pattern::builder()
            .one("A", vocab.symbol_is(ghost))
            .build()
            .unwrap();
        let q = Arc::new(
            spectre_query::Query::builder("ghost")
                .pattern(pattern)
                .window(spectre_query::WindowSpec::count_sliding(4, 2).unwrap())
                .build()
                .unwrap(),
        );
        let r = run_sequential(&q, &events);
        assert_eq!(r.cgs_created, 0);
        assert_eq!(r.completion_probability(), 1.0);
    }

    #[test]
    fn q1_consumption_prevents_event_reuse_across_windows() {
        // Two leading rising quotes in quick succession: the window of the
        // first consumes the shared RE events; the second window sees fewer.
        let mut schema = Schema::new();
        let vocab = StockVocab::install(&mut schema);
        let lead = schema.symbol("L");
        let other = schema.symbol("O");
        let mk = |seq: Seq, sym, leading: bool| {
            Event::builder(vocab.quote)
                .seq(seq)
                .ts(seq)
                .attr(vocab.symbol, Value::Symbol(sym))
                .attr(vocab.open_price, 1.0)
                .attr(vocab.close_price, 2.0) // every quote rising
                .attr(vocab.leading, leading)
                .build()
        };
        let events = vec![
            mk(0, lead, true),   // opens w0, MLE of w0
            mk(1, lead, true),   // opens w1 (also rising, leading)
            mk(2, other, false), // RE
            mk(3, lead, true),   // opens w3; in w1 it starts a match
        ];
        // Q1 with q = 2, ws = 4.
        let q = Arc::new(queries::q1(&mut schema, 2, 4, Default::default()));
        let r = run_sequential(&q, &events);
        // Q1 is anchored (its window opens *on* the MLE), so each window
        // has at most one match, starting at its first event.
        // w0: MLE=0, RE={1,2} -> complete, consumes {0,1,2}.
        // w1 = [1..5): its anchor event 1 is consumed — no match.
        // w2 = [3..5): event 3 starts a match, abandoned at stream end.
        assert_eq!(r.complex_events.len(), 1);
        assert_eq!(r.complex_events[0].constituents, vec![0, 1, 2]);
        assert_eq!(r.cgs_created, 2);
        assert_eq!(r.cgs_completed, 1);
        assert!((r.completion_probability() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn without_consumption_both_windows_match() {
        let mut schema = Schema::new();
        let vocab = StockVocab::install(&mut schema);
        let lead = schema.symbol("L");
        let other = schema.symbol("O");
        let mk = |seq: Seq, sym, leading: bool| {
            Event::builder(vocab.quote)
                .seq(seq)
                .ts(seq)
                .attr(vocab.symbol, Value::Symbol(sym))
                .attr(vocab.open_price, 1.0)
                .attr(vocab.close_price, 2.0)
                .attr(vocab.leading, leading)
                .build()
        };
        let events = vec![
            mk(0, lead, true),
            mk(1, lead, true),
            mk(2, other, false),
            mk(3, other, false),
        ];
        let q1 = queries::q1(&mut schema, 2, 4, Default::default());
        let no_consume = Arc::new(
            spectre_query::Query::builder("Q1-none")
                .pattern_arc(Arc::clone(q1.pattern()))
                .window(q1.window().clone())
                .consumption(spectre_query::ConsumptionPolicy::None)
                .build()
                .unwrap(),
        );
        let r = run_sequential(&no_consume, &events);
        assert_eq!(r.complex_events.len(), 2);
        assert_eq!(r.complex_events[0].constituents, vec![0, 1, 2]);
        assert_eq!(r.complex_events[1].constituents, vec![1, 2, 3]);
    }

    #[test]
    fn events_processed_counts_suppressed_events_out() {
        let mut schema = Schema::new();
        let (events, _) = fig1_stream(&mut schema);
        let q = Arc::new(queries::qe(&mut schema, 60_000));
        let r = run_sequential(&q, &events);
        // w1 has 4 events (A1, A2, B1, B2), w2 has 4 (A2, B1, B2, B3) of
        // which B1, B2 are consumed → w2 processes 2.
        assert_eq!(r.events_processed, 4 + 2);
    }
}
