//! Pattern automata: the T-REX-style compiled form of a pattern.
//!
//! A [`Pattern`] compiles into an [`Automaton`] with one state per step;
//! Kleene-`+` states carry a self-loop, `SET` states a member transition
//! table, and negation guards compile to kill transitions. Runs
//! ([`AutoRun`]) walk the automaton with the same deterministic
//! *skip-till-next-match* semantics as the UDF matcher
//! ([`PartialMatch`](spectre_query::PartialMatch)) — the two are
//! independently implemented and differentially tested against each other.

use std::sync::Arc;

use spectre_events::{Event, EventType, Seq};
use spectre_query::pattern::{ElemId, Pattern, StepKind};
use spectre_query::EvalContext;

use super::bytecode::Program;

/// A compiled single-event matcher: type filter plus bytecode predicate.
#[derive(Debug, Clone)]
pub struct CompiledMatcher {
    /// Binding slot (`None` for kill guards).
    pub elem: Option<ElemId>,
    /// Optional event-type filter.
    pub event_type: Option<EventType>,
    /// Compiled predicate.
    pub program: Program,
}

impl CompiledMatcher {
    fn matches(&self, ctx: &dyn EvalContext) -> bool {
        if let Some(ty) = self.event_type {
            if ctx.current().event_type() != ty {
                return false;
            }
        }
        self.program.matches(ctx)
    }
}

/// The kind of an automaton state.
#[derive(Debug, Clone)]
pub enum AutoStateKind {
    /// Single-event state.
    One(CompiledMatcher),
    /// Kleene-`+` state with a self-loop.
    Plus(CompiledMatcher),
    /// Unordered set state; each member fires exactly once.
    Set(Vec<CompiledMatcher>),
}

/// One automaton state: what it matches, plus kill transitions (negation
/// guards).
#[derive(Debug, Clone)]
pub struct AutoState {
    /// Matching transitions.
    pub kind: AutoStateKind,
    /// Kill transitions: a matching event sends the run to the dead state.
    pub kills: Vec<CompiledMatcher>,
}

/// A compiled pattern automaton.
#[derive(Debug, Clone)]
pub struct Automaton {
    states: Vec<AutoState>,
    elem_count: usize,
}

/// Outcome of stepping an [`AutoRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Event irrelevant to this run.
    Ignored,
    /// Event bound by `elem`; the run is still alive.
    Absorbed(ElemId),
    /// Event bound by `elem` and the run reached the accepting state.
    Accepted(ElemId),
    /// A kill transition fired; the run is dead.
    Killed,
}

impl Automaton {
    /// Compiles a pattern.
    pub fn compile(pattern: &Pattern) -> Automaton {
        let compile_matcher = |m: &spectre_query::ElemMatcher| CompiledMatcher {
            elem: m.elem,
            event_type: m.event_type,
            program: Program::compile(&m.pred),
        };
        let states = pattern
            .steps()
            .iter()
            .map(|step| AutoState {
                kind: match &step.kind {
                    StepKind::One(m) => AutoStateKind::One(compile_matcher(m)),
                    StepKind::Plus(m) => AutoStateKind::Plus(compile_matcher(m)),
                    StepKind::Set(ms) => {
                        AutoStateKind::Set(ms.iter().map(compile_matcher).collect())
                    }
                },
                kills: step.forbid.iter().map(compile_matcher).collect(),
            })
            .collect();
        Automaton {
            states,
            elem_count: pattern.elem_count(),
        }
    }

    /// Number of states (== pattern steps).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Whether `ev` can start a run (matches state 0 with no bindings).
    pub fn event_starts(&self, ev: &Event) -> bool {
        let ctx = StartCtx(ev);
        match &self.states[0].kind {
            AutoStateKind::One(m) | AutoStateKind::Plus(m) => m.matches(&ctx),
            AutoStateKind::Set(ms) => ms.iter().any(|m| m.matches(&ctx)),
        }
    }
}

struct StartCtx<'a>(&'a Event);

impl EvalContext for StartCtx<'_> {
    fn current(&self) -> &Event {
        self.0
    }
    fn bound(&self, _: ElemId) -> Option<&Event> {
        None
    }
}

struct RunCtx<'a> {
    current: &'a Event,
    bindings: &'a [Option<Event>],
}

impl EvalContext for RunCtx<'_> {
    fn current(&self) -> &Event {
        self.current
    }
    fn bound(&self, elem: ElemId) -> Option<&Event> {
        self.bindings.get(elem.index())?.as_ref()
    }
}

/// A live automaton run: current state, set progress, bindings.
#[derive(Debug, Clone)]
pub struct AutoRun {
    automaton: Arc<Automaton>,
    state: usize,
    plus_entered: bool,
    set_mask: u128,
    bindings: Vec<Option<Event>>,
    participants: Vec<(ElemId, Seq)>,
    accepted: bool,
    dead: bool,
}

impl AutoRun {
    /// Starts a run at state 0.
    pub fn new(automaton: Arc<Automaton>) -> Self {
        let elems = automaton.elem_count;
        AutoRun {
            automaton,
            state: 0,
            plus_entered: false,
            set_mask: 0,
            bindings: vec![None; elems],
            participants: Vec::new(),
            accepted: false,
            dead: false,
        }
    }

    /// `true` once the run reached the accepting state.
    pub fn is_accepted(&self) -> bool {
        self.accepted
    }

    /// `true` once a kill transition fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Events absorbed so far, in order.
    pub fn participants(&self) -> &[(ElemId, Seq)] {
        &self.participants
    }

    /// Removes the last binding and re-opens the accepting state (EachLast
    /// selection policy).
    ///
    /// # Panics
    ///
    /// Panics if the run is not accepted or the last state is not `One`.
    pub fn rearm_last(&mut self) {
        assert!(self.accepted, "rearm_last on non-accepted run");
        let last = self.automaton.states.len() - 1;
        let AutoStateKind::One(m) = &self.automaton.states[last].kind else {
            panic!("rearm_last requires a One last state");
        };
        let elem = m.elem.expect("binding element");
        self.bindings[elem.index()] = None;
        if let Some(pos) = self.participants.iter().rposition(|(e, _)| *e == elem) {
            self.participants.remove(pos);
        }
        self.accepted = false;
        self.state = last;
        self.plus_entered = false;
        self.set_mask = 0;
    }

    /// Steps the run with the next event.
    pub fn step(&mut self, ev: &Event) -> RunOutcome {
        if self.accepted || self.dead {
            return RunOutcome::Ignored;
        }
        let automaton = Arc::clone(&self.automaton);
        let states = &automaton.states;

        {
            let ctx = RunCtx {
                current: ev,
                bindings: &self.bindings,
            };
            if states[self.state].kills.iter().any(|k| k.matches(&ctx)) {
                self.dead = true;
                return RunOutcome::Killed;
            }
        }

        if self.plus_entered && self.state + 1 < states.len() {
            if let Some(elem) = self.try_state(states, self.state + 1, ev) {
                return self.outcome(elem);
            }
        }
        if let Some(elem) = self.try_state(states, self.state, ev) {
            return self.outcome(elem);
        }
        RunOutcome::Ignored
    }

    fn outcome(&self, elem: ElemId) -> RunOutcome {
        if self.accepted {
            RunOutcome::Accepted(elem)
        } else {
            RunOutcome::Absorbed(elem)
        }
    }

    fn try_state(&mut self, states: &[AutoState], idx: usize, ev: &Event) -> Option<ElemId> {
        let ctx = RunCtx {
            current: ev,
            bindings: &self.bindings,
        };
        match &states[idx].kind {
            AutoStateKind::One(m) => {
                if !m.matches(&ctx) {
                    return None;
                }
                let elem = m.elem.expect("binding element");
                self.bindings[elem.index()] = Some(ev.clone());
                self.participants.push((elem, ev.seq()));
                self.state = idx + 1;
                self.plus_entered = false;
                self.set_mask = 0;
                if self.state == states.len() {
                    self.accepted = true;
                }
                Some(elem)
            }
            AutoStateKind::Plus(m) => {
                if !m.matches(&ctx) {
                    return None;
                }
                let elem = m.elem.expect("binding element");
                let first = self.state != idx || !self.plus_entered;
                if first {
                    self.bindings[elem.index()] = Some(ev.clone());
                }
                self.participants.push((elem, ev.seq()));
                self.state = idx;
                self.plus_entered = true;
                self.set_mask = 0;
                if idx == states.len() - 1 {
                    self.accepted = true;
                }
                Some(elem)
            }
            AutoStateKind::Set(members) => {
                let mask = if idx == self.state { self.set_mask } else { 0 };
                for (i, m) in members.iter().enumerate() {
                    if mask & (1u128 << i) != 0 {
                        continue;
                    }
                    if m.matches(&ctx) {
                        let elem = m.elem.expect("binding element");
                        self.bindings[elem.index()] = Some(ev.clone());
                        self.participants.push((elem, ev.seq()));
                        if idx != self.state {
                            self.set_mask = 0;
                        }
                        self.state = idx;
                        self.plus_entered = false;
                        self.set_mask |= 1u128 << i;
                        if self.set_mask.count_ones() as usize == members.len() {
                            self.state = idx + 1;
                            self.set_mask = 0;
                            if self.state == states.len() {
                                self.accepted = true;
                            }
                        }
                        return Some(elem);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::AttrKey;
    use spectre_query::{Expr, FeedOutcome, PartialMatch};

    fn ev(seq: Seq, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(seq)
            .attr(AttrKey::new(0), x)
            .build()
    }

    fn x_is(v: f64) -> Expr {
        Expr::current(AttrKey::new(0)).eq_(Expr::value(v))
    }

    /// Feeds the same stream to a PartialMatch and an AutoRun and asserts
    /// step-by-step agreement.
    fn assert_equivalent(pattern: Pattern, stream: &[Event]) {
        let pattern = Arc::new(pattern);
        let automaton = Arc::new(Automaton::compile(&pattern));
        let mut m = PartialMatch::new(Arc::clone(&pattern));
        let mut r = AutoRun::new(automaton);
        for e in stream {
            let fo = m.feed(e);
            let ro = r.step(e);
            match (fo, ro) {
                (FeedOutcome::Ignored, RunOutcome::Ignored) => {}
                (FeedOutcome::Absorbed { elem: a }, RunOutcome::Absorbed(b)) => {
                    assert_eq!(a, b)
                }
                (FeedOutcome::Completed { elem: a }, RunOutcome::Accepted(b)) => {
                    assert_eq!(a, b)
                }
                (FeedOutcome::Abandoned, RunOutcome::Killed) => {}
                other => panic!("divergence at event {}: {:?}", e.seq(), other),
            }
        }
        assert_eq!(m.is_complete(), r.is_accepted());
        assert_eq!(m.is_abandoned(), r.is_dead());
        assert_eq!(m.participants(), r.participants());
    }

    #[test]
    fn sequence_equivalence() {
        let p = Pattern::builder()
            .one("A", x_is(1.0))
            .one("B", x_is(2.0))
            .one("C", x_is(3.0))
            .build()
            .unwrap();
        let stream: Vec<_> = [9.0, 1.0, 5.0, 3.0, 2.0, 2.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, v)| ev(i as u64, *v))
            .collect();
        assert_equivalent(p, &stream);
    }

    #[test]
    fn kleene_equivalence() {
        let p = Pattern::builder()
            .one("A", x_is(1.0))
            .plus("B", x_is(2.0))
            .one("C", x_is(3.0))
            .build()
            .unwrap();
        let stream: Vec<_> = [1.0, 2.0, 2.0, 9.0, 2.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, v)| ev(i as u64, *v))
            .collect();
        assert_equivalent(p, &stream);
    }

    #[test]
    fn set_equivalence() {
        let p = Pattern::builder()
            .one("A", x_is(0.0))
            .set(vec![
                ("X".into(), x_is(1.0)),
                ("Y".into(), x_is(2.0)),
                ("Z".into(), x_is(3.0)),
            ])
            .build()
            .unwrap();
        let stream: Vec<_> = [0.0, 3.0, 9.0, 1.0, 1.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, v)| ev(i as u64, *v))
            .collect();
        assert_equivalent(p, &stream);
    }

    #[test]
    fn negation_equivalence() {
        let p = Pattern::builder()
            .one("A", x_is(1.0))
            .forbid("K", x_is(9.0))
            .one("B", x_is(2.0))
            .build()
            .unwrap();
        let stream: Vec<_> = [1.0, 5.0, 9.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, v)| ev(i as u64, *v))
            .collect();
        assert_equivalent(p, &stream);
    }

    #[test]
    fn event_starts_agrees() {
        let p = Pattern::builder()
            .one("A", x_is(1.0))
            .one("B", x_is(2.0))
            .build()
            .unwrap();
        let automaton = Automaton::compile(&p);
        for v in [0.0, 1.0, 2.0] {
            assert_eq!(
                automaton.event_starts(&ev(0, v)),
                PartialMatch::event_starts(&p, &ev(0, v)),
                "value {v}"
            );
        }
        assert_eq!(automaton.state_count(), 2);
    }

    #[test]
    fn rearm_last_matches_matcher_behaviour() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .one("B", x_is(2.0))
                .build()
                .unwrap(),
        );
        let automaton = Arc::new(Automaton::compile(&p));
        let mut r = AutoRun::new(automaton);
        r.step(&ev(1, 1.0));
        assert_eq!(r.step(&ev(2, 2.0)), RunOutcome::Accepted(ElemId::new(1)));
        r.rearm_last();
        assert!(!r.is_accepted());
        assert_eq!(r.step(&ev(3, 2.0)), RunOutcome::Accepted(ElemId::new(1)));
        let seqs: Vec<_> = r.participants().iter().map(|(_, s)| *s).collect();
        assert_eq!(seqs, vec![1, 3]);
    }
}
