//! Stack bytecode for query predicates.
//!
//! The T-REX-style engine does not walk expression trees; it compiles each
//! predicate once into a flat instruction list and interprets that per event.
//! Semantics are identical to [`Expr::eval`]: evaluation failures (missing
//! attributes, unbound elements, type errors, division by zero) yield `None`
//! and `AND`/`OR` short-circuit exactly like the tree walker, so both
//! evaluators are interchangeable oracles.

use spectre_events::{AttrKey, EventType, Value};
use spectre_query::{BinOp, ElemRef, EvalContext, Expr, UnaryOp};

/// Slot value in [`Instr::Attr`] denoting the current event.
pub const CURRENT_SLOT: u16 = u16::MAX;

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push a constant.
    Const(Value),
    /// Push attribute `key` of the event in `slot` (binding index, or
    /// [`CURRENT_SLOT`]).
    Attr {
        /// Binding slot or [`CURRENT_SLOT`].
        slot: u16,
        /// Attribute to read.
        key: AttrKey,
    },
    /// Push whether the event in `slot` has the given type.
    TypeIs {
        /// Binding slot or [`CURRENT_SLOT`].
        slot: u16,
        /// Expected event type.
        ty: EventType,
    },
    /// Apply a unary operator to the top of stack.
    Unary(UnaryOp),
    /// Apply a strict binary operator to the two top stack values.
    Bin(BinOp),
    /// Short-circuit `AND`: if the top is `Some(false)`, jump to the absolute
    /// target (keeping the top as the result); otherwise fall through.
    JumpIfFalse(usize),
    /// Short-circuit `OR`: if the top is `Some(true)`, jump to the target.
    JumpIfTrue(usize),
    /// Combine `lhs AND rhs` from the two top stack values (used when no
    /// short-circuit happened).
    AndOp,
    /// Combine `lhs OR rhs`.
    OrOp,
}

/// A compiled predicate program.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema};
/// use spectre_query::{Expr, EvalContext, ElemId};
/// use spectre_baselines::trex::Program;
///
/// let mut schema = Schema::new();
/// let x = schema.attr("x");
/// let expr = Expr::current(x).gt(Expr::value(1.0));
/// let prog = Program::compile(&expr);
///
/// struct Ctx(Event);
/// impl EvalContext for Ctx {
///     fn current(&self) -> &Event { &self.0 }
///     fn bound(&self, _: ElemId) -> Option<&Event> { None }
/// }
/// let t = schema.event_type("E");
/// let ev = Event::builder(t).attr(x, 2.0).build();
/// assert!(prog.matches(&Ctx(ev)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Compiles an expression into bytecode.
    pub fn compile(expr: &Expr) -> Program {
        let mut instrs = Vec::new();
        emit(expr, &mut instrs);
        Program { instrs }
    }

    /// The instruction list (for inspection and tests).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Evaluates the program; `None` mirrors [`Expr::eval`] failure.
    pub fn eval(&self, ctx: &dyn EvalContext) -> Option<Value> {
        let mut stack: Vec<Option<Value>> = Vec::with_capacity(8);
        let mut pc = 0usize;
        while pc < self.instrs.len() {
            match &self.instrs[pc] {
                Instr::Const(v) => stack.push(Some(v.clone())),
                Instr::Attr { slot, key } => {
                    let ev = if *slot == CURRENT_SLOT {
                        Some(ctx.current())
                    } else {
                        ctx.bound(spectre_query::ElemId::new(*slot))
                    };
                    stack.push(ev.and_then(|e| e.get(*key).cloned()));
                }
                Instr::TypeIs { slot, ty } => {
                    let ev = if *slot == CURRENT_SLOT {
                        Some(ctx.current())
                    } else {
                        ctx.bound(spectre_query::ElemId::new(*slot))
                    };
                    stack.push(ev.map(|e| Value::Bool(e.event_type() == *ty)));
                }
                Instr::Unary(op) => {
                    let v = stack.pop().expect("stack underflow");
                    let r = v.and_then(|v| match op {
                        UnaryOp::Not => v.as_bool().map(|b| Value::Bool(!b)),
                        UnaryOp::Neg => v.as_f64().map(|f| Value::F64(-f)),
                    });
                    stack.push(r);
                }
                Instr::Bin(op) => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.pop().expect("stack underflow");
                    stack.push(apply_bin(*op, a, b));
                }
                Instr::JumpIfFalse(target) => {
                    let top = stack.last().expect("stack underflow");
                    if matches!(top, Some(Value::Bool(false))) {
                        pc = *target;
                        continue;
                    }
                }
                Instr::JumpIfTrue(target) => {
                    let top = stack.last().expect("stack underflow");
                    if matches!(top, Some(Value::Bool(true))) {
                        pc = *target;
                        continue;
                    }
                }
                Instr::AndOp => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.pop().expect("stack underflow");
                    // lhs was not Some(false) (else we jumped); result is
                    // None unless both are booleans.
                    let r = match (a.and_then(|v| v.as_bool()), b.and_then(|v| v.as_bool())) {
                        (Some(true), Some(rb)) => Some(Value::Bool(rb)),
                        _ => None,
                    };
                    stack.push(r);
                }
                Instr::OrOp => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.pop().expect("stack underflow");
                    let r = match (a.and_then(|v| v.as_bool()), b.and_then(|v| v.as_bool())) {
                        (Some(false), Some(rb)) => Some(Value::Bool(rb)),
                        _ => None,
                    };
                    stack.push(r);
                }
            }
            pc += 1;
        }
        stack.pop().expect("program must leave a result")
    }

    /// Evaluates as a predicate; failures count as "no match".
    pub fn matches(&self, ctx: &dyn EvalContext) -> bool {
        matches!(self.eval(ctx), Some(Value::Bool(true)))
    }
}

fn apply_bin(op: BinOp, a: Option<Value>, b: Option<Value>) -> Option<Value> {
    let a = a?;
    let b = b?;
    match op {
        BinOp::Add => Some(Value::F64(a.as_f64()? + b.as_f64()?)),
        BinOp::Sub => Some(Value::F64(a.as_f64()? - b.as_f64()?)),
        BinOp::Mul => Some(Value::F64(a.as_f64()? * b.as_f64()?)),
        BinOp::Div => {
            let d = b.as_f64()?;
            if d == 0.0 {
                None
            } else {
                Some(Value::F64(a.as_f64()? / d))
            }
        }
        BinOp::Lt => Some(Value::Bool(a < b)),
        BinOp::Le => Some(Value::Bool(a <= b)),
        BinOp::Gt => Some(Value::Bool(a > b)),
        BinOp::Ge => Some(Value::Bool(a >= b)),
        BinOp::Eq => Some(Value::Bool(a == b)),
        BinOp::Ne => Some(Value::Bool(a != b)),
        BinOp::And | BinOp::Or => unreachable!("logical ops compile to jumps"),
    }
}

fn slot_of(elem: ElemRef) -> u16 {
    match elem {
        ElemRef::Current => CURRENT_SLOT,
        ElemRef::Bound(id) => id.index() as u16,
    }
}

fn emit(expr: &Expr, out: &mut Vec<Instr>) {
    match expr {
        Expr::Const(v) => out.push(Instr::Const(v.clone())),
        Expr::Attr(elem, key) => out.push(Instr::Attr {
            slot: slot_of(*elem),
            key: *key,
        }),
        Expr::TypeIs(elem, ty) => out.push(Instr::TypeIs {
            slot: slot_of(*elem),
            ty: *ty,
        }),
        Expr::Unary(op, inner) => {
            emit(inner, out);
            out.push(Instr::Unary(*op));
        }
        Expr::Binary(BinOp::And, lhs, rhs) => {
            emit(lhs, out);
            let jump_at = out.len();
            out.push(Instr::JumpIfFalse(usize::MAX)); // patched below
            emit(rhs, out);
            out.push(Instr::AndOp);
            let target = out.len();
            out[jump_at] = Instr::JumpIfFalse(target);
        }
        Expr::Binary(BinOp::Or, lhs, rhs) => {
            emit(lhs, out);
            let jump_at = out.len();
            out.push(Instr::JumpIfTrue(usize::MAX));
            emit(rhs, out);
            out.push(Instr::OrOp);
            let target = out.len();
            out[jump_at] = Instr::JumpIfTrue(target);
        }
        Expr::Binary(op, lhs, rhs) => {
            emit(lhs, out);
            emit(rhs, out);
            out.push(Instr::Bin(*op));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::{Event, Schema};
    use spectre_query::ElemId;

    struct Ctx {
        current: Event,
        bound: Vec<Option<Event>>,
    }

    impl EvalContext for Ctx {
        fn current(&self) -> &Event {
            &self.current
        }
        fn bound(&self, elem: ElemId) -> Option<&Event> {
            self.bound.get(elem.index())?.as_ref()
        }
    }

    fn fixture() -> (Schema, AttrKey, Ctx) {
        let mut schema = Schema::new();
        let t = schema.event_type("E");
        let x = schema.attr("x");
        let current = Event::builder(t).seq(1).attr(x, 5.0).build();
        let bound = Event::builder(t).seq(0).attr(x, 3.0).build();
        (
            schema,
            x,
            Ctx {
                current,
                bound: vec![Some(bound), None],
            },
        )
    }

    /// Every compiled program must agree with the tree-walking evaluator.
    fn assert_agrees(expr: &Expr, ctx: &Ctx) {
        let prog = Program::compile(expr);
        assert_eq!(prog.eval(ctx), expr.eval(ctx), "expr: {expr}");
        assert_eq!(prog.matches(ctx), expr.matches(ctx));
    }

    #[test]
    fn agrees_with_tree_walker_on_assorted_expressions() {
        let (_s, x, ctx) = fixture();
        let cur = || Expr::current(x);
        let bound0 = || Expr::attr(ElemRef::Bound(ElemId::new(0)), x);
        let unbound = || Expr::attr(ElemRef::Bound(ElemId::new(1)), x);
        let exprs = vec![
            cur().gt(Expr::value(1.0)),
            cur()
                .add(bound0())
                .mul(Expr::value(2.0))
                .le(Expr::value(16.0)),
            cur().div(Expr::value(0.0)).gt(Expr::value(0.0)), // div by zero
            unbound().gt(Expr::value(0.0)),                   // unbound → None
            Expr::value(false).and(unbound().gt(Expr::value(0.0))), // short-circuit
            Expr::value(true).or(unbound().gt(Expr::value(0.0))),
            Expr::value(true).and(unbound().gt(Expr::value(0.0))), // strict → None
            cur().gt(bound0()).and(cur().lt(Expr::value(100.0))),
            cur().gt(bound0()).or(cur().lt(Expr::value(0.0))),
            cur().eq_(Expr::value(5.0)).not(),
            Expr::Unary(UnaryOp::Neg, Box::new(cur())).lt(Expr::value(0.0)),
            cur().sub(bound0()).ne_(Expr::value(0.0)),
        ];
        for e in &exprs {
            assert_agrees(e, &ctx);
        }
    }

    #[test]
    fn nested_logic_agrees() {
        let (_s, x, ctx) = fixture();
        let cur = || Expr::current(x);
        let e = cur()
            .gt(Expr::value(0.0))
            .and(cur().lt(Expr::value(10.0)).or(cur().eq_(Expr::value(42.0))))
            .or(cur().eq_(Expr::value(-1.0)).and(Expr::value(true)));
        assert_agrees(&e, &ctx);
    }

    #[test]
    fn type_test_compiles() {
        let (mut s, x, ctx) = fixture();
        let e_ty = s.event_type("E");
        let other = s.event_type("Other");
        assert_agrees(&Expr::TypeIs(ElemRef::Current, e_ty), &ctx);
        assert_agrees(&Expr::TypeIs(ElemRef::Current, other), &ctx);
        let _ = x;
    }

    #[test]
    fn jump_targets_are_patched() {
        let (_s, x, _ctx) = fixture();
        let e = Expr::current(x)
            .gt(Expr::value(0.0))
            .and(Expr::current(x).lt(Expr::value(10.0)));
        let prog = Program::compile(&e);
        for instr in prog.instrs() {
            if let Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = instr {
                assert!(*t <= prog.instrs().len());
                assert_ne!(*t, usize::MAX);
            }
        }
    }
}
