//! The T-REX-style engine: single-threaded, automaton-interpreting CEP with
//! sequential consumption semantics.

use std::collections::HashSet;
use std::sync::Arc;

use spectre_events::{Event, Seq};
use spectre_query::window::compute_ranges;
use spectre_query::{ComplexEvent, Query, SelectionPolicy};

use super::automaton::{AutoRun, Automaton, RunOutcome};

/// Output and statistics of a [`TrexEngine`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrexResult {
    /// All complex events, in (window id, detection order).
    pub complex_events: Vec<ComplexEvent>,
    /// Windows processed.
    pub windows: u64,
    /// Automaton runs created.
    pub runs_created: u64,
    /// Runs that reached the accepting state.
    pub runs_accepted: u64,
    /// Automaton transition evaluations performed (the interpretation
    /// overhead of a general-purpose engine; paper §4.2.3).
    pub transitions_evaluated: u64,
}

/// A general-purpose engine in the architecture of T-REX (paper §4.2.3):
/// queries compile to automata once, and a single thread interprets them
/// window by window. Consumption is supported sequentially only.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::Schema;
/// use spectre_datasets::{NyseConfig, NyseGenerator};
/// use spectre_query::queries;
/// use spectre_baselines::TrexEngine;
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     NyseGenerator::new(NyseConfig::small(1000, 2), &mut schema).collect();
/// let query = Arc::new(queries::q1(&mut schema, 3, 100, Default::default()));
/// let engine = TrexEngine::new(Arc::clone(&query));
/// let result = engine.run(&events);
/// assert_eq!(result.windows > 0, true);
/// ```
#[derive(Debug)]
pub struct TrexEngine {
    query: Arc<Query>,
    automaton: Arc<Automaton>,
}

impl TrexEngine {
    /// Compiles the query into an automaton.
    pub fn new(query: Arc<Query>) -> Self {
        let automaton = Arc::new(Automaton::compile(query.pattern()));
        TrexEngine { query, automaton }
    }

    /// The compiled automaton.
    pub fn automaton(&self) -> &Arc<Automaton> {
        &self.automaton
    }

    /// Runs the query over a finite stream.
    pub fn run(&self, events: &[Event]) -> TrexResult {
        let ranges = compute_ranges(self.query.window(), events);
        let mut consumed: HashSet<Seq> = HashSet::new();
        let mut result = TrexResult {
            complex_events: Vec::new(),
            windows: ranges.len() as u64,
            runs_created: 0,
            runs_accepted: 0,
            transitions_evaluated: 0,
        };
        for range in &ranges {
            let mut window = WindowRuns {
                engine: self,
                window_id: range.bounds.id,
                active: Vec::new(),
                events_seen: 0,
            };
            for ev in &events[range.bounds.start_pos as usize..range.end_pos as usize] {
                if consumed.contains(&ev.seq()) {
                    window.on_consumed();
                    continue;
                }
                window.on_event(ev, &mut consumed, &mut result);
            }
        }
        result
    }
}

struct WindowRuns<'e> {
    engine: &'e TrexEngine,
    window_id: u64,
    active: Vec<AutoRun>,
    /// Window events seen (including consumed skips); anchored queries may
    /// only start their run on the first one.
    events_seen: u64,
}

impl WindowRuns<'_> {
    /// Records a consumed (skipped) window event — it occupies its window
    /// position for anchoring purposes.
    fn on_consumed(&mut self) {
        self.events_seen += 1;
    }

    fn on_event(&mut self, ev: &Event, consumed: &mut HashSet<Seq>, result: &mut TrexResult) {
        self.events_seen += 1;
        let query = &self.engine.query;
        let mut absorbed = false;
        let mut i = 0;
        while i < self.active.len() {
            result.transitions_evaluated += 1;
            match self.active[i].step(ev) {
                RunOutcome::Ignored => i += 1,
                RunOutcome::Absorbed(_) => {
                    absorbed = true;
                    i += 1;
                }
                RunOutcome::Accepted(_) => {
                    absorbed = true;
                    let consumed_current = self.accept(i, ev, consumed, result);
                    if consumed_current {
                        return; // event consumed: withhold from younger runs
                    }
                    // `accept` may have removed the run at `i` (Once) or kept
                    // it re-armed (EachLast); in the latter case advance.
                    if matches!(query.selection(), SelectionPolicy::EachLast) {
                        i += 1;
                    }
                }
                RunOutcome::Killed => {
                    self.active.remove(i);
                }
            }
        }
        // Anchored queries (window opens on the pattern's start element)
        // start their single run only on the window's first event — same
        // rule as `WindowDetector`.
        let anchored = matches!(
            query.window().open(),
            spectre_query::WindowOpen::OnMatch { .. }
        );
        if !absorbed
            && (!anchored || self.events_seen == 1)
            && self.active.len() < query.max_active()
            && self.engine.automaton.event_starts(ev)
        {
            result.transitions_evaluated += 1;
            result.runs_created += 1;
            let mut run = AutoRun::new(Arc::clone(&self.engine.automaton));
            match run.step(ev) {
                RunOutcome::Absorbed(_) => self.active.push(run),
                RunOutcome::Accepted(_) => {
                    self.active.push(run);
                    let idx = self.active.len() - 1;
                    let _ = self.accept(idx, ev, consumed, result);
                }
                RunOutcome::Ignored | RunOutcome::Killed => {
                    debug_assert!(false, "fresh run must absorb its start event");
                }
            }
        }
    }

    /// Handles an accepted run; returns whether the current event was
    /// consumed.
    fn accept(
        &mut self,
        idx: usize,
        ev: &Event,
        consumed: &mut HashSet<Seq>,
        result: &mut TrexResult,
    ) -> bool {
        let query = &self.engine.query;
        result.runs_accepted += 1;
        let constituents: Vec<Seq> = self.active[idx]
            .participants()
            .iter()
            .map(|(_, s)| *s)
            .collect();
        let newly_consumed: Vec<Seq> = self.active[idx]
            .participants()
            .iter()
            .filter(|(elem, _)| query.consumable(*elem))
            .map(|(_, s)| *s)
            .collect();
        result
            .complex_events
            .push(ComplexEvent::new(self.window_id, ev.ts(), constituents));
        for s in &newly_consumed {
            consumed.insert(*s);
        }
        let consumed_current = newly_consumed.contains(&ev.seq());

        // Kill sibling runs holding now-consumed events.
        if !newly_consumed.is_empty() {
            let mut j = 0;
            let mut accepted_idx = idx;
            while j < self.active.len() {
                if j == accepted_idx {
                    j += 1;
                    continue;
                }
                let conflicted = self.active[j]
                    .participants()
                    .iter()
                    .any(|(_, s)| newly_consumed.contains(s));
                if conflicted {
                    self.active.remove(j);
                    if j < accepted_idx {
                        accepted_idx -= 1;
                    }
                } else {
                    j += 1;
                }
            }
            return self.apply_selection(accepted_idx, consumed_current);
        }
        self.apply_selection(idx, consumed_current)
    }

    fn apply_selection(&mut self, idx: usize, consumed_current: bool) -> bool {
        match self.engine.query.selection() {
            SelectionPolicy::Once => {
                self.active.remove(idx);
            }
            SelectionPolicy::EachLast => {
                self.active[idx].rearm_last();
            }
        }
        consumed_current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_sequential;
    use spectre_datasets::{NyseConfig, NyseGenerator, RandConfig, RandGenerator};
    use spectre_events::Schema;
    use spectre_query::queries::{self, Direction};

    /// The T-REX engine and the sequential reference engine are independent
    /// implementations; their outputs must agree exactly.
    fn assert_matches_sequential(query: Arc<Query>, events: &[Event]) {
        let seq = run_sequential(&query, events);
        let trex = TrexEngine::new(Arc::clone(&query)).run(events);
        assert_eq!(trex.complex_events, seq.complex_events);
        assert_eq!(trex.windows, seq.windows);
        assert_eq!(trex.runs_created, seq.cgs_created);
        assert_eq!(trex.runs_accepted, seq.cgs_completed);
    }

    #[test]
    fn agrees_with_sequential_on_q1() {
        let mut schema = Schema::new();
        let events: Vec<_> = NyseGenerator::new(NyseConfig::small(3000, 17), &mut schema).collect();
        for q in [2usize, 5, 20] {
            let query = Arc::new(queries::q1(&mut schema, q, 200, Direction::Rising));
            assert_matches_sequential(query, &events);
        }
    }

    #[test]
    fn agrees_with_sequential_on_q2() {
        let mut schema = Schema::new();
        let events: Vec<_> = NyseGenerator::new(NyseConfig::small(3000, 23), &mut schema).collect();
        let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 400, 50));
        assert_matches_sequential(query, &events);
    }

    #[test]
    fn agrees_with_sequential_on_q3() {
        let mut schema = Schema::new();
        let gen = RandGenerator::new(RandConfig::small(3000, 31), &mut schema);
        let symbols = gen.symbols().to_vec();
        let events: Vec<_> = gen.collect();
        let query = Arc::new(queries::q3(
            &mut schema,
            symbols[0],
            &symbols[1..4],
            150,
            25,
        ));
        assert_matches_sequential(query, &events);
    }

    #[test]
    fn agrees_with_sequential_on_qe() {
        let mut schema = Schema::new();
        // RAND with 2 symbols gives plenty of A/B interleavings
        let cfg = RandConfig {
            symbols: 2,
            leaders: 0,
            events: 2000,
            seed: 5,
            price: (1.0, 10.0),
            tick_ms: 1000,
        };
        let gen = RandGenerator::new(cfg, &mut schema);
        let events: Vec<_> = gen.collect();
        // QE interns its own "A"/"B" symbols; remap: rebuild QE over the
        // RND symbols by name.
        let vocab = queries::StockVocab::install(&mut schema);
        let sym_a = schema.lookup_symbol("RND000").unwrap();
        let sym_b = schema.lookup_symbol("RND001").unwrap();
        let pattern = spectre_query::Pattern::builder()
            .one("A", vocab.symbol_is(sym_a))
            .one("B", vocab.symbol_is(sym_b))
            .build()
            .unwrap();
        let query = Arc::new(
            Query::builder("QE")
                .pattern(pattern)
                .window(
                    spectre_query::WindowSpec::on_match_time(
                        Some(vocab.quote),
                        vocab.symbol_is(sym_a),
                        30_000,
                    )
                    .unwrap(),
                )
                .selection(SelectionPolicy::EachLast)
                .consumption(spectre_query::ConsumptionPolicy::Selected(vec!["B".into()]))
                .build()
                .unwrap(),
        );
        assert_matches_sequential(query, &events);
    }

    #[test]
    fn transition_counter_grows() {
        let mut schema = Schema::new();
        let events: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 3), &mut schema).collect();
        let query = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
        let r = TrexEngine::new(query).run(&events);
        assert!(r.transitions_evaluated > 0);
    }
}
