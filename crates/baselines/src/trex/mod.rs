//! T-REX-style general-purpose CEP engine (paper §4.2.3).
//!
//! T-REX [Cugola & Margara 2012] automatically translates TESLA queries into
//! state machines and interprets them, whereas SPECTRE implements pattern
//! logic as user-defined functions. This module reproduces that architecture:
//!
//! * [`bytecode`] — predicates compile to a small stack bytecode interpreted
//!   per event (instead of SPECTRE's direct AST walk),
//! * [`automaton`] — patterns compile to explicit automata with per-state
//!   transition tables,
//! * [`engine`] — a single-threaded engine evaluating windows in order; like
//!   the real T-REX it has no support for consumptions *in parallel
//!   processing* (it is sequential), but it implements the same sequential
//!   consumption semantics as the reference engine, making it a second,
//!   independently implemented differential-testing oracle.

pub mod automaton;
pub mod bytecode;
pub mod engine;

pub use automaton::{AutoRun, Automaton, RunOutcome};
pub use bytecode::{Instr, Program};
pub use engine::{TrexEngine, TrexResult};
