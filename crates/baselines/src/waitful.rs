//! Wait-based parallel baseline: window parallelism *without* speculation.
//!
//! Paper §2.3: "The standard procedure to deal with data dependencies is to
//! wait with processing w2 until w1 is completely processed and hence, all
//! consumptions in w1 are known. This, however, impedes the parallel
//! processing of overlapping windows."
//!
//! This module quantifies that statement: it produces the exact sequential
//! output (windows are still processed with consumption semantics) and
//! computes the *makespan* of a k-instance schedule in which a window may
//! only start once every window it depends on — every overlapping
//! predecessor, when the query consumes events — has finished. Time is
//! counted in event-processing ticks (one event fed to one detector = one
//! tick), the same virtual-time unit the SPECTRE simulation runtime uses, so
//! the two are directly comparable.

use std::sync::Arc;

use spectre_events::Event;
use spectre_query::window::compute_ranges;
use spectre_query::{ComplexEvent, Query};

use crate::sequential::run_sequential;

/// Result of the wait-based parallel model.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitfulResult {
    /// Complex events (identical to the sequential reference output).
    pub complex_events: Vec<ComplexEvent>,
    /// Total work in event-processing ticks (= sequential events processed).
    pub total_work: u64,
    /// Makespan of the k-instance schedule, in ticks.
    pub makespan: u64,
    /// `total_work / makespan`: effective parallelism achieved.
    pub speedup: f64,
}

/// Runs the wait-based parallel model with `k` operator instances.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::Schema;
/// use spectre_datasets::{NyseConfig, NyseGenerator};
/// use spectre_query::queries;
/// use spectre_baselines::run_waitful;
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     NyseGenerator::new(NyseConfig::small(2000, 1), &mut schema).collect();
/// let query = Arc::new(queries::q1(&mut schema, 3, 200, Default::default()));
/// let r = run_waitful(&query, &events, 8);
/// // consumption dependencies keep overlapping windows serialized
/// assert!(r.speedup >= 1.0);
/// ```
pub fn run_waitful(query: &Arc<Query>, events: &[Event], k: usize) -> WaitfulResult {
    assert!(k > 0, "need at least one operator instance");
    let sequential = run_sequential(query, events);
    let ranges = compute_ranges(query.window(), events);
    let consuming = !query.consumption().is_none();

    // Dependency: window j depends on window i (i < j) iff they overlap and
    // the query consumes events (paper §3.1's definition).
    // ready[j] = max over dependencies of done[i].
    let mut done: Vec<u64> = vec![0; ranges.len()];
    // Instance pool: next free time per instance.
    let mut free: Vec<u64> = vec![0; k];
    for (j, range) in ranges.iter().enumerate() {
        let mut ready = 0u64;
        if consuming {
            for (i, prev) in ranges[..j].iter().enumerate().rev() {
                if prev.overlaps(range) {
                    ready = ready.max(done[i]);
                } else {
                    // ranges are ordered by start; once a predecessor ends
                    // before our start, earlier ones (with even smaller
                    // starts) may still overlap only if they are longer —
                    // keep scanning until starts are clearly before our
                    // start minus the longest scope. For simplicity scan all
                    // with early exit on non-overlap of count windows.
                    if prev.end_pos <= range.bounds.start_pos {
                        break;
                    }
                }
            }
        }
        // Pick the earliest-free instance.
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("k > 0");
        let start = free[idx].max(ready);
        let cost = sequential.per_window_processed[j];
        done[j] = start + cost;
        free[idx] = done[j];
    }
    let makespan = done.iter().copied().max().unwrap_or(0).max(1);
    let total_work = sequential.events_processed;
    WaitfulResult {
        complex_events: sequential.complex_events,
        total_work,
        makespan,
        speedup: total_work as f64 / makespan as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_datasets::{NyseConfig, NyseGenerator};
    use spectre_events::Schema;
    use spectre_query::queries::{self, Direction};
    use spectre_query::ConsumptionPolicy;

    fn setup(events_n: usize) -> (Schema, Vec<Event>) {
        let mut schema = Schema::new();
        let events: Vec<_> =
            NyseGenerator::new(NyseConfig::small(events_n, 7), &mut schema).collect();
        (schema, events)
    }

    #[test]
    fn consumption_serializes_overlapping_windows() {
        let (mut schema, events) = setup(4000);
        let query = Arc::new(queries::q2(&mut schema, 40.0, 160.0, 400, 50));
        let r1 = run_waitful(&query, &events, 1);
        let r16 = run_waitful(&query, &events, 16);
        // Overlapping sliding windows (scope 400, slide 50) form a long
        // dependency chain: extra instances barely help.
        assert!(r16.speedup < 2.0, "speedup {}", r16.speedup);
        assert!(r1.speedup <= 1.0 + 1e-9);
        assert_eq!(r1.complex_events, r16.complex_events);
    }

    #[test]
    fn no_consumption_allows_parallelism() {
        let (mut schema, events) = setup(4000);
        let base = queries::q2(&mut schema, 40.0, 160.0, 400, 50);
        let query = Arc::new(
            Query::builder("Q2-none")
                .pattern_arc(Arc::clone(base.pattern()))
                .window(base.window().clone())
                .consumption(ConsumptionPolicy::None)
                .build()
                .unwrap(),
        );
        let r8 = run_waitful(&query, &events, 8);
        assert!(r8.speedup > 4.0, "speedup {}", r8.speedup);
    }

    #[test]
    fn output_equals_sequential() {
        let (mut schema, events) = setup(3000);
        let query = Arc::new(queries::q1(&mut schema, 4, 300, Direction::Rising));
        let seq = run_sequential(&query, &events);
        let wf = run_waitful(&query, &events, 4);
        assert_eq!(wf.complex_events, seq.complex_events);
        assert_eq!(wf.total_work, seq.events_processed);
    }

    #[test]
    #[should_panic(expected = "at least one operator instance")]
    fn zero_instances_rejected() {
        let (mut schema, events) = setup(100);
        let query = Arc::new(queries::q1(&mut schema, 2, 50, Direction::Rising));
        let _ = run_waitful(&query, &events, 0);
    }
}
