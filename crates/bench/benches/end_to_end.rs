//! Criterion end-to-end benchmarks: the four engines over the same small
//! NYSE workload (Q1), plus the SPECTRE simulator at several instance
//! counts, plus the threaded runtime on a paper-scale stream comparing the
//! batched/sharded data path against the unbatched single-shard
//! configuration. These are the regression-guard companions to the figure
//! binaries in `src/bin/`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spectre_baselines::{run_sequential, run_waitful, TrexEngine};
use spectre_core::{run_simulated, run_threaded, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::{Event, Schema};
use spectre_query::queries::{self, Direction};
use spectre_query::{ConsumptionPolicy, Query};

fn fixture() -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let config = NyseConfig {
        symbols: 100,
        leaders: 8,
        events: 5_000,
        seed: 42,
        ..NyseConfig::default()
    };
    let events: Vec<_> = NyseGenerator::new(config, &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 200, Direction::Rising));
    (query, events)
}

fn bench_engines(c: &mut Criterion) {
    let (query, events) = fixture();
    let mut group = c.benchmark_group("q1_5k_events");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_sequential(&query, &events).complex_events.len()))
    });
    let trex = TrexEngine::new(Arc::clone(&query));
    group.bench_function("trex", |b| {
        b.iter(|| black_box(trex.run(&events).complex_events.len()))
    });
    group.bench_function("waitful_k4", |b| {
        b.iter(|| black_box(run_waitful(&query, &events, 4).makespan))
    });
    for k in [1usize, 4, 16] {
        group.bench_function(format!("spectre_sim_k{k}"), |b| {
            b.iter(|| {
                black_box(
                    run_simulated(&query, events.clone(), &SpectreConfig::with_instances(k)).rounds,
                )
            })
        });
    }
    group.finish();
}

/// Paper-scale (default 1 M events, `SPECTRE_BENCH_EVENTS` to override)
/// data-path-bound fixture: Q1's pattern and window without consumption,
/// so no speculation machinery runs and the splitter→store→instance
/// hand-off itself is what the numbers measure.
fn threaded_fixture() -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let config = NyseConfig {
        symbols: 300,
        leaders: 16,
        events: spectre_bench::threaded_bench_events(),
        seed: 42,
        ..NyseConfig::default()
    };
    let events: Vec<_> = NyseGenerator::new(config, &mut schema).collect();
    let base = queries::q1(&mut schema, 3, 200, Direction::Rising);
    let query = Arc::new(
        Query::builder("Q1-NC")
            .pattern_arc(Arc::clone(base.pattern()))
            .window(base.window().clone())
            .selection(base.selection())
            .consumption(ConsumptionPolicy::None)
            .build()
            .expect("valid fixture query"),
    );
    (query, events)
}

fn bench_threaded(c: &mut Criterion) {
    let (query, events) = threaded_fixture();
    let mut group = c.benchmark_group(format!("threaded_e2e_{}k_events", events.len() / 1000));
    group.sample_size(3);
    // The original event-at-a-time, single-lock hand-off …
    group.bench_function("unbatched_1shard_k2", |b| {
        b.iter(|| {
            let config = SpectreConfig::with_batching(2, 1, 1);
            black_box(
                run_threaded(&query, events.clone(), &config)
                    .complex_events
                    .len(),
            )
        })
    });
    // … versus the default batched hand-off + sharded window store.
    group.bench_function("batched64_8shards_k2", |b| {
        b.iter(|| {
            let config = SpectreConfig::with_batching(2, 64, 8);
            black_box(
                run_threaded(&query, events.clone(), &config)
                    .complex_events
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(end_to_end, bench_engines, bench_threaded);
criterion_main!(end_to_end);
