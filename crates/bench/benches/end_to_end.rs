//! Criterion end-to-end benchmarks: the four engines over the same small
//! NYSE workload (Q1), plus the SPECTRE simulator at several instance
//! counts, plus the threaded runtime on paper-scale streams — the
//! batched/sharded data path against the unbatched single-shard
//! configuration, a consumption-heavy fixture comparing the lazy
//! dependency tree against eager subtree copies, and a *streaming* mode:
//! the same data-path workload fed straight from the generator into a
//! [`SpectreEngine`] session with no `Vec` fixture at all. These are the
//! regression-guard companions to the figure binaries in `src/bin/`.
//!
//! Set `SPECTRE_BENCH_SUMMARY=<path>` to additionally write a small JSON
//! summary (events/s and peak tree size per threaded case) for CI bench
//! trend tracking; `scripts/bench_gate.py` diffs it against the checked-in
//! baseline in `crates/bench/baseline/`. Set `SPECTRE_BENCH_ONLY` to a
//! comma-separated list of section tags (`engines`, `threaded`,
//! `streaming`, `multiquery`, `consumption`, `reorder`, `scaling`,
//! `tenancy`, `server`) to run a subset —
//! the criterion shim has no CLI filter, and CI smoke steps use this to
//! gate one dimension without paying for the rest. The `server` tag runs
//! the spectre-server front-end end to end: two loopback clients
//! streaming strided halves of the stream through the framed wire
//! protocol into one hosted session.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spectre_baselines::{run_sequential, run_waitful, TrexEngine};
use spectre_core::{
    run_simulated, run_threaded, MetricsSnapshot, SpectreConfig, SpectreEngine, TenantId,
    TenantQuota,
};
use spectre_datasets::{bounded_shuffle, NyseConfig, NyseGenerator};
use spectre_events::{Event, Schema};
use spectre_query::queries::{self, Direction};
use spectre_query::{ConsumptionPolicy, Query};
use spectre_server::{FeedClient, IngestOrder, Server, ServerConfig};

/// `true` when the section should run: always without `SPECTRE_BENCH_ONLY`,
/// else only when the tag is in its comma-separated list.
fn enabled(tag: &str) -> bool {
    match std::env::var("SPECTRE_BENCH_ONLY") {
        Ok(only) => only.split(',').any(|t| t.trim() == tag),
        Err(_) => true,
    }
}

fn fixture() -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let config = NyseConfig {
        symbols: 100,
        leaders: 8,
        events: 5_000,
        seed: 42,
        ..NyseConfig::default()
    };
    let events: Vec<_> = NyseGenerator::new(config, &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 200, Direction::Rising));
    (query, events)
}

fn bench_engines(c: &mut Criterion) {
    if !enabled("engines") {
        return;
    }
    let (query, events) = fixture();
    let mut group = c.benchmark_group("q1_5k_events");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_sequential(&query, &events).complex_events.len()))
    });
    let trex = TrexEngine::new(Arc::clone(&query));
    group.bench_function("trex", |b| {
        b.iter(|| black_box(trex.run(&events).complex_events.len()))
    });
    group.bench_function("waitful_k4", |b| {
        b.iter(|| black_box(run_waitful(&query, &events, 4).makespan))
    });
    for k in [1usize, 4, 16] {
        group.bench_function(format!("spectre_sim_k{k}"), |b| {
            b.iter(|| {
                black_box(
                    run_simulated(&query, events.clone(), &SpectreConfig::with_instances(k)).rounds,
                )
            })
        });
    }
    group.finish();
}

/// NYSE generator configuration of the paper-scale threaded fixtures.
fn paper_nyse_config(events: usize) -> NyseConfig {
    NyseConfig {
        symbols: 300,
        leaders: 16,
        events,
        seed: 42,
        ..NyseConfig::default()
    }
}

/// The data-path-bound query: Q1's pattern and window without consumption,
/// so no speculation machinery runs and the splitter→store→instance
/// hand-off itself is what the numbers measure.
fn datapath_query(schema: &mut Schema) -> Arc<Query> {
    let base = queries::q1(schema, 3, 200, Direction::Rising);
    Arc::new(
        Query::builder("Q1-NC")
            .pattern_arc(Arc::clone(base.pattern()))
            .window(base.window().clone())
            .selection(base.selection())
            .consumption(ConsumptionPolicy::None)
            .build()
            .expect("valid fixture query"),
    )
}

/// Paper-scale (default 1 M events, `SPECTRE_BENCH_EVENTS` to override)
/// data-path-bound fixture, materialized as a `Vec` for the legacy-path
/// cases.
fn threaded_fixture() -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(
        paper_nyse_config(spectre_bench::threaded_bench_events()),
        &mut schema,
    )
    .collect();
    let query = datapath_query(&mut schema);
    (query, events)
}

fn bench_threaded(c: &mut Criterion) {
    if !enabled("threaded") {
        return;
    }
    let (query, events) = threaded_fixture();
    let mut group = c.benchmark_group(format!("threaded_e2e_{}k_events", events.len() / 1000));
    group.sample_size(3);
    // The original event-at-a-time, single-lock hand-off …
    group.bench_function("unbatched_1shard_k2", |b| {
        b.iter(|| {
            let config = SpectreConfig::with_batching(2, 1, 1);
            black_box(
                run_threaded(&query, events.clone(), &config)
                    .complex_events
                    .len(),
            )
        })
    });
    // … versus the default batched hand-off + sharded window store.
    group.bench_function("batched64_8shards_k2", |b| {
        b.iter(|| {
            let config = SpectreConfig::with_batching(2, 64, 8);
            black_box(
                run_threaded(&query, events.clone(), &config)
                    .complex_events
                    .len(),
            )
        })
    });
    group.finish();
}

/// Consumption-heavy fixture: Q1 *with* its consumption policy at a high
/// pattern/window ratio (q = 110, ws = 200 → most partial matches abandon,
/// the paper's high-ratio regime, while enough complete to keep the
/// output non-trivial). Here the speculative machinery — group creation,
/// completion-branch copies, resolutions — dominates the data path, which
/// is exactly what the lazy dependency tree targets.
fn consumption_fixture() -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let config = NyseConfig {
        symbols: 300,
        leaders: 16,
        events: spectre_bench::threaded_bench_events(),
        seed: 42,
        ..NyseConfig::default()
    };
    let events: Vec<_> = NyseGenerator::new(config, &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 110, 200, Direction::Rising));
    (query, events)
}

/// The lazy tree (defaults: O(1) group creation, lazy window attach,
/// cap 1024) against the fully eager engine — eager subtree copies *and*
/// eager per-leaf attach — with the cap PR 2 tuned for it (512 — higher
/// caps make eager strictly worse, since every group creation copies a
/// subtree bounded by the cap).
fn consumption_configs() -> [(&'static str, SpectreConfig); 2] {
    let lazy = SpectreConfig::with_batching(2, 64, 8);
    let eager = SpectreConfig {
        max_tree_versions: 512,
        ..SpectreConfig::with_batching(2, 64, 8)
            .with_lazy_materialization(false)
            .with_lazy_attach(false)
    };
    [
        ("consumption_lazy_k2", lazy),
        ("consumption_eager_k2", eager),
    ]
}

/// Last metrics + output count per threaded case, stashed by
/// [`bench_consumption`] / [`bench_streaming`] so [`emit_summary`] can
/// report speculation metrics without re-running the (expensive) cases.
static CASE_METRICS: std::sync::Mutex<Vec<(&'static str, MetricsSnapshot, usize)>> =
    std::sync::Mutex::new(Vec::new());

fn stash_case(name: &'static str, metrics: MetricsSnapshot, outputs: usize) {
    let mut stash = CASE_METRICS.lock().expect("metrics stash");
    stash.retain(|(n, _, _)| *n != name);
    stash.push((name, metrics, outputs));
}

fn bench_consumption(c: &mut Criterion) {
    if !enabled("consumption") {
        return;
    }
    let (query, events) = consumption_fixture();
    let mut group = c.benchmark_group(format!(
        "threaded_consumption_{}k_events",
        events.len() / 1000
    ));
    group.sample_size(2);
    for (name, config) in consumption_configs() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_threaded(&query, events.clone(), &config);
                let out = report.complex_events.len();
                stash_case(name, report.metrics, out);
                black_box(out)
            })
        });
    }
    group.finish();
}

/// Streaming mode: the data-path workload fed straight from the NYSE
/// generator into a threaded [`SpectreEngine`] session — no `Vec` fixture
/// exists at any point; outputs are drained incrementally every generator
/// chunk. The measured time therefore *includes* event generation, which
/// is exactly the streaming deployment's cost profile.
fn bench_streaming(c: &mut Criterion) {
    if !enabled("streaming") {
        return;
    }
    let events_n = spectre_bench::threaded_bench_events();
    let mut schema = Schema::new();
    let query = datapath_query(&mut schema);
    let mut group = c.benchmark_group(format!("threaded_streaming_{}k_events", events_n / 1000));
    group.sample_size(2);
    group.bench_function("streaming_k2", |b| {
        b.iter(|| {
            let config = SpectreConfig::with_batching(2, 64, 8);
            let mut engine = SpectreEngine::builder(&query)
                .config(config)
                .threaded()
                .build();
            let mut source = NyseGenerator::new(paper_nyse_config(events_n), &mut schema);
            let mut outputs = 0usize;
            loop {
                let fed = engine.ingest(source.by_ref().take(65_536));
                outputs += engine.drain_outputs().len();
                if fed < 65_536 {
                    break;
                }
            }
            let report = engine.finish();
            outputs += report.complex_events.len();
            stash_case("streaming_k2", report.metrics, outputs);
            black_box(outputs)
        })
    });
    group.finish();
}

/// Multi-query sessions: the data-path workload with N same-spec queries
/// hosted in one threaded session. The shared spec group stores every
/// window's events once regardless of N, so the incremental cost per extra
/// query is pattern matching and retirement bookkeeping, not another copy
/// of the data path; the gate watches exactly that.
fn bench_multiquery(c: &mut Criterion) {
    if !enabled("multiquery") {
        return;
    }
    let (query, events) = threaded_fixture();
    let mut group = c.benchmark_group(format!(
        "threaded_multiquery_{}k_events",
        events.len() / 1000
    ));
    group.sample_size(2);
    for (n, name) in [(2usize, "multiquery_2q_k2"), (4, "multiquery_4q_k2")] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut builder =
                    SpectreEngine::multi_builder().config(SpectreConfig::with_batching(2, 64, 8));
                for _ in 0..n {
                    builder.add_query(&query);
                }
                let report = builder.threaded().build().run(events.clone());
                let out = report.complex_events.len();
                stash_case(name, report.metrics, out);
                black_box(out)
            })
        });
    }
    group.finish();
}

/// Disorder sweep: the data-path workload arriving out of order, repaired
/// by the reorder stage at bounded lateness `d` symbol-slots (the paper
/// fixture interleaves 300 symbols at 200 ticks per slot, so `d = 64`
/// means an event may trail up to 64 later arrivals). `d = 0` runs the
/// stage on the in-order stream — its pure pass-through overhead against
/// the `streaming_k2` case; the non-zero points price the actual buffering
/// and watermark work. Case names keep the `1m` tag of the paper-scale
/// default even when `SPECTRE_BENCH_EVENTS` shrinks the stream — the
/// group title carries the actual size.
fn bench_reorder(c: &mut Criterion) {
    if !enabled("reorder") {
        return;
    }
    let (query, events) = threaded_fixture();
    // One symbol-slot of the paper fixture in timestamp ticks.
    let slot = 60_000 / 300;
    let mut group = c.benchmark_group(format!("threaded_reorder_{}k_events", events.len() / 1000));
    group.sample_size(2);
    for (d, name) in [
        (0u64, "reorder_1m_d0"),
        (64, "reorder_1m_d64"),
        (1024, "reorder_1m_d1024"),
    ] {
        let delay = d * slot;
        let shuffled = bounded_shuffle(&events, delay, 42);
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = SpectreConfig::with_batching(2, 64, 8).with_reorder(delay);
                let report = SpectreEngine::builder(&query)
                    .config(config)
                    .threaded()
                    .build()
                    .run(shuffled.clone());
                let out = report.complex_events.len();
                stash_case(name, report.metrics, out);
                black_box(out)
            })
        });
    }
    group.finish();
}

/// Multi-core scaling sweep: the consumption-heavy fixture (the paper's
/// high-ratio regime, where the speculation machinery dominates) at
/// `instances ∈ {1, 2, 4, 8}` under the default batched/sharded data path.
/// This is the throughput-vs-instances curve of the paper's Fig. 10 run
/// on real threads: `events_per_sec` per case lands in the bench summary,
/// so `scripts/bench_gate.py` tracks the whole curve against
/// `baseline/scaling_100k.json`. Every k must deliver *bit-identical*
/// output — the k = 1 run of each iteration is the reference the larger
/// instance counts are asserted against, so a scaling number from a run
/// that diverged can never land in the summary. Wall-clock ratios between
/// the k points are only meaningful on a host with ≥ 8 cores; on fewer
/// cores the workers time-slice and the curve flattens (the parking idle
/// tier keeps oversubscribed runs from burning the splitter's cycles).
fn bench_scaling(c: &mut Criterion) {
    if !enabled("scaling") {
        return;
    }
    let (query, events) = consumption_fixture();
    let mut group = c.benchmark_group(format!("threaded_scaling_{}k_events", events.len() / 1000));
    group.sample_size(2);
    let mut reference: Option<Vec<spectre_query::ComplexEvent>> = None;
    for (k, name) in [
        (1usize, "scaling_k1"),
        (2, "scaling_k2"),
        (4, "scaling_k4"),
        (8, "scaling_k8"),
    ] {
        let reference = &mut reference;
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = SpectreConfig::with_batching(k, 64, 8);
                let report = run_threaded(&query, events.clone(), &config);
                let out = report.complex_events.len();
                match reference.as_ref() {
                    Some(expected) => assert_eq!(
                        &report.complex_events, expected,
                        "scaling sweep k={k} diverged from the k=1 output"
                    ),
                    None => *reference = Some(report.complex_events),
                }
                stash_case(name, report.metrics, out);
                black_box(out)
            })
        });
    }
    group.finish();
}

/// Extra raw JSON fields per summary case, merged by [`emit_summary`] —
/// used by [`bench_tenancy`] to record the isolation ratio and per-tenant
/// throughput next to the shim's timing fields.
static CASE_EXTRAS: std::sync::Mutex<Vec<(&'static str, String)>> =
    std::sync::Mutex::new(Vec::new());

fn stash_extra(name: &'static str, fields: String) {
    let mut stash = CASE_EXTRAS.lock().expect("extras stash");
    stash.retain(|(n, _)| *n != name);
    stash.push((name, fields));
}

/// Tenant isolation: a light (data-path) tenant sharing one session with a
/// speculation-heavy tenant (the consumption fixture's q = 110, ws = 200
/// query), against the light tenant's solo run. Each shared case records
/// an `isolation_ratio` summary field — the fraction of its solo
/// throughput the light tenant retains — plus both tenants' processed
/// event counts from the per-tenant rollups; the capped case *asserts*
/// the ratio stays above [`ISOLATION_FLOOR`], and the light tenant's
/// outputs are asserted bit-identical to its solo run in every shared
/// case (isolation never buys semantic drift).
///
/// What the floor can honestly be: a shared session is one feed and one
/// splitter thread, and all queries see the same stream prefix
/// (`Splitter::backpressured` — one slow query throttling the shared feed
/// is *deliberate*). Session makespan therefore approaches the serial sum
/// of the tenants' solo runs, so the ratio's architectural ceiling is
/// `light_solo / (light_solo + heavy_solo)` — ≈ 0.2 for this pairing,
/// whatever the schedule does. What tenancy adds within that envelope is
/// slot fair-share (the light tenant is never starved of its weighted
/// share of instances), a budget on schedule-driven speculative
/// materializations, and exact per-tenant accounting; the floor guards
/// against that bookkeeping ever collapsing the light tenant's service
/// (a regression below it means tenancy overhead, not workload shape).
const ISOLATION_FLOOR: f64 = 0.10;

fn bench_tenancy(c: &mut Criterion) {
    if !enabled("tenancy") {
        return;
    }
    let events_n = spectre_bench::threaded_bench_events();
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(paper_nyse_config(events_n), &mut schema).collect();
    let light = datapath_query(&mut schema);
    let heavy = Arc::new(queries::q1(&mut schema, 110, 200, Direction::Rising));
    let mut group = c.benchmark_group(format!("threaded_tenancy_{}k_events", events.len() / 1000));
    group.sample_size(2);
    let light_tenant = TenantId(1);
    let heavy_tenant = TenantId(2);

    let mut light_solo_secs = f64::INFINITY;
    let mut light_expected: Vec<spectre_query::ComplexEvent> = Vec::new();
    {
        let (solo, expected) = (&mut light_solo_secs, &mut light_expected);
        group.bench_function("tenancy_light_solo_k4", |b| {
            b.iter(|| {
                let config = SpectreConfig::with_batching(4, 64, 8);
                let start = Instant::now();
                let report = run_threaded(&light, events.clone(), &config);
                *solo = solo.min(start.elapsed().as_secs_f64());
                let out = report.complex_events.len();
                stash_case("tenancy_light_solo_k4", report.metrics, out);
                *expected = report.complex_events;
                black_box(out)
            })
        });
    }

    let cases: [(&'static str, Option<TenantQuota>); 2] = [
        ("tenancy_pair_uncapped_k4", None),
        (
            "tenancy_pair_capped_k4",
            Some(TenantQuota::default().with_max_versions(64)),
        ),
    ];
    for (name, quota) in cases {
        let mut shared_secs = f64::INFINITY;
        {
            let (shared, expected) = (&mut shared_secs, &light_expected);
            group.bench_function(name, |b| {
                b.iter(|| {
                    let mut builder = SpectreEngine::multi_builder()
                        .config(SpectreConfig::with_batching(4, 64, 8));
                    let ql = builder.add_query_for(light_tenant, &light);
                    builder.add_query_for(heavy_tenant, &heavy);
                    if let Some(q) = quota.clone() {
                        builder.set_quota(heavy_tenant, q);
                    }
                    let start = Instant::now();
                    let report = builder.threaded().build().run(events.clone());
                    let secs = start.elapsed().as_secs_f64();
                    *shared = shared.min(secs);
                    assert_eq!(
                        &report.queries[&ql].complex_events, expected,
                        "{name}: the light tenant's outputs diverged from its solo run"
                    );
                    let light_events = report.tenants[&light_tenant].events_processed;
                    let heavy_events = report.tenants[&heavy_tenant].events_processed;
                    stash_extra(
                        name,
                        format!(
                            "\"light_events_processed\": {light_events}, \
                             \"heavy_events_processed\": {heavy_events}"
                        ),
                    );
                    let out = report.complex_events.len();
                    stash_case(name, report.metrics, out);
                    black_box(out)
                })
            });
        }
        let ratio = light_solo_secs / shared_secs;
        println!("{name:<40} isolation ratio {ratio:.3} (light solo {light_solo_secs:.3}s, shared {shared_secs:.3}s)");
        let mut stash = CASE_EXTRAS.lock().expect("extras stash");
        if let Some((_, fields)) = stash.iter_mut().find(|(n, _)| *n == name) {
            *fields = format!("{fields}, \"isolation_ratio\": {ratio:.3}");
        }
        drop(stash);
        if name == "tenancy_pair_capped_k4" {
            assert!(
                ratio >= ISOLATION_FLOOR,
                "capping the heavy tenant must keep the light tenant at \
                 >= {ISOLATION_FLOOR} of its solo throughput, got {ratio:.3}"
            );
        }
    }
    group.finish();
}

/// The server front-end over the paper-scale stream: two loopback
/// clients stream strided halves through the framed wire protocol —
/// socket reads, decode, the middleware chain, credit round-trips, the
/// bounded feed channel, the sequence merge — into one threaded session,
/// then the session drains to its final report. Compares directly against
/// `batched64_8shards_k2` in the `threaded` section: the delta is the
/// whole network front-end.
fn bench_server(c: &mut Criterion) {
    if !enabled("server") {
        return;
    }
    let mut schema = Schema::new();
    let events: Vec<Event> = NyseGenerator::new(
        paper_nyse_config(spectre_bench::threaded_bench_events()),
        &mut schema,
    )
    .collect();
    let query = datapath_query(&mut schema);
    let mut group = c.benchmark_group(format!("threaded_server_{}k_events", events.len() / 1000));
    group.sample_size(2);
    group.bench_function("server_2clients_k2", |b| {
        b.iter(|| {
            let cfg = ServerConfig {
                engine: SpectreConfig::with_batching(2, 64, 8),
                threaded: true,
                order: IngestOrder::Seq,
                ..ServerConfig::default()
            };
            let handle = Server::start(
                cfg,
                schema.clone(),
                vec![(TenantId::DEFAULT, Arc::clone(&query))],
            )
            .expect("server starts");
            let addr = handle.ingest_addr();
            let clients: Vec<_> = (0..2u64)
                .map(|i| {
                    let events = events.clone();
                    std::thread::spawn(move || {
                        let mut client = FeedClient::connect(addr, 0).expect("connect");
                        for event in events.iter().filter(|e| e.seq() % 2 == i) {
                            client.send_event(event).expect("send");
                        }
                        client.finish().expect("finish");
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client thread");
            }
            handle.drain();
            let outcome = handle.join().expect("drain");
            assert_eq!(outcome.report.input_events, events.len() as u64);
            let outputs: usize = outcome.outputs.values().map(Vec::len).sum();
            stash_case("server_2clients_k2", outcome.report.metrics, outputs);
            black_box(outputs)
        })
    });
    group.finish();
}

/// Writes the machine-readable bench summary for CI trend tracking when
/// `SPECTRE_BENCH_SUMMARY` names a path: per threaded case, events/s (from
/// the criterion shim's retained minimum) plus — for the consumption cases
/// — peak tree size and the lazy-speculation counters from the reports
/// [`bench_consumption`] stashed.
fn emit_summary(_c: &mut Criterion) {
    let Ok(path) = std::env::var("SPECTRE_BENCH_SUMMARY") else {
        return;
    };
    let events_n = spectre_bench::threaded_bench_events();
    let mut cases: Vec<(String, String)> = Vec::new();
    for summary in criterion::take_summaries() {
        let Some((group, name)) = summary.id.split_once('/') else {
            continue;
        };
        if !group.starts_with("threaded_") {
            continue;
        }
        let eps = events_n as f64 / summary.min.as_secs_f64();
        cases.push((
            name.to_string(),
            format!(
                "\"events_per_sec\": {eps:.0}, \"samples\": {}",
                summary.samples
            ),
        ));
    }
    // Speculation accounting from the runs the threaded cases already did.
    let reports = std::mem::take(&mut *CASE_METRICS.lock().expect("metrics stash"));
    for (name, m, outputs) in &reports {
        let extra = format!(
            "\"peak_tree\": {}, \"versions_materialized\": {}, \
             \"lazy_versions_dropped\": {}, \"predictor_refreshes\": {}, \
             \"predictor_refresh_ms\": {:.3}, \"outputs\": {}",
            m.max_tree_versions,
            m.versions_materialized,
            m.lazy_versions_dropped,
            m.predictor_refreshes,
            m.predictor_refresh_nanos as f64 / 1e6,
            outputs
        );
        match cases.iter_mut().find(|(n, _)| n == name) {
            Some((_, fields)) => *fields = format!("{fields}, {extra}"),
            None => cases.push((name.to_string(), extra)),
        }
    }
    // Bench-specific extra fields (isolation ratio, per-tenant rates).
    let extras = std::mem::take(&mut *CASE_EXTRAS.lock().expect("extras stash"));
    for (name, extra) in extras {
        match cases.iter_mut().find(|(n, _)| n == name) {
            Some((_, fields)) => *fields = format!("{fields}, {extra}"),
            None => cases.push((name.to_string(), extra)),
        }
    }
    let body: Vec<String> = cases
        .iter()
        .map(|(name, fields)| format!("    \"{name}\": {{ {fields} }}"))
        .collect();
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"events\": {events_n},\n  \"cases\": {{\n{}\n  }}\n}}\n",
        body.join(",\n")
    );
    // Cargo runs benches with the package directory as cwd; make parent
    // directories so relative paths from the workspace root work too.
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create summary directory");
        }
    }
    std::fs::write(&path, json).expect("write bench summary");
    println!("bench summary written to {path}");
}

criterion_group!(
    end_to_end,
    bench_engines,
    bench_threaded,
    bench_streaming,
    bench_multiquery,
    bench_consumption,
    bench_reorder,
    bench_scaling,
    bench_tenancy,
    bench_server,
    emit_summary
);
criterion_main!(end_to_end);
