//! Criterion end-to-end benchmarks: the four engines over the same small
//! NYSE workload (Q1), plus the SPECTRE simulator at several instance
//! counts. These are the regression-guard companions to the figure
//! binaries in `src/bin/`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spectre_baselines::{run_sequential, run_waitful, TrexEngine};
use spectre_core::{run_simulated, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::{Event, Schema};
use spectre_query::queries::{self, Direction};
use spectre_query::Query;

fn fixture() -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let config = NyseConfig {
        symbols: 100,
        leaders: 8,
        events: 5_000,
        seed: 42,
        ..NyseConfig::default()
    };
    let events: Vec<_> = NyseGenerator::new(config, &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 200, Direction::Rising));
    (query, events)
}

fn bench_engines(c: &mut Criterion) {
    let (query, events) = fixture();
    let mut group = c.benchmark_group("q1_5k_events");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_sequential(&query, &events).complex_events.len()))
    });
    let trex = TrexEngine::new(Arc::clone(&query));
    group.bench_function("trex", |b| {
        b.iter(|| black_box(trex.run(&events).complex_events.len()))
    });
    group.bench_function("waitful_k4", |b| {
        b.iter(|| black_box(run_waitful(&query, &events, 4).makespan))
    });
    for k in [1usize, 4, 16] {
        group.bench_function(format!("spectre_sim_k{k}"), |b| {
            b.iter(|| {
                black_box(
                    run_simulated(&query, events.clone(), &SpectreConfig::with_instances(k)).rounds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(end_to_end, bench_engines);
criterion_main!(end_to_end);
