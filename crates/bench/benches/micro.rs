//! Criterion micro-benchmarks for SPECTRE's hot paths: expression
//! evaluation, matcher feeding, Markov prediction and refresh, top-k
//! selection over a populated dependency tree, and the event codec.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spectre_core::cg::{CgCell, CgId};
use spectre_core::markov::{MarkovConfig, MarkovModel};
use spectre_core::store::WindowInfo;
use spectre_core::tree::{DependencyTree, VersionFactory};
use spectre_core::version::{VersionState, WvId};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::{codec, Schema};
use spectre_query::queries::{self, Direction};
use spectre_query::{PartialMatch, WindowDetector};

fn bench_matcher(c: &mut Criterion) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 7), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 10, 500, Direction::Rising));
    c.bench_function("matcher_feed_2000_events", |b| {
        b.iter(|| {
            let mut m = PartialMatch::new(Arc::clone(query.pattern()));
            for ev in &events {
                black_box(m.feed(ev));
            }
            m.is_complete()
        })
    });
    c.bench_function("detector_window_2000_events", |b| {
        b.iter(|| {
            let mut det = WindowDetector::new(Arc::clone(&query), 0);
            let mut out = Vec::new();
            for ev in &events {
                det.on_event(ev, &mut out);
                out.clear();
            }
            det.completed_count()
        })
    });
}

fn bench_markov(c: &mut Criterion) {
    let mut model = MarkovModel::new(64, MarkovConfig::default());
    for i in 0..1000u32 {
        model.observe((i % 64 + 1) as usize, (i % 64) as usize);
    }
    model.refresh_if_due();
    c.bench_function("markov_predict", |b| {
        b.iter(|| black_box(model.completion_probability(black_box(32), black_box(400))))
    });
    c.bench_function("markov_refresh", |b| {
        b.iter(|| {
            let mut m = MarkovModel::new(
                64,
                MarkovConfig {
                    rho: 1,
                    ..Default::default()
                },
            );
            m.observe(5, 4);
            black_box(m.refresh_if_due())
        })
    });
}

/// Bench-local [`VersionFactory`]: sequential ids, no metrics.
struct BenchFactory {
    query: Arc<spectre_query::Query>,
    next_wv: u64,
    next_cg: u64,
}

impl VersionFactory for BenchFactory {
    fn fresh(
        &mut self,
        window: &Arc<WindowInfo>,
        suppressed: Vec<Arc<CgCell>>,
    ) -> Arc<VersionState> {
        let v = VersionState::new(
            WvId(self.next_wv),
            Arc::clone(window),
            Arc::clone(&self.query),
            suppressed,
        );
        self.next_wv += 1;
        v
    }

    fn clone_of(
        &mut self,
        source: &Arc<VersionState>,
        suppressed: Vec<Arc<CgCell>>,
        expected_open: &[CgId],
    ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)> {
        let id = WvId(self.next_wv);
        self.next_wv += 1;
        let next_cg = &mut self.next_cg;
        let mut mk_twin = |cell: &CgCell| {
            let t = Arc::new(cell.twin(CgId(*next_cg)));
            *next_cg += 1;
            t
        };
        VersionState::clone_speculative(source, id, suppressed, expected_open, &mut mk_twin)
    }
}

fn bench_factory() -> BenchFactory {
    let mut schema = Schema::new();
    let query = Arc::new(queries::q1(&mut schema, 2, 50, Direction::Rising));
    BenchFactory {
        query,
        next_wv: 0,
        next_cg: 10_000,
    }
}

fn populated_tree(windows: usize, cgs: usize, lazy: bool) -> (DependencyTree, BenchFactory) {
    let mut tree = DependencyTree::with_lazy(lazy);
    let mut factory = bench_factory();
    let mut creators = Vec::new();
    for w in 0..windows as u64 {
        let window = Arc::new(WindowInfo::new(w, w * 10, w * 10, w * 10));
        let created = tree.new_window(&window, &mut factory);
        creators.push(created[0].clone());
    }
    for (i, creator) in creators.iter().take(cgs).enumerate() {
        let cell = Arc::new(CgCell::new(CgId(i as u64), creator.window().id, 2));
        tree.cg_created(creator.id(), cell, &mut factory);
    }
    (tree, factory)
}

fn bench_tree(c: &mut Criterion) {
    // Group creation: the eager tree copies the dependent subtree per
    // group; the lazy tree allocates two arena nodes per group.
    c.bench_function("tree_build_8_windows_4_cgs_eager", |b| {
        b.iter(|| black_box(populated_tree(8, 4, false).0.version_count()))
    });
    c.bench_function("tree_build_8_windows_4_cgs_lazy", |b| {
        b.iter(|| black_box(populated_tree(8, 4, true).0.version_count()))
    });
    let (mut tree, mut factory) = populated_tree(8, 4, true);
    // The first selection materializes the branches it schedules; steady
    // state measures the selection walk itself.
    c.bench_function("tree_top_k_16", |b| {
        b.iter(|| black_box(tree.top_k(16, &|_c| 0.5, &mut factory).len()))
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1000, 3), &mut schema).collect();
    c.bench_function("codec_encode_1000", |b| {
        b.iter(|| black_box(codec::encode_all(&events).len()))
    });
    let bytes = codec::encode_all(&events);
    c.bench_function("codec_decode_1000", |b| {
        b.iter(|| {
            let mut dec = codec::Decoder::new();
            dec.extend(&bytes);
            let mut n = 0;
            while let Ok(Some(_)) = dec.next_event() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_elastic(c: &mut Criterion) {
    use spectre_core::elastic::{recommend_for, speculative_efficiency, ElasticConfig};
    c.bench_function("elastic_efficiency_p05_k32", |b| {
        b.iter(|| black_box(speculative_efficiency(black_box(0.5), black_box(32))))
    });
    let config = ElasticConfig {
        max_instances: 32,
        ..Default::default()
    };
    c.bench_function("elastic_recommend", |b| {
        b.iter(|| black_box(recommend_for(&config, black_box(0.37))))
    });
}

fn bench_tree_resolution(c: &mut Criterion) {
    c.bench_function("tree_cg_create_resolve_cycle", |b| {
        b.iter(|| {
            let (tree, _) = populated_tree(8, 4, true);
            black_box(tree.version_count())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_matcher, bench_markov, bench_tree, bench_codec, bench_elastic,
        bench_tree_resolution
);
criterion_main!(micro);
