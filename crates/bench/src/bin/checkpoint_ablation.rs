//! Checkpointing ablation (paper §3.3): "Instead of reprocessing a window
//! version from the start in case of an inconsistency, it could also be
//! recovered from an intermediate checkpoint. However, when implementing
//! that approach, we realized that the overhead in periodically
//! checkpointing all window versions is much higher than the gain from
//! recovering from checkpoints."
//!
//! This binary makes the claim measurable: it runs a rollback-prone
//! workload (Q2's Kleene pattern with overlapping windows at high k) under
//! rollback-to-start and under several checkpoint intervals, reporting
//! virtual rounds (work), wall time, rollbacks, snapshots taken and
//! restores served.

use std::sync::Arc;
use std::time::Instant;

use spectre_bench::{bench_events, nyse_stream, print_row};
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_query::queries;

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let events_n = bench_events();
    let k: usize = std::env::var("SPECTRE_BENCH_K")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    println!("# §3.3 ablation: rollback-to-start vs checkpoint recovery");
    println!("# NYSE, ws = {ws}, k = {k}, events = {events_n}");
    println!(
        "# Q1 (short matches → frequent clean cuts) and Q2 (Kleene keeps \
         matches open → rare cuts)"
    );
    let header: Vec<String> = [
        "query",
        "variant",
        "rounds",
        "wall_ms",
        "rollbacks",
        "snapshots",
        "restores",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    print_row(&header, &widths);

    let variants: Vec<(String, Option<u32>)> = std::iter::once(("restart".into(), None))
        .chain(
            [16u32, 64, 256]
                .into_iter()
                .map(|f| (format!("cp-{f}"), Some(f))),
        )
        .collect();

    for query_name in ["Q1", "Q2"] {
        for (name, freq) in &variants {
            let (mut schema, events) = nyse_stream(events_n, 42);
            let q = ((0.01 * ws as f64) as usize).max(1);
            let query = match query_name {
                "Q1" => Arc::new(queries::q1(&mut schema, q, ws, Default::default())),
                _ => Arc::new(queries::q2(&mut schema, 60.0, 140.0, ws, ws / 8)),
            };
            let config = SpectreConfig {
                instances: k,
                checkpoint_freq: *freq,
                ..Default::default()
            };
            let t = Instant::now();
            let report = SpectreEngine::builder(&query)
                .config(config)
                .simulated()
                .build()
                .run(events);
            let wall = t.elapsed().as_secs_f64() * 1e3;
            let m = &report.metrics;
            print_row(
                &[
                    query_name.to_string(),
                    name.clone(),
                    format!("{}", report.rounds.unwrap_or(0)),
                    format!("{wall:.0}"),
                    format!("{}", m.rollbacks),
                    format!("{}", m.checkpoints_taken),
                    format!("{}", m.checkpoint_restores),
                ],
                &widths,
            );
        }
    }
}
