//! Elasticity ablation (paper §4.2.1, discussion): the paper proposes
//! adapting the number of operator instances to the *completion probability*
//! of partial matches rather than to event rates or CPU load. This binary
//! validates the proposal: for workloads sweeping the completion
//! probability, it compares the measured throughput of (a) a fixed large
//! instance pool, (b) the paper-inspired recommendation from the
//! speculative-efficiency model, and (c) the best fixed k found by sweeping.
//!
//! The recommendation should track the best fixed k closely — reaching the
//! plateau at uncertain completion probabilities with a fraction of the
//! instances — while wasting no throughput at the certain extremes.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_bench::{bench_events, nyse_stream, print_row, sim_throughput};
use spectre_core::elastic::{recommend_for, speculative_efficiency, ElasticConfig};
use spectre_core::SpectreConfig;
use spectre_query::queries::{self, Direction};

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let events_n = bench_events();
    let ratios = [0.005, 0.02, 0.08, 0.16, 0.32];
    let ks = [1usize, 2, 4, 8, 16, 32];
    let config = ElasticConfig {
        max_instances: 32,
        ..Default::default()
    };

    println!("# Elasticity: completion-probability-driven instance recommendation");
    println!("# Q1 on NYSE, ws = {ws}, events = {events_n}");
    let header: Vec<String> = [
        "ratio",
        "gt_prob",
        "rec_k",
        "thr(rec_k)",
        "best_k",
        "thr(best_k)",
        "thr(k=32)",
        "efficiency(rec_k)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    print_row(&header, &widths);

    for ratio in ratios {
        let q = ((ratio * ws as f64).round() as usize).max(1);
        let (mut schema, events) = nyse_stream(events_n, 42);
        let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));
        let gt = run_sequential(&query, &events).completion_probability();

        let mut thr = std::collections::HashMap::new();
        for &k in &ks {
            thr.insert(
                k,
                sim_throughput(&query, &events, &SpectreConfig::with_instances(k)),
            );
        }
        let rec = recommend_for(&config, gt);
        // Measure the recommendation (it may fall between swept ks).
        let thr_rec = sim_throughput(&query, &events, &SpectreConfig::with_instances(rec));
        let (&best_k, &thr_best) = thr
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty sweep");

        let cells = vec![
            format!("{ratio}"),
            format!("{gt:.2}"),
            format!("{rec}"),
            format!("{thr_rec:.0}"),
            format!("{best_k}"),
            format!("{thr_best:.0}"),
            format!("{:.0}", thr[&32]),
            format!("{:.2}", speculative_efficiency(gt, rec)),
        ];
        print_row(&cells, &widths);
    }
}
