//! Figure 10(a): Q1 on NYSE — throughput vs. pattern-size/window-size ratio
//! for 1–32 operator instances.
//!
//! Paper setting: ws = 8000 events, q ∈ {40, 80, …, 2560} (ratios 0.005 to
//! 0.32), 24 M NYSE quotes, 10 repeats. Scaled default here: ws = 800,
//! q = ratio·ws, shorter stream (`SPECTRE_BENCH_EVENTS`), 3 repeats —
//! ratios (the x-axis) are identical.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_bench::{
    bench_events, bench_ks, bench_repeats, nyse_source, nyse_stream, print_row,
    sim_throughput_streamed, Candlestick,
};
use spectre_core::SpectreConfig;
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let ratios = [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32];
    let ks = bench_ks();
    let repeats = bench_repeats();
    let events_n = bench_events();

    println!("# Figure 10(a): Q1 on NYSE — throughput (events/s) vs ratio q/ws");
    println!("# ws = {ws}, events = {events_n}, repeats = {repeats}");
    let mut header = vec!["ratio".to_string(), "q".to_string(), "gt_prob".to_string()];
    header.extend(ks.iter().map(|k| format!("k={k}")));
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    print_row(&header, &widths);

    // The sequential ground-truth baseline computes window ranges over the
    // full slice, so its stream is the one thing materialized — once, for
    // every ratio row. The throughput runs below are generator-fed engine
    // sessions; they never hold the stream.
    let (mut gt_schema, gt_events) = nyse_stream(events_n, 42);

    for ratio in ratios {
        let q = ((ratio * ws as f64).round() as usize).max(1);
        let mut cells = vec![format!("{ratio}"), format!("{q}")];
        // Ground truth completion probability from a sequential pass
        // (also reported by fig10d).
        {
            let query = Arc::new(queries::q1(&mut gt_schema, q, ws, Direction::Rising));
            let gt = run_sequential(&query, &gt_events).completion_probability();
            cells.push(format!("{:.2}", gt));
        }
        for &k in &ks {
            let mut samples = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                let mut schema = Schema::new();
                let source = nyse_source(events_n, 42 + rep as u64, &mut schema);
                let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));
                let config = SpectreConfig::with_instances(k);
                samples.push(sim_throughput_streamed(&query, source, &config));
            }
            cells.push(Candlestick::of(&samples).to_string());
        }
        let widths: Vec<usize> = header
            .iter()
            .zip(&cells)
            .map(|(h, c)| h.len().max(12).max(c.len()))
            .collect();
        print_row(&cells, &widths);
    }
}
