//! Figure 10(b): Q2 on NYSE — throughput vs. average-pattern-size/window-size
//! ratio for 1–32 operator instances.
//!
//! Paper setting: ws = 8000 events, slide = 1000; lower/upper price limits
//! arranged so average completed pattern sizes span ≈180–2223 events, plus a
//! configuration where no pattern can complete ("0 cplx"). We reproduce the
//! method: price-quantile bands of decreasing width sweep the average
//! pattern size; an inverted band yields the 0-cplx case. The measured
//! average pattern size and ground-truth completion probability are printed
//! per row (the latter is Figure 10(e)).

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_bench::{
    bench_events, bench_ks, bench_repeats, nyse_source, nyse_stream, print_row,
    sim_throughput_streamed, Candlestick,
};
use spectre_core::SpectreConfig;
use spectre_events::Schema;
use spectre_query::queries::{self, StockVocab};

/// Price quantile of the stream (for band construction).
fn quantile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let slide = (ws / 8).max(1);
    let ks = bench_ks();
    let repeats = bench_repeats();
    let events_n = bench_events();

    // Collect the close-price distribution once to build quantile bands.
    // The pass streams straight off the generator — no event `Vec` — and
    // stride-samples the closes so the sample buffer stays bounded
    // (≤ ~1 M f64s) even at the paper's 24 M-quote scale; band edges are
    // quantiles, which stride sampling of a stationary price process
    // preserves.
    let stride = (events_n / 1_000_000).max(1);
    let mut schema0 = Schema::new();
    let source0 = nyse_source(events_n, 42, &mut schema0);
    let vocab = StockVocab::install(&mut schema0);
    let mut closes: Vec<f64> = source0
        .filter_map(|e| e.f64(vocab.close_price))
        .step_by(stride)
        .collect();
    closes.sort_by(f64::total_cmp);
    // Narrow bands → frequent limit crossings → small patterns; wide bands →
    // large patterns; inverted band → no completions.
    let bands: Vec<(String, f64, f64)> = vec![
        (
            "q45-q55".into(),
            quantile(&closes, 0.45),
            quantile(&closes, 0.55),
        ),
        (
            "q40-q60".into(),
            quantile(&closes, 0.40),
            quantile(&closes, 0.60),
        ),
        (
            "q35-q65".into(),
            quantile(&closes, 0.35),
            quantile(&closes, 0.65),
        ),
        (
            "q30-q70".into(),
            quantile(&closes, 0.30),
            quantile(&closes, 0.70),
        ),
        (
            "q25-q75".into(),
            quantile(&closes, 0.25),
            quantile(&closes, 0.75),
        ),
        (
            "q20-q80".into(),
            quantile(&closes, 0.20),
            quantile(&closes, 0.80),
        ),
        (
            "q15-q85".into(),
            quantile(&closes, 0.15),
            quantile(&closes, 0.85),
        ),
        (
            "q10-q90".into(),
            quantile(&closes, 0.10),
            quantile(&closes, 0.90),
        ),
        (
            "0cplx".into(),
            // lower below every price: the A step (close < lower) never fires.
            quantile(&closes, 0.0) - 1.0,
            quantile(&closes, 1.0) + 1.0,
        ),
    ];

    println!("# Figure 10(b): Q2 on NYSE — throughput (events/s) vs avg pattern size / ws");
    println!("# ws = {ws}, slide = {slide}, events = {events_n}, repeats = {repeats}");
    let mut header = vec![
        "band".to_string(),
        "avg_len".to_string(),
        "ratio".to_string(),
        "gt_prob".to_string(),
    ];
    header.extend(ks.iter().map(|k| format!("k={k}")));

    print_row(
        &header,
        &header.iter().map(|h| h.len().max(12)).collect::<Vec<_>>(),
    );

    // The sequential ground-truth baseline needs the full slice (window
    // ranges are computed over it) — materialized once, reused by every
    // band row. The throughput runs are generator-fed engine sessions.
    let (mut gt_schema, gt_events) = nyse_stream(events_n, 42);

    for (name, lower, upper) in bands {
        // Measure average completed pattern size + ground truth sequentially.
        let (avg_len, gt_prob) = {
            let query = Arc::new(queries::q2(&mut gt_schema, lower, upper, ws, slide));
            let r = run_sequential(&query, &gt_events);
            let avg = if r.complex_events.is_empty() {
                f64::NAN
            } else {
                r.complex_events.iter().map(|c| c.len() as f64).sum::<f64>()
                    / r.complex_events.len() as f64
            };
            (avg, r.completion_probability())
        };
        let mut cells = vec![
            name.clone(),
            format!("{avg_len:.0}"),
            format!("{:.3}", avg_len / ws as f64),
            format!("{gt_prob:.2}"),
        ];
        for &k in &ks {
            let mut samples = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                let mut schema = Schema::new();
                let source = nyse_source(events_n, 42 + rep as u64, &mut schema);
                let query = Arc::new(queries::q2(&mut schema, lower, upper, ws, slide));
                samples.push(sim_throughput_streamed(
                    &query,
                    source,
                    &SpectreConfig::with_instances(k),
                ));
            }
            cells.push(Candlestick::of(&samples).to_string());
        }
        let widths: Vec<usize> = header
            .iter()
            .zip(&cells)
            .map(|(h, c)| h.len().max(12).max(c.len()))
            .collect();
        print_row(&cells, &widths);
    }
}
