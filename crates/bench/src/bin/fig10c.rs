//! Figure 10(c): splitter overhead — maintenance + scheduling cycles per
//! second vs. number of operator instances.
//!
//! Paper setting: Q1 on NYSE, q = 80, ws = 8000; the splitter performed
//! ≈4 M cycles/s at k = 1 down to ≈450 k cycles/s at k = 32. We measure the
//! real wall-clock time spent inside `Splitter::cycle` during a simulated
//! run (the cycle does identical work in simulation and threaded modes).

use std::sync::Arc;

use spectre_bench::{
    bench_events, bench_ks, bench_repeats, nyse_source, print_row, sim_report_streamed,
};
use spectre_core::SpectreConfig;
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let q = ((0.01 * ws as f64) as usize).max(1); // paper: q = 80 at ws = 8000
    let events_n = bench_events();
    let repeats = bench_repeats();

    println!("# Figure 10(c): scheduling decisions per second vs #operator instances");
    println!("# Q1, q = {q}, ws = {ws}, events = {events_n}");
    let header = vec![
        "k".to_string(),
        "cycles/s".to_string(),
        "cycles".to_string(),
        "splitter_ms".to_string(),
    ];
    let widths = vec![4usize, 14, 12, 12];
    print_row(&header, &widths);

    for k in bench_ks() {
        let mut best = 0.0f64;
        let mut cycles = 0u64;
        let mut wall_ms = 0.0;
        for rep in 0..repeats {
            // Generator-fed engine session: the stream is never materialized.
            let mut schema = Schema::new();
            let source = nyse_source(events_n, 42 + rep as u64, &mut schema);
            let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));
            let report = sim_report_streamed(&query, source, &SpectreConfig::with_instances(k));
            let rate = report.scheduling_cycles_per_sec();
            if rate > best {
                best = rate;
                cycles = report.metrics.sched_cycles;
                wall_ms = report.splitter_wall.as_secs_f64() * 1e3;
            }
        }
        print_row(
            &[
                format!("{k}"),
                format!("{best:.0}"),
                format!("{cycles}"),
                format!("{wall_ms:.1}"),
            ],
            &widths,
        );
    }
}
