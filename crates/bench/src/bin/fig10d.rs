//! Figure 10(d): ground-truth consumption-group completion probability of Q1
//! vs. pattern-size/window-size ratio.
//!
//! Computed exactly as in the paper (§4.2.1): a sequential pass without
//! speculation; completed consumption groups divided by created consumption
//! groups.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_bench::{bench_events, nyse_stream, print_row};
use spectre_query::queries::{self, Direction};

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let events_n = bench_events();
    println!("# Figure 10(d): Q1 ground-truth completion probability vs ratio");
    println!("# ws = {ws}, events = {events_n}");
    let widths = vec![8usize, 8, 16, 12, 12];
    print_row(
        &[
            "ratio".into(),
            "q".into(),
            "completion_%".into(),
            "cgs".into(),
            "complex".into(),
        ],
        &widths,
    );
    // This figure *is* the sequential ground-truth pass, which computes
    // window ranges over the full slice — the stream is materialized once
    // and reused for every ratio row (the throughput figures stream off
    // the generator instead).
    let (mut schema, events) = nyse_stream(events_n, 42);
    for ratio in [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32] {
        let q = ((ratio * ws as f64).round() as usize).max(1);
        let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));
        let r = run_sequential(&query, &events);
        print_row(
            &[
                format!("{ratio}"),
                format!("{q}"),
                format!("{:.1}", r.completion_probability() * 100.0),
                format!("{}", r.cgs_created),
                format!("{}", r.cgs_completed),
            ],
            &widths,
        );
    }
}
