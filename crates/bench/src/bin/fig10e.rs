//! Figure 10(e): ground-truth consumption-group completion probability of Q2
//! vs. average-pattern-size/window-size ratio (sequential pass, as in the
//! paper §4.2.1; band construction as in `fig10b`).

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_bench::{bench_events, nyse_stream, print_row};
use spectre_query::queries::{self, StockVocab};

fn quantile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let slide = (ws / 8).max(1);
    let events_n = bench_events();

    // This figure *is* the sequential ground-truth pass over the full
    // slice — the one stream is materialized once and reused for the
    // quantile bands and every band row (the throughput figures stream
    // off the generator instead).
    let (mut schema0, stream0) = nyse_stream(events_n, 42);
    let vocab = StockVocab::install(&mut schema0);
    let mut closes: Vec<f64> = stream0
        .iter()
        .filter_map(|e| e.f64(vocab.close_price))
        .collect();
    closes.sort_by(f64::total_cmp);

    println!("# Figure 10(e): Q2 ground-truth completion probability vs ratio");
    println!("# ws = {ws}, slide = {slide}, events = {events_n}");
    let widths = vec![10usize, 10, 10, 16, 12, 12];
    print_row(
        &[
            "band".into(),
            "avg_len".into(),
            "ratio".into(),
            "completion_%".into(),
            "cgs".into(),
            "complex".into(),
        ],
        &widths,
    );
    let mut bands: Vec<(String, f64, f64)> = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.45]
        .iter()
        .map(|&half| {
            (
                format!(
                    "q{:02.0}-q{:02.0}",
                    (0.5 - half) * 100.0,
                    (0.5 + half) * 100.0
                ),
                quantile(&closes, 0.5 - half),
                quantile(&closes, 0.5 + half),
            )
        })
        .collect();
    bands.reverse(); // widest (largest patterns) last, like the paper's x-axis
    bands.push((
        "0cplx".into(),
        quantile(&closes, 0.0) - 1.0,
        quantile(&closes, 1.0) + 1.0,
    ));

    for (name, lower, upper) in bands {
        let query = Arc::new(queries::q2(&mut schema0, lower, upper, ws, slide));
        let r = run_sequential(&query, &stream0);
        let avg = if r.complex_events.is_empty() {
            f64::NAN
        } else {
            r.complex_events.iter().map(|c| c.len() as f64).sum::<f64>()
                / r.complex_events.len() as f64
        };
        print_row(
            &[
                name,
                format!("{avg:.0}"),
                format!("{:.3}", avg / ws as f64),
                format!("{:.1}", r.completion_probability() * 100.0),
                format!("{}", r.cgs_created),
                format!("{}", r.cgs_completed),
            ],
            &widths,
        );
    }
}
