//! Figure 10(f): maximum dependency-tree size (window versions held at the
//! same time) vs. number of operator instances.
//!
//! Paper setting: Q1 on NYSE, q = 80, ws = 8000; tree sizes grew from 41
//! versions at k = 1 to ≈6,730 at k = 32.

use std::sync::Arc;

use spectre_bench::{
    bench_events, bench_ks, bench_repeats, nyse_source, print_row, sim_report_streamed,
};
use spectre_core::SpectreConfig;
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let q = ((0.01 * ws as f64) as usize).max(1);
    let events_n = bench_events();
    let repeats = bench_repeats();

    println!("# Figure 10(f): max dependency-tree size vs #operator instances");
    println!("# Q1, q = {q}, ws = {ws}, events = {events_n}");
    println!("# wasted-speculation accounting includes the lazy tree:");
    println!("#   versions_mat  = clones actually taken (scheduled/completed branches)");
    println!("#   lazy_dropped  = completion branches discarded before any clone");
    println!("# predictor cost: refreshes = completion-vector rebuilds,");
    println!("#   refresh_ms = cumulative wall-clock spent in them");
    let widths = vec![4usize, 14, 16, 16, 16, 16, 12, 12];
    print_row(
        &[
            "k".into(),
            "max_tree".into(),
            "versions_made".into(),
            "versions_drop".into(),
            "versions_mat".into(),
            "lazy_dropped".into(),
            "refreshes".into(),
            "refresh_ms".into(),
        ],
        &widths,
    );
    for k in bench_ks() {
        let mut max_tree = 0u64;
        let mut created = 0u64;
        let mut dropped = 0u64;
        let mut materialized = 0u64;
        let mut lazy_dropped = 0u64;
        let mut refreshes = 0u64;
        let mut refresh_nanos = 0u64;
        for rep in 0..repeats {
            // Generator-fed engine session: the stream is never materialized.
            let mut schema = Schema::new();
            let source = nyse_source(events_n, 42 + rep as u64, &mut schema);
            let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));
            let report = sim_report_streamed(&query, source, &SpectreConfig::with_instances(k));
            max_tree = max_tree.max(report.metrics.max_tree_versions);
            created = created.max(report.metrics.versions_created);
            dropped = dropped.max(report.metrics.versions_dropped);
            materialized = materialized.max(report.metrics.versions_materialized);
            lazy_dropped = lazy_dropped.max(report.metrics.lazy_versions_dropped);
            refreshes = refreshes.max(report.metrics.predictor_refreshes);
            refresh_nanos = refresh_nanos.max(report.metrics.predictor_refresh_nanos);
        }
        print_row(
            &[
                format!("{k}"),
                format!("{max_tree}"),
                format!("{created}"),
                format!("{dropped}"),
                format!("{materialized}"),
                format!("{lazy_dropped}"),
                format!("{refreshes}"),
                format!("{:.1}", refresh_nanos as f64 / 1e6),
            ],
            &widths,
        );
    }
}
