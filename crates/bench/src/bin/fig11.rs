//! Figure 11: the Markov completion-probability model vs. fixed
//! probabilities (Q3 on RAND, 32 operator instances).
//!
//! Paper setting: ws = 1000, slide = 100; (a) ratio 0.002 — ground-truth
//! completion probability 100 %, where the fixed-100 % model wins and the
//! Markov model must match it; (b) ratio 0.1 — ground truth ≈32 %, where a
//! fixed ≈20 % model wins and the Markov model must come close. Wrong fixed
//! probabilities pay a large throughput penalty.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_bench::{
    bench_events, bench_repeats, print_row, rand_source, rand_stream, sim_report_streamed,
    Candlestick, PER_INSTANCE_EVENT_RATE,
};
use spectre_core::{PredictorKind, SpectreConfig};
use spectre_events::Schema;
use spectre_query::queries;

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let slide = ws / 10;
    let k: usize = std::env::var("SPECTRE_BENCH_K")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let events_n = bench_events();
    let repeats = bench_repeats();

    for (panel, ratio) in [("a", 0.002), ("b", 0.1)] {
        let pattern_size = ((ratio * ws as f64).round() as usize).max(2);
        let members = pattern_size - 1; // Q3 = leader + SET(members)
        println!(
            "# Figure 11({panel}): Q3 ratio {ratio} (pattern size {pattern_size}), \
             ws = {ws}, slide = {slide}, k = {k}, events = {events_n}"
        );
        // Ground truth for context — the sequential baseline needs the
        // full slice, so this is the one materialized stream; the model
        // sweep below feeds generator sources into engine sessions.
        {
            let (mut schema, events, symbols) = rand_stream(events_n, 42);
            let query = Arc::new(queries::q3(
                &mut schema,
                symbols[0],
                &symbols[1..=members],
                ws,
                slide,
            ));
            let gt = run_sequential(&query, &events).completion_probability();
            println!("# ground-truth completion probability: {:.1}%", gt * 100.0);
        }
        let widths = vec![10usize, 28, 12, 12];
        print_row(
            &[
                "model".into(),
                "throughput".into(),
                "refreshes".into(),
                "refresh_ms".into(),
            ],
            &widths,
        );
        let mut models: Vec<(String, PredictorKind)> = (0..=5)
            .map(|i| {
                let p = i as f64 * 0.2;
                (format!("{:.0}%", p * 100.0), PredictorKind::Fixed(p))
            })
            .collect();
        models.push(("Markov".into(), PredictorKind::default()));

        for (name, predictor) in models {
            let mut samples = Vec::with_capacity(repeats);
            let mut refreshes = 0u64;
            let mut refresh_nanos = 0u64;
            for rep in 0..repeats {
                let mut schema = Schema::new();
                let source = rand_source(events_n, 42 + rep as u64, &mut schema);
                let symbols = source.symbols().to_vec();
                let query = Arc::new(queries::q3(
                    &mut schema,
                    symbols[0],
                    &symbols[1..=members],
                    ws,
                    slide,
                ));
                let config = SpectreConfig {
                    instances: k,
                    predictor: predictor.clone(),
                    ..Default::default()
                };
                let report = sim_report_streamed(&query, source, &config);
                samples.push(report.throughput(PER_INSTANCE_EVENT_RATE));
                refreshes = refreshes.max(report.metrics.predictor_refreshes);
                refresh_nanos = refresh_nanos.max(report.metrics.predictor_refresh_nanos);
            }
            print_row(
                &[
                    name,
                    Candlestick::of(&samples).to_string(),
                    format!("{refreshes}"),
                    format!("{:.1}", refresh_nanos as f64 / 1e6),
                ],
                &widths,
            );
        }
        println!();
    }
}
