//! Bounded-memory streaming smoke: feed a paper-scale NYSE stream (default
//! 4 M events, `SPECTRE_BENCH_EVENTS` to override — the paper's full
//! workload is 24 M) straight from the generator into a threaded
//! [`SpectreEngine`] session. No `Vec<Event>` fixture ever exists: the
//! generator is consumed incrementally under the engine's back-pressure,
//! outputs are drained as they commit, and at the end the run *asserts*
//! that the peak dependency-tree size stayed within the speculative-load
//! bound — the property that makes stream length irrelevant to memory.
//!
//! ```sh
//! SPECTRE_BENCH_EVENTS=4000000 \
//!     cargo run --release -p spectre-bench --bin streaming
//! ```

use std::sync::Arc;
use std::time::Instant;

use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn main() {
    let events_n: usize = std::env::var("SPECTRE_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);
    let mut schema = Schema::new();
    // Q1 *with* its consumption policy, in the high-ratio regime of the
    // consumption bench (q = 110, ws = 200): speculation — and therefore
    // the dependency tree the back-pressure must bound — actually runs,
    // and most partial matches abandon, which is where the tree grows.
    let query = Arc::new(queries::q1(&mut schema, 110, 200, Direction::Rising));
    let config = SpectreConfig::with_batching(2, 64, 8);
    let cap = config.max_tree_versions;

    println!("streaming {events_n} events through an engine session (k = 2, load cap {cap})");
    let started = Instant::now();
    let mut engine = SpectreEngine::builder(&query)
        .config(config)
        .threaded()
        .build();
    let mut source = NyseGenerator::new(
        NyseConfig {
            symbols: 300,
            leaders: 16,
            events: events_n,
            seed: 42,
            ..NyseConfig::default()
        },
        &mut schema,
    );
    let mut outputs = 0usize;
    let report_every = 1_000_000u64;
    let mut next_report = report_every;
    loop {
        let fed = engine.ingest(source.by_ref().take(65_536));
        outputs += engine.drain_outputs().len();
        if engine.events_ingested() >= next_report {
            let m = engine.metrics();
            println!(
                "  {:>10} ingested  {:>8} outputs drained  peak tree {:>6}  ({:.1} s)",
                engine.events_ingested(),
                outputs,
                m.max_tree_versions,
                started.elapsed().as_secs_f64()
            );
            next_report += report_every;
        }
        if fed < 65_536 {
            break;
        }
    }
    let report = engine.finish();
    outputs += report.complex_events.len();

    let peak = report.metrics.max_tree_versions;
    println!(
        "done: {} events, {} complex events, {:.0} events/s, peak tree {} versions",
        report.input_events,
        outputs,
        report.throughput(),
        peak
    );
    assert_eq!(report.input_events, events_n as u64, "every event ingested");
    // The load bound counts versions + pending windows and is checked at
    // ingestion time, so the materialized-version peak may overshoot the
    // cap transiently — but it must stay in the cap's neighbourhood, not
    // scale with the stream.
    assert!(
        peak <= 2 * cap as u64,
        "peak tree size {peak} escaped the speculative-load bound {cap}"
    );
    println!("peak tree within the speculative-load bound ✔ (bounded memory)");
}
