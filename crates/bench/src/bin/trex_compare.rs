//! §4.2.3: comparison against a T-REX-style general-purpose engine.
//!
//! The paper implemented Q1 in T-REX and measured ≈1,000 events/s, versus
//! SPECTRE's ≈10,800 events/s at a single instance (and linear scaling
//! beyond). We compare the real single-thread throughput of the
//! automaton-interpreting baseline, the real single-thread throughput of
//! SPECTRE's UDF-style sequential engine, SPECTRE's threaded runtime on
//! this machine, and its simulated multi-core scaling.

use std::sync::Arc;
use std::time::Instant;

use spectre_baselines::{run_sequential, TrexEngine};
use spectre_bench::{bench_events, nyse_stream, print_row, sim_report, PER_INSTANCE_EVENT_RATE};
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_query::queries::{self, Direction};

fn main() {
    let ws: u64 = std::env::var("SPECTRE_BENCH_WS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let q = ((0.01 * ws as f64) as usize).max(1);
    let events_n = bench_events();
    let (mut schema, events) = nyse_stream(events_n, 42);
    let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));

    println!("# §4.2.3: SPECTRE vs T-REX-style engine (Q1, q = {q}, ws = {ws}, {events_n} events)");
    let widths = vec![34usize, 16, 12];
    print_row(
        &["engine".into(), "events/s".into(), "complex".into()],
        &widths,
    );

    // T-REX-style automaton engine, one thread, measured wall clock.
    let trex = TrexEngine::new(Arc::clone(&query));
    let t = Instant::now();
    let trex_result = trex.run(&events);
    let trex_rate = events.len() as f64 / t.elapsed().as_secs_f64();
    print_row(
        &[
            "T-REX-style (1 thread, measured)".into(),
            format!("{trex_rate:.0}"),
            format!("{}", trex_result.complex_events.len()),
        ],
        &widths,
    );

    // SPECTRE's UDF-style matcher, sequential, measured wall clock.
    let t = Instant::now();
    let seq = run_sequential(&query, &events);
    let seq_rate = events.len() as f64 / t.elapsed().as_secs_f64();
    print_row(
        &[
            "SPECTRE UDF sequential (measured)".into(),
            format!("{seq_rate:.0}"),
            format!("{}", seq.complex_events.len()),
        ],
        &widths,
    );

    // SPECTRE threaded on this machine (engine session, generator-free
    // feed of the shared fixture).
    for k in [1usize, 2, 4] {
        let report = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(k))
            .threaded()
            .build()
            .run(events.iter().cloned());
        print_row(
            &[
                format!("SPECTRE threaded k={k} (measured)"),
                format!("{:.0}", report.throughput()),
                format!("{}", report.complex_events.len()),
            ],
            &widths,
        );
    }

    // SPECTRE simulated multi-core scaling (calibrated).
    for k in [1usize, 8, 32] {
        let report = sim_report(&query, &events, &SpectreConfig::with_instances(k));
        print_row(
            &[
                format!("SPECTRE simulated k={k} (calibrated)"),
                format!("{:.0}", report.throughput(PER_INSTANCE_EVENT_RATE)),
                format!("{}", report.complex_events.len()),
            ],
            &widths,
        );
    }
    println!("# all engines must report identical complex-event counts");
}
