//! Shared harness utilities for regenerating the paper's evaluation figures
//! (paper §4).
//!
//! Every figure has a binary in `src/bin/` (`fig10a` … `fig10f`, `fig11`,
//! `trex_compare`) printing the same rows/series the paper plots. Absolute
//! numbers depend on hardware; the *shape* — who wins, scaling factors,
//! crossovers — is the reproduction target (see EXPERIMENTS.md).
//!
//! Scale knobs (environment variables):
//!
//! * `SPECTRE_BENCH_EVENTS` — input stream length (default 1 000 000 for
//!   the figure binaries and the threaded end-to-end bench alike, now
//!   that the lazy dependency tree makes consumption-group creation O(1);
//!   the paper streams 24 M NYSE quotes),
//! * `SPECTRE_BENCH_REPEATS` — repetitions per configuration (default 3;
//!   paper: 10),
//! * `SPECTRE_BENCH_KS` — comma-separated operator-instance counts
//!   (default `1,2,4,8,16,32`).

use std::sync::Arc;

use spectre_core::{run_simulated, SimReport, SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator, RandConfig, RandGenerator};
use spectre_events::{Event, Schema, SymbolId};
use spectre_query::Query;

/// Calibration constant: events/second one operator instance processes.
/// Chosen so the k = 1 Q1 throughput lands near the paper's ≈10,800 events/s
/// (§4.2.1); only affects the absolute scale of reported throughputs, never
/// their ratios.
pub const PER_INSTANCE_EVENT_RATE: f64 = 10_800.0;

fn events_from_env(default: usize) -> usize {
    std::env::var("SPECTRE_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads the benchmark stream length for the simulator-driven figure
/// binaries. The default matches the threaded bench at 1 M events — the
/// consumption-heavy figure workloads sustain it since group creation
/// went O(1) (lazy dependency tree); use `SPECTRE_BENCH_EVENTS` to scale
/// further toward the paper's 24 M.
pub fn bench_events() -> usize {
    events_from_env(1_000_000)
}

/// Reads the stream length for the threaded end-to-end bench (same
/// environment variable, paper-scale default: the data-path-bound fixture
/// sustains it in seconds).
pub fn threaded_bench_events() -> usize {
    events_from_env(1_000_000)
}

/// Reads the per-configuration repetition count.
pub fn bench_repeats() -> usize {
    std::env::var("SPECTRE_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Reads the operator-instance sweep.
pub fn bench_ks() -> Vec<usize> {
    std::env::var("SPECTRE_BENCH_KS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&k| k > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32])
}

/// The NYSE generator configuration of the Q1/Q2 experiments.
///
/// The scaled-down symbol universe keeps MLE density comparable to the
/// paper (16 leaders / 3000 symbols) at shorter stream lengths.
fn nyse_config(events: usize, seed: u64) -> NyseConfig {
    NyseConfig {
        symbols: 300,
        leaders: 16,
        events,
        seed,
        ..NyseConfig::default()
    }
}

fn rand_config(events: usize, seed: u64) -> RandConfig {
    RandConfig {
        symbols: 300,
        leaders: 16,
        events,
        seed,
        ..RandConfig::default()
    }
}

/// The NYSE event *source* of the Q1/Q2 experiments: an owned generator
/// that streams straight into an engine session. Nothing is materialized —
/// at paper scale (24 M quotes) the figure binaries never hold the stream
/// in memory; only the sequential ground-truth passes do (the sequential
/// baseline computes window ranges over the full slice).
pub fn nyse_source(events: usize, seed: u64, schema: &mut Schema) -> NyseGenerator {
    NyseGenerator::new(nyse_config(events, seed), schema)
}

/// The RAND event source of the Q3 / Markov experiments (streaming
/// counterpart of [`rand_stream`]; `symbols()` on the returned generator
/// gives the symbol universe the Q3 pattern is built from).
pub fn rand_source(events: usize, seed: u64, schema: &mut Schema) -> RandGenerator {
    RandGenerator::new(rand_config(events, seed), schema)
}

/// Builds the synthetic NYSE stream used by the Q1/Q2 experiments,
/// materialized as a `Vec` — for the sequential ground-truth passes.
/// Throughput measurements should feed [`nyse_source`] into the engine
/// instead.
pub fn nyse_stream(events: usize, seed: u64) -> (Schema, Vec<Event>) {
    let mut schema = Schema::new();
    let stream: Vec<Event> = nyse_source(events, seed, &mut schema).collect();
    (schema, stream)
}

/// Builds the RAND stream used by the Q3 / Markov experiments, materialized
/// as a `Vec` — for the sequential ground-truth passes. Throughput
/// measurements should feed [`rand_source`] into the engine instead.
pub fn rand_stream(events: usize, seed: u64) -> (Schema, Vec<Event>, Vec<SymbolId>) {
    let mut schema = Schema::new();
    let gen = rand_source(events, seed, &mut schema);
    let symbols = gen.symbols().to_vec();
    let stream: Vec<Event> = gen.collect();
    (schema, stream, symbols)
}

/// Runs SPECTRE in the virtual-time simulator and reports throughput in
/// events/second (calibrated by [`PER_INSTANCE_EVENT_RATE`]).
pub fn sim_throughput(query: &Arc<Query>, events: &[Event], config: &SpectreConfig) -> f64 {
    sim_report(query, events, config).throughput(PER_INSTANCE_EVENT_RATE)
}

/// Runs SPECTRE in the simulator and returns the full report.
///
/// The virtual-time calibration defines a round as *one event per
/// instance* ([`SimReport::throughput`]), so the figure harness pins
/// `batch_size` to 1 regardless of the passed configuration — a batched
/// round would process up to `batch_size` events and inflate the
/// calibrated events/s by that factor. The batched data path is a
/// real-thread optimization; its win is measured by the threaded
/// `end_to_end` bench.
pub fn sim_report(query: &Arc<Query>, events: &[Event], config: &SpectreConfig) -> SimReport {
    let config = SpectreConfig {
        batch_size: 1,
        ..config.clone()
    };
    // `run_simulated` is itself a thin wrapper over a `SpectreEngine`
    // session; the figure harness wants exactly its `SimReport` shape
    // (virtual rounds drive the calibrated throughput).
    run_simulated(query, events.to_vec(), &config)
}

/// [`sim_report`] over a *streaming* source: the generator feeds the
/// simulated engine session directly, with no `Vec` fixture at any point —
/// the figure binaries' measurement path, which must scale to the paper's
/// 24 M-quote stream without materializing it. Pins `batch_size` to 1 for
/// the same calibration reason as [`sim_report`]; the virtual rounds and
/// outputs are identical to the materialized path on the same stream.
pub fn sim_report_streamed(
    query: &Arc<Query>,
    source: impl IntoIterator<Item = Event>,
    config: &SpectreConfig,
) -> SimReport {
    let config = SpectreConfig {
        batch_size: 1,
        ..config.clone()
    };
    let report = SpectreEngine::builder(query)
        .config(config)
        .simulated()
        .build()
        .run(source);
    SimReport {
        complex_events: report.complex_events,
        metrics: report.metrics,
        rounds: report.rounds.expect("simulated sessions report rounds"),
        input_events: report.input_events,
        splitter_wall: report
            .splitter_wall
            .expect("simulated sessions report splitter wall time"),
        total_wall: report.wall,
    }
}

/// [`sim_throughput`] over a streaming source.
pub fn sim_throughput_streamed(
    query: &Arc<Query>,
    source: impl IntoIterator<Item = Event>,
    config: &SpectreConfig,
) -> f64 {
    sim_report_streamed(query, source, config).throughput(PER_INSTANCE_EVENT_RATE)
}

/// The paper's candlestick summary: 0th, 25th, 50th, 75th and 100th
/// percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candlestick {
    /// Minimum (0th percentile).
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum (100th percentile).
    pub max: f64,
}

impl Candlestick {
    /// Summarizes samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn of(samples: &[f64]) -> Candlestick {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut s = samples.to_vec();
        s.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = p * (s.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let w = idx - lo as f64;
            s[lo] * (1.0 - w) + s[hi] * w
        };
        Candlestick {
            min: s[0],
            p25: q(0.25),
            p50: q(0.5),
            p75: q(0.75),
            max: *s.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for Candlestick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} [{:.0}/{:.0}/{:.0}/{:.0}]",
            self.p50, self.min, self.p25, self.p75, self.max
        )
    }
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candlestick_of_constant_samples() {
        let c = Candlestick::of(&[5.0, 5.0, 5.0]);
        assert_eq!(c.min, 5.0);
        assert_eq!(c.p50, 5.0);
        assert_eq!(c.max, 5.0);
    }

    #[test]
    fn candlestick_percentiles() {
        let c = Candlestick::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.min, 1.0);
        assert_eq!(c.p25, 2.0);
        assert_eq!(c.p50, 3.0);
        assert_eq!(c.p75, 4.0);
        assert_eq!(c.max, 5.0);
    }

    #[test]
    fn candlestick_unordered_input() {
        let c = Candlestick::of(&[9.0, 1.0, 5.0]);
        assert_eq!(c.min, 1.0);
        assert_eq!(c.p50, 5.0);
        assert_eq!(c.max, 9.0);
    }

    #[test]
    fn env_defaults() {
        assert!(bench_events() > 0);
        assert!(bench_repeats() >= 1);
        assert!(!bench_ks().is_empty());
    }

    #[test]
    fn streams_are_deterministic() {
        let (_, a) = nyse_stream(100, 7);
        let (_, b) = nyse_stream(100, 7);
        assert_eq!(a, b);
        let (_, c, syms) = rand_stream(100, 7);
        let (_, d, _) = rand_stream(100, 7);
        assert_eq!(c, d);
        assert_eq!(syms.len(), 300);
    }

    #[test]
    fn sources_match_materialized_streams() {
        let (_, expected) = nyse_stream(200, 9);
        let mut schema = Schema::new();
        let streamed: Vec<Event> = nyse_source(200, 9, &mut schema).collect();
        assert_eq!(streamed, expected);
        let (_, expected, syms) = rand_stream(200, 9);
        let mut schema = Schema::new();
        let gen = rand_source(200, 9, &mut schema);
        assert_eq!(gen.symbols(), &syms[..]);
        let streamed: Vec<Event> = gen.collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn streamed_sim_report_matches_the_materialized_path() {
        use spectre_query::queries::{self, Direction};
        let (mut schema, events) = nyse_stream(2000, 11);
        let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
        let config = SpectreConfig::with_instances(4);
        let fixture = sim_report(&query, &events, &config);
        let mut schema2 = Schema::new();
        let source = nyse_source(2000, 11, &mut schema2);
        let streamed = sim_report_streamed(&query, source, &config);
        assert_eq!(streamed.complex_events, fixture.complex_events);
        assert_eq!(streamed.rounds, fixture.rounds);
        assert_eq!(streamed.input_events, fixture.input_events);
    }
}
