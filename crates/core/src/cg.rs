//! Shared consumption-group state.
//!
//! A consumption group (CG) records the events of one partial match that
//! will be consumed if the match completes (paper §3.1). The cell is shared
//! between the operator instance processing the owning window version (which
//! adds events and eventually resolves the group) and every instance whose
//! window version *suppresses* the group's events, plus the splitter (which
//! reads δ and the window position for prediction).
//!
//! The event set carries a version counter, bumped on every mutation — the
//! consistency check of paper Fig. 8 (lines 31–45) compares it against the
//! last checked version to detect late updates cheaply.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use parking_lot::RwLock;
use spectre_events::Seq;

/// Unique id of a consumption group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CgId(pub u64);

impl std::fmt::Display for CgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cg{}", self.0)
    }
}

/// Life-cycle status of a consumption group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgStatus {
    /// The underlying partial match is still in progress.
    Open,
    /// The match completed: the group's events are consumed.
    Completed,
    /// The match was abandoned: the group is dropped, nothing is consumed.
    Abandoned,
}

const OPEN: u8 = 0;
const COMPLETED: u8 = 1;
const ABANDONED: u8 = 2;

/// Shared state of one consumption group.
#[derive(Debug)]
pub struct CgCell {
    id: CgId,
    window_id: u64,
    status: AtomicU8,
    /// Mutation counter of `events`.
    version: AtomicU64,
    /// Completion distance δ of the underlying partial match.
    delta: AtomicU64,
    /// Relative position of the owning version inside its window when δ was
    /// last updated — input `posInWindow` of the prediction (paper Fig. 5).
    pos_in_window: AtomicU64,
    /// Highest sequence number ever added to `events`. A *resolved* cell
    /// whose `max_seq` precedes a window's first event can never suppress
    /// anything in that window — versions of later windows prune such
    /// cells at creation, keeping suppressed sets bounded by the live
    /// overlap instead of growing with stream history.
    max_seq: AtomicU64,
    events: RwLock<HashSet<Seq>>,
}

impl CgCell {
    /// Creates an open group with the given initial completion distance.
    pub fn new(id: CgId, window_id: u64, initial_delta: usize) -> Self {
        CgCell {
            id,
            window_id,
            status: AtomicU8::new(OPEN),
            version: AtomicU64::new(0),
            delta: AtomicU64::new(initial_delta as u64),
            pos_in_window: AtomicU64::new(0),
            max_seq: AtomicU64::new(0),
            events: RwLock::new(HashSet::new()),
        }
    }

    /// The group's id.
    pub fn id(&self) -> CgId {
        self.id
    }

    /// Id of the window whose version created the group.
    pub fn window_id(&self) -> u64 {
        self.window_id
    }

    /// Current status.
    pub fn status(&self) -> CgStatus {
        match self.status.load(Ordering::Acquire) {
            OPEN => CgStatus::Open,
            COMPLETED => CgStatus::Completed,
            _ => CgStatus::Abandoned,
        }
    }

    /// `true` once completed or abandoned.
    pub fn is_resolved(&self) -> bool {
        self.status() != CgStatus::Open
    }

    /// Current event-set version (bumped on every mutation).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Current completion distance δ.
    pub fn delta(&self) -> usize {
        self.delta.load(Ordering::Relaxed) as usize
    }

    /// Position of the owner inside its window at the last update.
    pub fn pos_in_window(&self) -> u64 {
        self.pos_in_window.load(Ordering::Relaxed)
    }

    /// Adds an event to the group and updates δ / window position.
    ///
    /// Only the owning instance calls this; the version counter is bumped
    /// *after* the event is visible so that a reader observing the old
    /// version also re-reads the set on the next consistency check.
    pub fn add_event(&self, seq: Seq, delta: usize, pos_in_window: u64) {
        {
            let mut events = self.events.write();
            events.insert(seq);
        }
        self.max_seq.fetch_max(seq, Ordering::Relaxed);
        self.delta.store(delta as u64, Ordering::Relaxed);
        self.pos_in_window.store(pos_in_window, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Updates δ / window position without adding an event (a processed
    /// event can advance the match without being consumable).
    pub fn touch(&self, delta: usize, pos_in_window: u64) {
        self.delta.store(delta as u64, Ordering::Relaxed);
        self.pos_in_window.store(pos_in_window, Ordering::Relaxed);
    }

    /// `true` if `seq` is currently in the group's event set.
    pub fn contains(&self, seq: Seq) -> bool {
        self.events.read().contains(&seq)
    }

    /// Snapshot of the event set.
    pub fn events(&self) -> Vec<Seq> {
        self.events.read().iter().copied().collect()
    }

    /// Number of events in the group.
    pub fn event_count(&self) -> usize {
        self.events.read().len()
    }

    /// Highest sequence number ever added (0 for an empty group). Only
    /// meaningful for pruning once the cell [is resolved](Self::is_resolved)
    /// — an open group may still grow.
    pub fn max_seq(&self) -> Seq {
        self.max_seq.load(Ordering::Relaxed)
    }

    /// `true` if this cell can never suppress an event of a window whose
    /// first event is `window_start_seq`: the group is resolved (its event
    /// set is final) and every event precedes the window. Versions prune
    /// such cells from their suppressed sets at creation. Lock-free on
    /// purpose — it runs per inherited cell per version creation, on the
    /// splitter's hot path. `max_seq == 0` is left ambiguous with "empty"
    /// and never pruned (an empty completed cell suppresses nothing but is
    /// kept defensively; at most one real event, seq 0, shares the value).
    ///
    /// Ordering matters: the status is read *first* (Acquire). The owning
    /// instance's last `add_event` happens-before its `complete()`
    /// (Release), so observing the resolved status guarantees the final
    /// `max_seq` is visible — reading `max_seq` before the status could
    /// pair a stale maximum with a fresh resolution and prune a cell
    /// whose real events reach into the window.
    pub fn is_dead_for(&self, window_start_seq: Seq) -> bool {
        self.is_resolved() && {
            let max = self.max_seq.load(Ordering::Relaxed);
            max > 0 && max < window_start_seq
        }
    }

    /// `true` if any event of the group is contained in `sorted_used`
    /// (a sorted slice of processed sequence numbers) — the intersection
    /// test of the consistency check.
    pub fn intersects_sorted(&self, sorted_used: &[Seq]) -> bool {
        let events = self.events.read();
        events
            .iter()
            .any(|seq| sorted_used.binary_search(seq).is_ok())
    }

    /// Creates an independent *twin* of this (open) group under a new id:
    /// same event set, completion distance and window position, but its own
    /// identity and life cycle.
    ///
    /// Twins back the speculative copies of window versions: the copy
    /// continues the same partial match in an alternative world, so its
    /// group must resolve independently of the original's (the two worlds
    /// may complete or abandon the corresponding match differently).
    pub fn twin(&self, id: CgId) -> CgCell {
        let events = self.events.read().clone();
        CgCell {
            id,
            window_id: self.window_id,
            // Always open: the twin's owner continues the match and decides
            // its own outcome, even if the original resolved concurrently.
            status: AtomicU8::new(OPEN),
            version: AtomicU64::new(self.version.load(Ordering::Acquire)),
            delta: AtomicU64::new(self.delta.load(Ordering::Relaxed)),
            pos_in_window: AtomicU64::new(self.pos_in_window.load(Ordering::Relaxed)),
            max_seq: AtomicU64::new(self.max_seq.load(Ordering::Relaxed)),
            events: RwLock::new(events),
        }
    }

    /// Marks the group completed.
    pub fn complete(&self) {
        self.status.store(COMPLETED, Ordering::Release);
    }

    /// Marks the group abandoned.
    pub fn abandon(&self) {
        self.status.store(ABANDONED, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let cg = CgCell::new(CgId(1), 7, 5);
        assert_eq!(cg.id(), CgId(1));
        assert_eq!(cg.window_id(), 7);
        assert_eq!(cg.status(), CgStatus::Open);
        assert_eq!(cg.delta(), 5);
        assert!(!cg.is_resolved());
        cg.complete();
        assert_eq!(cg.status(), CgStatus::Completed);
        assert!(cg.is_resolved());

        let cg2 = CgCell::new(CgId(2), 7, 5);
        cg2.abandon();
        assert_eq!(cg2.status(), CgStatus::Abandoned);
    }

    #[test]
    fn add_event_bumps_version_and_updates_delta() {
        let cg = CgCell::new(CgId(1), 0, 3);
        assert_eq!(cg.version(), 0);
        cg.add_event(42, 2, 10);
        assert_eq!(cg.version(), 1);
        assert_eq!(cg.delta(), 2);
        assert_eq!(cg.pos_in_window(), 10);
        assert!(cg.contains(42));
        assert!(!cg.contains(43));
        cg.add_event(43, 1, 11);
        assert_eq!(cg.version(), 2);
        assert_eq!(cg.event_count(), 2);
    }

    #[test]
    fn touch_updates_delta_without_version_bump() {
        let cg = CgCell::new(CgId(1), 0, 3);
        cg.touch(1, 5);
        assert_eq!(cg.version(), 0);
        assert_eq!(cg.delta(), 1);
        assert_eq!(cg.pos_in_window(), 5);
    }

    #[test]
    fn sorted_intersection() {
        let cg = CgCell::new(CgId(1), 0, 3);
        cg.add_event(10, 2, 0);
        cg.add_event(20, 1, 1);
        assert!(cg.intersects_sorted(&[5, 10, 15]));
        assert!(!cg.intersects_sorted(&[5, 15, 25]));
        assert!(!cg.intersects_sorted(&[]));
    }

    #[test]
    fn events_snapshot() {
        let cg = CgCell::new(CgId(1), 0, 3);
        cg.add_event(3, 2, 0);
        cg.add_event(1, 1, 1);
        let mut ev = cg.events();
        ev.sort_unstable();
        assert_eq!(ev, vec![1, 3]);
    }
}
