//! Runtime configuration.

use crate::markov::MarkovConfig;

/// Which completion-probability predictor to use (paper §4.2.2 compares the
/// adaptive Markov model against fixed probabilities, Fig. 11).
#[derive(Debug, Clone)]
pub enum PredictorKind {
    /// The adaptive Markov model (paper §3.2.1).
    Markov(MarkovConfig),
    /// A fixed completion probability for every group.
    Fixed(f64),
}

impl Default for PredictorKind {
    fn default() -> Self {
        PredictorKind::Markov(MarkovConfig::default())
    }
}

/// Configuration of a SPECTRE runtime (simulated or threaded).
#[derive(Debug, Clone)]
pub struct SpectreConfig {
    /// Number of operator instances k (the paper's parallelization degree).
    pub instances: usize,
    /// Completion-probability predictor.
    pub predictor: PredictorKind,
    /// Events between consistency checks (`consistencyCheckFreq`,
    /// paper Fig. 8).
    pub consistency_check_freq: u32,
    /// Splitter maintenance cycles happen every `sched_period` simulation
    /// rounds (the threaded splitter cycles continuously).
    pub sched_period: u32,
    /// Maximum events the splitter ingests per maintenance cycle.
    pub ingest_per_cycle: usize,
    /// Size of one [`EventBatch`](crate::splitter::EventBatch): how many
    /// events the splitter accumulates before flushing them to the window
    /// store in one write per touched window, and how many events an
    /// operator instance fetches and processes per scheduling step. Larger
    /// batches amortize lock and queue traffic on the hot path; smaller
    /// batches tighten scheduling granularity. `1` reproduces the original
    /// event-at-a-time hand-off exactly. Output is identical for every
    /// batch size (see `tests/tests/smoke.rs`).
    pub batch_size: usize,
    /// Number of shards in the [`WindowStore`](crate::store::WindowStore).
    /// Windows are mapped to shards by window-id hash, so instances working
    /// on different windows take different locks instead of serializing on
    /// one. `1` degenerates to the original single-lock store. Output is
    /// identical for every shard count.
    pub store_shards: usize,
    /// Soft cap on live window versions: ingestion stalls (once the root
    /// window is fully ingested) while the tree is larger, bounding
    /// speculative fan-out. Creating a consumption group copies the
    /// creator's dependent subtree, so the per-group cost grows with the
    /// tree; a bounded tree keeps throughput stable on long streams
    /// (million-event workloads degrade severely above ~1k versions).
    pub max_tree_versions: usize,
    /// Checkpoint interval in events, or `None` to roll back to the window
    /// start (the paper's final design: "the overhead in periodically
    /// checkpointing all window versions is much higher than the gain from
    /// recovering from checkpoints", §3.3). `Some(n)` snapshots a version's
    /// state at clean cuts (no open partial match) every ≥ `n` events and
    /// restores from the snapshot on rollback when it is still consistent.
    pub checkpoint_freq: Option<u32>,
}

impl Default for SpectreConfig {
    fn default() -> Self {
        SpectreConfig {
            instances: 4,
            predictor: PredictorKind::default(),
            consistency_check_freq: 64,
            sched_period: 1,
            ingest_per_cycle: 64,
            batch_size: 64,
            store_shards: 8,
            max_tree_versions: 512,
            checkpoint_freq: None,
        }
    }
}

impl SpectreConfig {
    /// Convenience constructor for `k` instances with defaults otherwise.
    pub fn with_instances(instances: usize) -> Self {
        SpectreConfig {
            instances,
            ..Default::default()
        }
    }

    /// Convenience constructor for the batching/sharding sweep: `k`
    /// instances, the given hand-off batch size and window-store shard
    /// count, defaults otherwise.
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::SpectreConfig;
    ///
    /// let unbatched = SpectreConfig::with_batching(4, 1, 1);
    /// let batched = SpectreConfig::with_batching(4, 1024, 8);
    /// assert_eq!(unbatched.instances, batched.instances);
    /// assert_eq!(batched.batch_size, 1024);
    /// assert_eq!(batched.store_shards, 8);
    /// ```
    pub fn with_batching(instances: usize, batch_size: usize, store_shards: usize) -> Self {
        SpectreConfig {
            instances,
            batch_size,
            store_shards,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero instances, zero check frequency, zero scheduling
    /// period or an out-of-range fixed probability.
    pub fn validate(&self) {
        assert!(self.instances > 0, "need at least one operator instance");
        assert!(
            self.consistency_check_freq > 0,
            "consistency check frequency must be positive"
        );
        assert!(self.sched_period > 0, "scheduling period must be positive");
        assert!(self.ingest_per_cycle > 0, "ingest batch must be positive");
        assert!(self.batch_size > 0, "hand-off batch size must be positive");
        assert!(self.store_shards > 0, "store shard count must be positive");
        assert!(
            self.checkpoint_freq != Some(0),
            "checkpoint interval must be positive"
        );
        if let PredictorKind::Fixed(p) = self.predictor {
            assert!((0.0..=1.0).contains(&p), "fixed probability out of range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SpectreConfig::default().validate();
        SpectreConfig::with_instances(32).validate();
        SpectreConfig::with_batching(4, 1024, 16).validate();
    }

    #[test]
    #[should_panic(expected = "hand-off batch size must be positive")]
    fn zero_batch_rejected() {
        SpectreConfig::with_batching(1, 0, 1).validate();
    }

    #[test]
    #[should_panic(expected = "store shard count must be positive")]
    fn zero_shards_rejected() {
        SpectreConfig::with_batching(1, 1, 0).validate();
    }

    #[test]
    #[should_panic(expected = "at least one operator instance")]
    fn zero_instances_rejected() {
        SpectreConfig::with_instances(0).validate();
    }

    #[test]
    #[should_panic(expected = "fixed probability out of range")]
    fn bad_fixed_probability_rejected() {
        SpectreConfig {
            predictor: PredictorKind::Fixed(2.0),
            ..Default::default()
        }
        .validate();
    }
}
