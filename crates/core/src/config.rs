//! Runtime configuration.

use crate::markov::MarkovConfig;
use crate::reorder::ReorderConfig;

/// Which completion-probability predictor to use (paper §4.2.2 compares the
/// adaptive Markov model against fixed probabilities, Fig. 11).
#[derive(Debug, Clone)]
pub enum PredictorKind {
    /// The adaptive Markov model (paper §3.2.1).
    Markov(MarkovConfig),
    /// A fixed completion probability for every group.
    Fixed(f64),
}

impl Default for PredictorKind {
    fn default() -> Self {
        PredictorKind::Markov(MarkovConfig::default())
    }
}

/// Configuration of a SPECTRE runtime (simulated or threaded).
#[derive(Debug, Clone)]
pub struct SpectreConfig {
    /// Number of operator instances k (the paper's parallelization degree).
    pub instances: usize,
    /// Completion-probability predictor.
    pub predictor: PredictorKind,
    /// Events between consistency checks (`consistencyCheckFreq`,
    /// paper Fig. 8).
    pub consistency_check_freq: u32,
    /// Splitter maintenance cycles happen every `sched_period` simulation
    /// rounds (the threaded splitter cycles continuously).
    pub sched_period: u32,
    /// Maximum events the splitter ingests per maintenance cycle.
    pub ingest_per_cycle: usize,
    /// Size of one [`EventBatch`](crate::splitter::EventBatch): how many
    /// events the splitter accumulates before flushing them to the window
    /// store in one write per touched window, and how many events an
    /// operator instance fetches and processes per scheduling step. Larger
    /// batches amortize lock and queue traffic on the hot path; smaller
    /// batches tighten scheduling granularity. `1` reproduces the original
    /// event-at-a-time hand-off exactly. Output is identical for every
    /// batch size (see `tests/tests/smoke.rs`).
    pub batch_size: usize,
    /// Number of shards in the [`WindowStore`](crate::store::WindowStore).
    /// Windows are mapped to shards by window-id hash, so instances working
    /// on different windows take different locks instead of serializing on
    /// one. `1` degenerates to the original single-lock store. Output is
    /// identical for every shard count.
    pub store_shards: usize,
    /// Soft cap on live (materialized) window versions: ingestion stalls
    /// (once the root window is fully ingested) while the tree is larger,
    /// bounding speculative fan-out. With lazy materialization on (the
    /// default), group creation is O(1) and unscheduled branches hold no
    /// version state, which doubles the affordable cap versus the eager
    /// design's ~512 sweet spot — but the cap still matters: per-cycle
    /// tree work (window attach at every leaf, selection walks, subtree
    /// drops) scales with live versions whether or not they were cloned
    /// lazily. Measured on the 1 M-event consumption bench (k = 2), the
    /// lazy engine runs ~343 k events/s at 1024, ~252 k at 2048 and
    /// ~50 k at 8192, so the default stays at 1024; raise it only with
    /// enough instances to actually process the extra breadth.
    pub max_tree_versions: usize,
    /// Create consumption-group completion branches as lazy
    /// (copy-on-schedule) vertices. On — the default — a branch's version
    /// state is cloned only when the top-k selection first schedules it or
    /// its group completes; branches dropped by an abandonment or rollback
    /// cost nothing, making group creation O(1) in tree size. Off
    /// reproduces the original eager subtree copy at `cg_created` for A/B
    /// comparison. Output is identical either way (enforced by the lazy
    /// on/off matrices in `tests/tests/smoke.rs` / `threaded.rs`).
    pub lazy_materialization: bool,
    /// Attach newly opened windows to the dependency tree as *pending
    /// attach* thunks. On — the default — opening a window records the
    /// window on one marker per leaf lineage (O(leaves) pointer work, no
    /// version state), and the fresh versions are created only when the
    /// top-k selection actually schedules the lineage (or the root lineage
    /// retires into it), so per-window version creation drops from
    /// O(leaves) to O(scheduled lineages). Off reproduces the original
    /// eager per-leaf attach for A/B comparison. Output is identical
    /// either way (enforced by the attach on/off matrices in
    /// `tests/tests/smoke.rs` / `threaded.rs`).
    pub lazy_attach: bool,
    /// Checkpoint interval in events, or `None` to roll back to the window
    /// start (the paper's final design: "the overhead in periodically
    /// checkpointing all window versions is much higher than the gain from
    /// recovering from checkpoints", §3.3). `Some(n)` snapshots a version's
    /// state at clean cuts (no open partial match) every ≥ `n` events and
    /// restores from the snapshot on rollback when it is still consistent.
    pub checkpoint_freq: Option<u32>,
    /// Opt-in out-of-order ingestion: `Some` interposes a watermark-driven
    /// [`ReorderBuffer`](crate::reorder::ReorderBuffer) between the session
    /// surface (`push`/`push_batch`/`ingest`) and the splitter, so events
    /// may arrive up to [`ReorderConfig::max_delay`] timestamp ticks out
    /// of order and still produce the exact in-order output. Buffer-cap
    /// back-pressure surfaces as the existing `PushResult::Full`. `None`
    /// (the default) feeds the splitter directly — timestamps are assumed
    /// monotone, exactly the pre-reorder behavior.
    pub reorder: Option<ReorderConfig>,
}

impl Default for SpectreConfig {
    fn default() -> Self {
        SpectreConfig {
            instances: 4,
            predictor: PredictorKind::default(),
            consistency_check_freq: 64,
            sched_period: 1,
            ingest_per_cycle: 64,
            batch_size: 64,
            store_shards: 8,
            max_tree_versions: 1024,
            lazy_materialization: true,
            lazy_attach: true,
            checkpoint_freq: None,
            reorder: None,
        }
    }
}

impl SpectreConfig {
    /// Convenience constructor for `k` instances with defaults otherwise.
    pub fn with_instances(instances: usize) -> Self {
        SpectreConfig {
            instances,
            ..Default::default()
        }
    }

    /// Convenience constructor for the batching/sharding sweep: `k`
    /// instances, the given hand-off batch size and window-store shard
    /// count, defaults otherwise.
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::SpectreConfig;
    ///
    /// let unbatched = SpectreConfig::with_batching(4, 1, 1);
    /// let batched = SpectreConfig::with_batching(4, 1024, 8);
    /// assert_eq!(unbatched.instances, batched.instances);
    /// assert_eq!(batched.batch_size, 1024);
    /// assert_eq!(batched.store_shards, 8);
    /// ```
    pub fn with_batching(instances: usize, batch_size: usize, store_shards: usize) -> Self {
        SpectreConfig {
            instances,
            batch_size,
            store_shards,
            ..Default::default()
        }
    }

    /// Returns the configuration with lazy branch materialization toggled —
    /// `false` restores the eager subtree copy at group creation (and is
    /// usually paired with a lower
    /// [`max_tree_versions`](Self::max_tree_versions), since eager copies
    /// make oversized trees expensive).
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::SpectreConfig;
    ///
    /// let eager = SpectreConfig::with_instances(4).with_lazy_materialization(false);
    /// assert!(!eager.lazy_materialization);
    /// assert!(SpectreConfig::default().lazy_materialization);
    /// ```
    #[must_use]
    pub fn with_lazy_materialization(mut self, on: bool) -> Self {
        self.lazy_materialization = on;
        self
    }

    /// Returns the configuration with lazy window attach toggled — `false`
    /// restores the eager fresh-version-per-leaf attach at window open.
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::SpectreConfig;
    ///
    /// let eager = SpectreConfig::with_instances(4).with_lazy_attach(false);
    /// assert!(!eager.lazy_attach);
    /// assert!(SpectreConfig::default().lazy_attach);
    /// ```
    #[must_use]
    pub fn with_lazy_attach(mut self, on: bool) -> Self {
        self.lazy_attach = on;
        self
    }

    /// Returns the configuration with the reorder stage enabled at the
    /// given bounded-lateness `max_delay` (timestamp ticks), with the
    /// standard policies — periodic per-event watermarks, late events
    /// dropped, a 4096-event buffer. Set
    /// [`reorder`](Self::reorder) directly for a custom
    /// [`ReorderConfig`].
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::SpectreConfig;
    ///
    /// let config = SpectreConfig::with_instances(4).with_reorder(1024);
    /// assert_eq!(config.reorder.as_ref().unwrap().max_delay, 1024);
    /// assert!(SpectreConfig::default().reorder.is_none());
    /// ```
    #[must_use]
    pub fn with_reorder(mut self, max_delay: u64) -> Self {
        self.reorder = Some(ReorderConfig::bounded(max_delay));
        self
    }

    /// Validates the configuration, reporting the first violated
    /// constraint as an error.
    /// [`crate::SpectreEngineBuilder::try_build`] surfaces this as
    /// [`EngineError::InvalidConfig`](crate::EngineError::InvalidConfig)
    /// instead of panicking.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("need at least one operator instance".into());
        }
        if self.consistency_check_freq == 0 {
            return Err("consistency check frequency must be positive".into());
        }
        if self.sched_period == 0 {
            return Err("scheduling period must be positive".into());
        }
        if self.ingest_per_cycle == 0 {
            return Err("ingest batch must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("hand-off batch size must be positive".into());
        }
        if self.store_shards == 0 {
            return Err("store shard count must be positive".into());
        }
        if self.checkpoint_freq == Some(0) {
            return Err("checkpoint interval must be positive".into());
        }
        if let PredictorKind::Fixed(p) = self.predictor {
            if !(0.0..=1.0).contains(&p) {
                return Err("fixed probability out of range".into());
            }
        }
        if let Some(reorder) = &self.reorder {
            reorder.try_validate()?;
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero instances, zero check frequency, zero scheduling
    /// period, an out-of-range fixed probability or an invalid reorder
    /// configuration. [`try_validate`](Self::try_validate) is the
    /// non-panicking equivalent.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }
}

/// Resource policy for one tenant: how much of the shared session a
/// tenant's queries may use.
///
/// Quotas are pure policy — they never change what a query computes, only
/// how the splitter divides the k instance slots and the speculation
/// budget between tenants (see the "Multi-tenancy" section of
/// `docs/ARCHITECTURE.md`). The default quota (weight 1, no caps) for
/// every tenant reproduces the pre-tenancy schedule exactly.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Relative share of the k instance slots in each scheduling cycle.
    /// Shares are proportional to weight over the sum of the weights of
    /// tenants that have schedulable work, so an idle tenant's share
    /// flows to the busy ones (deficit-round-robin carryover).
    pub weight: u32,
    /// Cap on the tenant's total speculative load (live window versions
    /// across all its queries' dependency trees). Once a tenant is at its
    /// cap, the top-k selection stops materializing *new* versions (lazy
    /// branches, pending window attaches) for it — already-live versions
    /// still run. `None` leaves the tenant bounded only by the global
    /// [`SpectreConfig::max_tree_versions`].
    pub max_versions: Option<usize>,
    /// Cap on concurrently deployed queries owned by the tenant.
    /// Deploying beyond it fails with
    /// [`EngineError::QuotaExceeded`](crate::EngineError::QuotaExceeded).
    /// `None` means unlimited.
    pub max_queries: Option<usize>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            weight: 1,
            max_versions: None,
            max_queries: None,
        }
    }
}

impl TenantQuota {
    /// Returns the quota with the given scheduling weight.
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::TenantQuota;
    ///
    /// let quota = TenantQuota::default().with_weight(3);
    /// assert_eq!(quota.weight, 3);
    /// ```
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Returns the quota with the given speculation-budget cap.
    #[must_use]
    pub fn with_max_versions(mut self, cap: usize) -> Self {
        self.max_versions = Some(cap);
        self
    }

    /// Returns the quota with the given deployed-query cap.
    #[must_use]
    pub fn with_max_queries(mut self, cap: usize) -> Self {
        self.max_queries = Some(cap);
        self
    }

    /// Validates the quota against the session configuration it will run
    /// under. Surfaced by the builder as
    /// [`EngineError::InvalidConfig`](crate::EngineError::InvalidConfig).
    pub fn try_validate(&self, config: &SpectreConfig) -> Result<(), String> {
        if self.weight == 0 {
            return Err("tenant weight must be positive".into());
        }
        if self.max_versions == Some(0) {
            return Err("tenant version cap must be positive".into());
        }
        if let Some(cap) = self.max_versions {
            if cap > config.max_tree_versions {
                return Err(format!(
                    "tenant version cap {cap} exceeds max_tree_versions {}",
                    config.max_tree_versions
                ));
            }
        }
        if self.max_queries == Some(0) {
            return Err("tenant query cap must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SpectreConfig::default().validate();
        SpectreConfig::with_instances(32).validate();
        SpectreConfig::with_batching(4, 1024, 16).validate();
    }

    #[test]
    #[should_panic(expected = "hand-off batch size must be positive")]
    fn zero_batch_rejected() {
        SpectreConfig::with_batching(1, 0, 1).validate();
    }

    #[test]
    #[should_panic(expected = "store shard count must be positive")]
    fn zero_shards_rejected() {
        SpectreConfig::with_batching(1, 1, 0).validate();
    }

    #[test]
    #[should_panic(expected = "at least one operator instance")]
    fn zero_instances_rejected() {
        SpectreConfig::with_instances(0).validate();
    }

    #[test]
    #[should_panic(expected = "reorder buffer capacity must be positive")]
    fn zero_reorder_capacity_rejected() {
        let mut config = SpectreConfig::with_instances(1).with_reorder(64);
        config.reorder.as_mut().unwrap().capacity = 0;
        config.validate();
    }

    #[test]
    #[should_panic(expected = "fixed probability out of range")]
    fn bad_fixed_probability_rejected() {
        SpectreConfig {
            predictor: PredictorKind::Fixed(2.0),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        assert!(SpectreConfig::default().try_validate().is_ok());
        let err = SpectreConfig::with_instances(0).try_validate().unwrap_err();
        assert!(err.contains("at least one operator instance"));
        let err = SpectreConfig::with_batching(1, 0, 1)
            .try_validate()
            .unwrap_err();
        assert!(err.contains("hand-off batch size"));
    }

    #[test]
    fn default_quota_validates_under_any_config() {
        let config = SpectreConfig::default();
        assert!(TenantQuota::default().try_validate(&config).is_ok());
        assert!(TenantQuota::default()
            .with_weight(7)
            .with_max_versions(config.max_tree_versions)
            .with_max_queries(1)
            .try_validate(&config)
            .is_ok());
    }

    #[test]
    fn degenerate_quotas_are_rejected() {
        let config = SpectreConfig::default();
        let err = TenantQuota::default()
            .with_weight(0)
            .try_validate(&config)
            .unwrap_err();
        assert!(err.contains("weight must be positive"));
        let err = TenantQuota::default()
            .with_max_versions(0)
            .try_validate(&config)
            .unwrap_err();
        assert!(err.contains("version cap must be positive"));
        let err = TenantQuota::default()
            .with_max_queries(0)
            .try_validate(&config)
            .unwrap_err();
        assert!(err.contains("query cap must be positive"));
        let err = TenantQuota::default()
            .with_max_versions(config.max_tree_versions + 1)
            .try_validate(&config)
            .unwrap_err();
        assert!(err.contains("exceeds max_tree_versions"));
    }
}
