//! Completion-probability-driven elasticity (paper §4.2.1, discussion).
//!
//! The paper observes that SPECTRE's parallelization-to-throughput ratio
//! "largely depends on the completion probability of partial matches" and
//! that existing elasticity mechanisms (event-rate or CPU driven) miss this
//! factor: "Using the described throughput curves, SPECTRE could adapt the
//! number of operator instances based on the current pattern completion
//! probability." This module implements that proposal.
//!
//! The key quantity is the *speculative efficiency* of `k` operator
//! instances: the expected number of instances working on window versions
//! that survive. SPECTRE schedules the `k` window versions with the highest
//! survival probability; under the simplifying model of one consumption
//! group per window with completion probability `p`, the dependency tree is
//! a binary tree whose edges carry probability `p` (completion) and `1 − p`
//! (abandon), and the survival probability of a version is the product
//! along its root path. The expected useful parallelism is therefore the
//! sum of the `k` largest path products — computable greedily with the same
//! max-heap traversal as the scheduler's top-k selection (paper Fig. 6).
//!
//! [`ElasticController`] smooths observed completion probabilities and
//! recommends the largest `k` whose marginal efficiency stays above a
//! threshold: at `p ≈ 0` or `p ≈ 1` every added instance is useful (the
//! tree degenerates to a path and efficiency grows linearly, matching the
//! paper's near-linear scaling), while at `p ≈ 0.5` marginal gains halve
//! level by level and the controller caps the parallelism (matching the
//! throughput plateau at 8 instances in Fig. 10(a)/(b)).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Expected number of *useful* operator instances when scheduling the top-k
/// window versions of an idealized dependency tree with uniform completion
/// probability `p`.
///
/// The returned value is `Σ` of the `k` largest products of edge
/// probabilities over the infinite binary speculation tree; it lies in
/// `[1, k]` for `k ≥ 1` and equals `k` exactly when `p` is 0 or 1.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use spectre_core::elastic::speculative_efficiency;
///
/// // Deterministic outcome: all k instances do useful work.
/// assert!((speculative_efficiency(1.0, 8) - 8.0).abs() < 1e-9);
/// // Maximum uncertainty: adding instances has quickly vanishing value.
/// let e8 = speculative_efficiency(0.5, 8);
/// assert!(e8 < 4.0);
/// ```
pub fn speculative_efficiency(p: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k == 0 {
        return 0.0;
    }
    // Max-heap of path products; each popped path spawns its two children.
    // Identical to the scheduler's top-k traversal (paper Fig. 6) on the
    // idealized uniform tree.
    #[derive(PartialEq)]
    struct Path(f64);
    impl Eq for Path {}
    impl PartialOrd for Path {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Path {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Path(1.0));
    let mut sum = 0.0;
    for _ in 0..k {
        let Some(Path(prob)) = heap.pop() else { break };
        sum += prob;
        if prob > 0.0 {
            heap.push(Path(prob * p));
            heap.push(Path(prob * (1.0 - p)));
        }
    }
    sum
}

/// Configuration of the [`ElasticController`].
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Smallest recommendation.
    pub min_instances: usize,
    /// Largest recommendation (the machine's core budget).
    pub max_instances: usize,
    /// Minimum marginal efficiency an added instance must contribute
    /// (`0 < threshold ≤ 1`); higher values scale out more conservatively.
    pub marginal_threshold: f64,
    /// Exponential-smoothing factor for observed completion probabilities.
    pub smoothing: f64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            min_instances: 1,
            max_instances: 32,
            marginal_threshold: 0.25,
            smoothing: 0.3,
        }
    }
}

impl ElasticConfig {
    fn validate(&self) {
        assert!(self.min_instances >= 1, "need at least one instance");
        assert!(
            self.max_instances >= self.min_instances,
            "max_instances < min_instances"
        );
        assert!(
            self.marginal_threshold > 0.0 && self.marginal_threshold <= 1.0,
            "marginal_threshold must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.smoothing),
            "smoothing must be in [0, 1]"
        );
    }
}

/// Recommends an operator-instance count from observed consumption-group
/// completion probabilities.
///
/// # Example
///
/// ```
/// use spectre_core::elastic::{ElasticConfig, ElasticController};
///
/// let mut ctl = ElasticController::new(ElasticConfig {
///     max_instances: 32,
///     ..Default::default()
/// });
/// // All partial matches complete: full scale-out pays off.
/// for _ in 0..32 { ctl.observe(1.0); }
/// assert_eq!(ctl.recommend(), 32);
/// // Coin-flip completion: speculation waste caps useful parallelism.
/// for _ in 0..64 { ctl.observe(0.5); }
/// assert!(ctl.recommend() <= 8);
/// ```
#[derive(Debug)]
pub struct ElasticController {
    config: ElasticConfig,
    estimate: f64,
    observations: u64,
}

impl ElasticController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`ElasticConfig`]).
    pub fn new(config: ElasticConfig) -> Self {
        config.validate();
        ElasticController {
            config,
            estimate: 0.5,
            observations: 0,
        }
    }

    /// Feeds one observed completion probability (e.g. the ratio of
    /// completed to created consumption groups over the last measurement
    /// interval, or a prediction-model average).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn observe(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        if self.observations == 0 {
            self.estimate = p;
        } else {
            let a = self.config.smoothing;
            self.estimate = (1.0 - a) * self.estimate + a * p;
        }
        self.observations += 1;
    }

    /// The smoothed completion-probability estimate.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Number of observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The recommended number of operator instances for the current
    /// completion-probability estimate: the largest `k` (within bounds)
    /// whose last added instance still contributes at least
    /// `marginal_threshold` expected useful work.
    pub fn recommend(&self) -> usize {
        recommend_for(&self.config, self.estimate)
    }
}

/// Stateless core of [`ElasticController::recommend`].
pub fn recommend_for(config: &ElasticConfig, p: f64) -> usize {
    config.validate();
    let mut best = config.min_instances;
    let mut prev = speculative_efficiency(p, config.min_instances);
    for k in (config.min_instances + 1)..=config.max_instances {
        let eff = speculative_efficiency(p, k);
        if eff - prev < config.marginal_threshold {
            break;
        }
        prev = eff;
        best = k;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_linear_at_certainty() {
        for k in [1usize, 2, 8, 32] {
            assert!((speculative_efficiency(1.0, k) - k as f64).abs() < 1e-9);
            assert!((speculative_efficiency(0.0, k) - k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn efficiency_is_bounded_and_monotone_in_k() {
        for &p in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let mut prev = 0.0;
            for k in 1..=64 {
                let e = speculative_efficiency(p, k);
                assert!(e >= prev - 1e-12, "monotone in k");
                assert!(e <= k as f64 + 1e-12, "bounded by k");
                assert!(e >= 1.0 - 1e-12, "the root version always survives");
                prev = e;
            }
        }
    }

    #[test]
    fn half_probability_matches_breadth_analysis() {
        // Paper §4.2.1: at 50 % the tree is explored in breadth — 1 version
        // of the first window, 2 of the second, 4 of the third, … with
        // survival probabilities 1, ½, ½, ¼, ¼, ¼, ¼, …
        let e1 = speculative_efficiency(0.5, 1);
        let e3 = speculative_efficiency(0.5, 3);
        let e7 = speculative_efficiency(0.5, 7);
        assert!((e1 - 1.0).abs() < 1e-9);
        assert!((e3 - 2.0).abs() < 1e-9);
        assert!((e7 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_is_symmetric_in_p() {
        for k in [1usize, 4, 16] {
            for &p in &[0.1, 0.25, 0.4] {
                let a = speculative_efficiency(p, k);
                let b = speculative_efficiency(1.0 - p, k);
                assert!((a - b).abs() < 1e-9, "p and 1−p are mirror trees");
            }
        }
    }

    #[test]
    fn zero_instances_have_zero_efficiency() {
        assert_eq!(speculative_efficiency(0.7, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn efficiency_rejects_bad_probability() {
        let _ = speculative_efficiency(1.5, 4);
    }

    #[test]
    fn recommendation_scales_with_certainty() {
        let config = ElasticConfig::default();
        let certain = recommend_for(&config, 1.0);
        let coin = recommend_for(&config, 0.5);
        let skewed = recommend_for(&config, 0.9);
        assert_eq!(certain, config.max_instances);
        assert!(coin < skewed || skewed == config.max_instances);
        assert!(coin <= 8, "50% completion caps parallelism, got {coin}");
        assert!(coin >= 1);
    }

    #[test]
    fn recommendation_respects_bounds() {
        let config = ElasticConfig {
            min_instances: 4,
            max_instances: 6,
            ..Default::default()
        };
        for &p in &[0.0, 0.5, 1.0] {
            let k = recommend_for(&config, p);
            assert!((4..=6).contains(&k));
        }
    }

    #[test]
    fn controller_smooths_observations() {
        let mut ctl = ElasticController::new(ElasticConfig::default());
        assert_eq!(ctl.observations(), 0);
        ctl.observe(1.0);
        assert!(
            (ctl.estimate() - 1.0).abs() < 1e-12,
            "first observation is adopted"
        );
        ctl.observe(0.0);
        assert!(ctl.estimate() > 0.5, "smoothing dampens the jump");
        assert_eq!(ctl.observations(), 2);
    }

    #[test]
    fn controller_tracks_regime_changes() {
        let mut ctl = ElasticController::new(ElasticConfig::default());
        for _ in 0..64 {
            ctl.observe(1.0);
        }
        let high = ctl.recommend();
        for _ in 0..64 {
            ctl.observe(0.5);
        }
        let low = ctl.recommend();
        assert!(high > low, "uncertain regime must reduce parallelism");
    }

    #[test]
    #[should_panic(expected = "max_instances")]
    fn bad_bounds_rejected() {
        let _ = ElasticController::new(ElasticConfig {
            min_instances: 8,
            max_instances: 2,
            ..Default::default()
        });
    }
}
