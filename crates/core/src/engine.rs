//! The incremental engine session: SPECTRE as a push/pull streaming engine.
//!
//! [`SpectreEngine`] replaces the one-shot `run_*` drivers' "hand me the
//! whole `Vec<Event>`" surface with a session the caller feeds
//! incrementally — the standard source/engine split of streaming systems.
//! A session is constructed with a builder, fed with
//! [`push`](SpectreEngine::push) / [`push_batch`](SpectreEngine::push_batch)
//! / [`ingest`](SpectreEngine::ingest), queried with
//! [`drain_outputs`](SpectreEngine::drain_outputs) (complex events as they
//! are committed, not only at end of run) and
//! [`metrics`](SpectreEngine::metrics), and closed with
//! [`finish`](SpectreEngine::finish), which signals end-of-stream, drives
//! the run to completion and returns a unified [`Report`].
//!
//! Two execution modes share the session surface:
//!
//! * [`simulated`](SpectreEngineBuilder::simulated) — the deterministic
//!   virtual-time scheduler (splitter cycles and instance steps interleaved
//!   on the calling thread; the mode behind the paper's scalability
//!   figures), and
//! * [`threaded`](SpectreEngineBuilder::threaded) — real OS threads: the
//!   session holds `instances` worker threads for its whole lifetime, and
//!   the calling thread acts as the splitter whenever it calls into the
//!   session.
//!
//! Back-pressure is part of the API: the splitter's speculative bound
//! ([`SpectreConfig::max_tree_versions`] over
//! `DependencyTree::speculative_load`) propagates to the caller —
//! [`push`](SpectreEngine::push) returns [`PushResult::Full`] (handing the
//! event back) instead of buffering without bound, so a source can throttle
//! while total memory stays bounded by the engine's feed capacity plus the
//! speculative load cap, never by the stream length. That is what opens
//! the paper's 24 M-event workload: a generator or TCP source streams
//! through a session in constant space, where the legacy drivers needed a
//! ~2 GB materialized fixture.
//!
//! # Multi-query sessions
//!
//! One session hosts any number of concurrent queries over the shared
//! splitter, store and instance pool: add queries up front with
//! [`SpectreEngineBuilder::add_query`], or on a live session with
//! [`deploy_query`](SpectreEngine::deploy_query) (matching starts at the
//! next window boundary) and [`retire_query`](SpectreEngine::retire_query)
//! (in-flight state is freed; the other queries are untouched).
//! [`drain_outputs`](SpectreEngine::drain_outputs) tags each complex event
//! with its [`QueryId`] — single-query callers can use
//! [`drain_events`](SpectreEngine::drain_events) for the untagged stream —
//! and [`finish`](SpectreEngine::finish) reports both the aggregate and a
//! per-query breakdown ([`Report::queries`]). Queries with equal window
//! specs share their window buffers in the store: each window's events are
//! stored once, no matter how many queries consume them.
//!
//! Misuse that was formerly a panic or a silent no-op is surfaced through
//! the fallible surface ([`try_push`](SpectreEngine::try_push) /
//! [`try_drain_outputs`](SpectreEngine::try_drain_outputs) /
//! [`try_finish`](SpectreEngine::try_finish)) as [`EngineError`]; the
//! legacy infallible methods remain panic-compatible wrappers.
//!
//! The legacy [`run_simulated`](crate::run_simulated) /
//! [`run_threaded`](crate::run_threaded) entrypoints survive as thin
//! wrappers over a session (feed everything, then finish) with unchanged
//! signatures and identical results.
//!
//! # Multi-tenant sessions
//!
//! Queries can be owned by tenants
//! ([`add_query_for`](SpectreEngineBuilder::add_query_for) /
//! [`deploy_query_for`](SpectreEngine::deploy_query_for)), with per-tenant
//! [`TenantQuota`]s (scheduling weight, speculation cap, query cap) set via
//! [`set_quota`](SpectreEngineBuilder::set_quota) /
//! [`set_tenant_quota`](SpectreEngine::set_tenant_quota). The splitter
//! splits instance slots between tenants by weighted fair share (see
//! [`Splitter::schedule`](crate::splitter::Splitter)); sessions that never
//! name a tenant run entirely under [`TenantId::DEFAULT`] and behave
//! bit-identically to the untenanted engine. Rollups per tenant come from
//! [`tenant_metrics`](SpectreEngine::tenant_metrics) and
//! [`Report::tenants`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use spectre_events::Schema;
//! use spectre_datasets::{NyseConfig, NyseGenerator};
//! use spectre_query::queries;
//! use spectre_core::{SpectreConfig, SpectreEngine};
//!
//! let mut schema = Schema::new();
//! let query = Arc::new(queries::q1(&mut schema, 2, 100, Default::default()));
//! let mut engine = SpectreEngine::builder(&query)
//!     .config(SpectreConfig::with_instances(4))
//!     .simulated()
//!     .build();
//! // Feed the generator straight into the session — no Vec in between.
//! engine.ingest(NyseGenerator::new(NyseConfig::small(500, 1), &mut schema));
//! let early = engine.drain_events(); // whatever is committed so far
//! let report = engine.finish();
//! assert_eq!(report.input_events, 500);
//! println!("{} + {} complex events", early.len(), report.complex_events.len());
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spectre_events::{Event, StreamItem};
use spectre_query::{ComplexEvent, Query};

use crate::config::{SpectreConfig, TenantQuota};
use crate::instance::{InstanceCore, StepOutcome};
use crate::metrics::{MetricsSnapshot, WorkerSnapshot};
use crate::reorder::{Offer, ReorderBuffer};
use crate::shared::{QueryId, SharedState, TenantId};
use crate::splitter::Splitter;

/// A misuse of the engine session surface, reported by the `try_*` methods
/// and the query-lifecycle calls. The legacy infallible methods panic with
/// the [`Display`](std::fmt::Display) rendering of the same values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The session was already finished ([`SpectreEngine::try_finish`]):
    /// no further events can be pushed, outputs drained or queries
    /// deployed/retired.
    SessionFinished,
    /// The [`QueryId`] names no currently deployed query — it was never
    /// deployed in this session, or was already retired (ids are not
    /// reused).
    UnknownQuery(QueryId),
    /// The query cannot run on the speculative runtime (e.g. it allows
    /// more than one concurrently active partial match, where the runtime
    /// requires `max_active = 1`).
    QueryNotRunnable {
        /// The query's name.
        query: String,
        /// Why the speculative runtime rejects it.
        reason: String,
    },
    /// Deploying the query would exceed the owning tenant's
    /// [`TenantQuota::max_queries`] cap.
    QuotaExceeded {
        /// The tenant at its cap.
        tenant: TenantId,
        /// The cap that would be exceeded.
        max_queries: usize,
    },
    /// The session configuration or a tenant quota violates a constraint
    /// (the message is the constraint; see [`SpectreConfig::try_validate`]
    /// and [`TenantQuota::try_validate`]). The infallible
    /// [`SpectreEngineBuilder::build`] panics with the same message.
    InvalidConfig(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::SessionFinished => {
                write!(f, "the engine session is already finished")
            }
            EngineError::UnknownQuery(qid) => {
                write!(
                    f,
                    "no deployed query {qid} (never deployed, or already retired)"
                )
            }
            EngineError::QueryNotRunnable { query, reason } => {
                write!(f, "query {query:?} is not runnable: {reason}")
            }
            EngineError::QuotaExceeded {
                tenant,
                max_queries,
            } => {
                write!(f, "tenant {tenant} is at its query quota ({max_queries})")
            }
            EngineError::InvalidConfig(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of a [`SpectreEngine::push`].
#[derive(Debug)]
#[must_use = "a Full result hands the event back; dropping it loses the event"]
pub enum PushResult {
    /// The event was queued for ingestion.
    Accepted,
    /// Speculative back-pressure: the feed is at capacity and the last
    /// maintenance round could not drain it (the dependency tree is at its
    /// [`SpectreConfig::max_tree_versions`] load bound). The event is
    /// handed back; retry after more processing — e.g. another `push`
    /// (each attempt runs a maintenance round) or a
    /// [`drain_outputs`](SpectreEngine::drain_outputs) call.
    Full(Event),
}

impl PushResult {
    /// `true` if the event was queued.
    pub fn is_accepted(&self) -> bool {
        matches!(self, PushResult::Accepted)
    }
}

/// One query's share of a session [`Report`].
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The tenant that owned the query.
    pub tenant: TenantId,
    /// This query's complex events committed since the last
    /// [`drain_outputs`](SpectreEngine::drain_outputs), in its window
    /// order (detection order within a window).
    pub complex_events: Vec<ComplexEvent>,
    /// This query's share of the metric counters. Engine-scoped counters
    /// (`sched_cycles`, `idle_steps`, `stalled_steps`,
    /// `store_windows_opened`) are zero here; for the summable counters the
    /// aggregate [`Report::metrics`] equals the sum over queries.
    pub metrics: MetricsSnapshot,
}

/// Unified end-of-run report of an engine session (both modes), returned
/// by [`SpectreEngine::finish`]. The legacy `SimReport` / `ThreadedReport`
/// are reconstructed from this by the wrapper entrypoints.
#[derive(Debug, Clone)]
pub struct Report {
    /// Complex events committed since the last
    /// [`drain_outputs`](SpectreEngine::drain_outputs) (all of them, if
    /// the session never drained), across all queries in commit order.
    /// With a single deployed query this is exactly that query's stream in
    /// window order — the legacy flat accessor.
    pub complex_events: Vec<ComplexEvent>,
    /// Final metric counters, aggregated over the whole session.
    pub metrics: MetricsSnapshot,
    /// Per-query breakdown (outputs and metric shares) for the queries
    /// still deployed at finish. Queries retired mid-session are absent —
    /// their remaining outputs were handed back by
    /// [`retire_query`](SpectreEngine::retire_query).
    pub queries: BTreeMap<QueryId, QueryReport>,
    /// Per-tenant metric rollups for every tenant the session ever saw,
    /// including tenants whose queries all retired (their counters live
    /// on in the rollup). For the summable counters the aggregate
    /// [`metrics`](Self::metrics) equals the sum over tenants whenever no
    /// query was retired mid-session; retired queries' shares stay in
    /// their tenant's rollup, so the tenant decomposition is exact even
    /// then (up to counters still in flight on worker threads at the
    /// moment of a mid-stream retire).
    pub tenants: BTreeMap<TenantId, MetricsSnapshot>,
    /// Events ingested over the whole session, counted by the splitter —
    /// under streaming the stream length is unknown up front.
    pub input_events: u64,
    /// Wall-clock duration from session build to finish.
    pub wall: Duration,
    /// Virtual rounds until completion (simulated mode only).
    pub rounds: Option<u64>,
    /// Wall-clock time spent inside splitter maintenance cycles
    /// (simulated mode only; basis of the Fig. 10(c) measurement).
    pub splitter_wall: Option<Duration>,
}

impl Report {
    /// Measured wall-clock throughput in events per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.input_events as f64 / secs
        }
    }

    /// Renders the report as a single-line JSON summary — counts and core
    /// counters, not the complex events themselves. This is what a server
    /// front-end flushes on graceful drain; hand-rolled (the workspace has
    /// no JSON dependency) and stable enough for scripts to parse.
    pub fn summary_json(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.metrics;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"input_events\":{},\"complex_events\":{},\"wall_ms\":{},\
             \"events_per_sec\":{:.1},\"events_processed\":{},\
             \"outputs_emitted\":{},\"versions_created\":{},\"rollbacks\":{},\
             \"windows_retired\":{},\"watermarks_advanced\":{},\"queries\":[",
            self.input_events,
            self.complex_events.len(),
            self.wall.as_millis(),
            self.throughput(),
            m.events_processed,
            m.outputs_emitted,
            m.versions_created,
            m.rollbacks,
            m.windows_retired,
            m.watermarks_advanced,
        );
        for (i, (qid, qr)) in self.queries.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"query\":{},\"tenant\":{},\"complex_events\":{},\
                 \"events_processed\":{}}}",
                if i == 0 { "" } else { "," },
                qid.0,
                qr.tenant.0,
                qr.complex_events.len(),
                qr.metrics.events_processed,
            );
        }
        s.push_str("],\"tenants\":[");
        for (i, (tid, tm)) in self.tenants.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"tenant\":{},\"events_processed\":{},\"outputs_emitted\":{}}}",
                if i == 0 { "" } else { "," },
                tid.0,
                tm.events_processed,
                tm.outputs_emitted,
            );
        }
        s.push_str("]}");
        s
    }
}

/// Builder for a [`SpectreEngine`] session; see
/// [`SpectreEngine::builder`] (single query) and
/// [`SpectreEngine::multi_builder`] (start empty, add queries).
#[derive(Debug, Clone)]
pub struct SpectreEngineBuilder {
    queries: Vec<(TenantId, Arc<Query>)>,
    quotas: Vec<(TenantId, TenantQuota)>,
    config: SpectreConfig,
    threaded: bool,
}

impl SpectreEngineBuilder {
    /// Adds a query (owned by the default tenant) to be deployed when the
    /// session is built, returning the [`QueryId`] it will carry (ids are
    /// assigned densely in add order; a session built from `builder(&q)`
    /// already holds `q` as `QueryId(0)`).
    pub fn add_query(&mut self, query: &Arc<Query>) -> QueryId {
        self.add_query_for(TenantId::DEFAULT, query)
    }

    /// Adds a query owned by `tenant` to be deployed when the session is
    /// built. Id assignment is the same dense add order as
    /// [`add_query`](Self::add_query) regardless of tenant.
    pub fn add_query_for(&mut self, tenant: TenantId, query: &Arc<Query>) -> QueryId {
        self.queries.push((tenant, Arc::clone(query)));
        QueryId((self.queries.len() - 1) as u32)
    }

    /// Sets `tenant`'s [`TenantQuota`] (validated and applied at build
    /// time, before any query deploys). The last call per tenant wins.
    pub fn set_quota(&mut self, tenant: TenantId, quota: TenantQuota) -> &mut Self {
        self.quotas.push((tenant, quota));
        self
    }

    /// Sets the runtime configuration (defaults to
    /// [`SpectreConfig::default`]).
    #[must_use]
    pub fn config(mut self, config: SpectreConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the threaded mode: `instances` worker threads are spawned
    /// at [`build`](Self::build) and held by the session; the calling
    /// thread runs splitter work inside `push`/`ingest`/`finish`.
    #[must_use]
    pub fn threaded(mut self) -> Self {
        self.threaded = true;
        self
    }

    /// Selects the deterministic virtual-time simulation mode (the
    /// default): splitter cycles and instance steps interleave on the
    /// calling thread exactly as in the legacy `run_simulated` loop.
    #[must_use]
    pub fn simulated(mut self) -> Self {
        self.threaded = false;
        self
    }

    /// Builds the session (threaded mode spawns the worker threads here).
    ///
    /// # Panics
    ///
    /// Panics on any [`try_build`](Self::try_build) error: invalid
    /// configuration or quota, a query not runnable on the speculative
    /// runtime, or a tenant over its query quota.
    pub fn build(self) -> SpectreEngine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the session, reporting configuration and quota problems as
    /// values instead of panicking (threaded mode spawns the worker
    /// threads here).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] for a configuration or quota that
    /// violates a constraint, [`EngineError::QueryNotRunnable`] for a
    /// query the speculative runtime rejects, and
    /// [`EngineError::QuotaExceeded`] when the added queries overrun a
    /// tenant's [`TenantQuota::max_queries`].
    pub fn try_build(self) -> Result<SpectreEngine, EngineError> {
        let SpectreEngineBuilder {
            queries,
            quotas,
            config,
            threaded,
        } = self;
        if let Err(msg) = config.try_validate() {
            return Err(EngineError::InvalidConfig(msg));
        }
        let start = Instant::now();
        let shared = SharedState::for_config(&config);
        let mut splitter = Splitter::multi(config.clone(), Arc::clone(&shared));
        for (tenant, quota) in quotas {
            splitter.set_tenant_quota(tenant, quota)?;
        }
        for (tenant, query) in &queries {
            splitter.deploy_query_for(*tenant, Arc::clone(query))?;
        }
        let driver = if threaded {
            Driver::Threaded {
                workers: spawn_workers(&shared, &config),
            }
        } else {
            Driver::Simulated {
                instances: (0..config.instances)
                    .map(|i| {
                        InstanceCore::new(i, config.consistency_check_freq)
                            .with_checkpoints(config.checkpoint_freq)
                            .with_batch(config.batch_size)
                    })
                    .collect(),
                rounds: 0,
                splitter_wall: Duration::ZERO,
            }
        };
        // One maintenance cycle consumes at most `ingest_per_cycle` events,
        // so a feed of that size never starves a cycle — the session
        // behaves exactly like the legacy drivers, which ingested from a
        // fully materialized Vec. Anything beyond it is pure buffering.
        let capacity = config.ingest_per_cycle.max(config.batch_size);
        let reorder = config
            .reorder
            .as_ref()
            .map(|rc| ReorderBuffer::new(rc.clone()));
        // Behind a reorder stage the splitter's feed is contractually
        // timestamp-monotone; have it verify that in debug builds.
        splitter.expect_monotone(reorder.is_some());
        Ok(SpectreEngine {
            config,
            shared,
            splitter,
            reorder,
            driver,
            capacity,
            start,
            finished: false,
        })
    }
}

/// Mode-specific execution state of a session.
enum Driver {
    /// Virtual-time scheduler state (the legacy `run_simulated` loop,
    /// suspended between calls into the session).
    Simulated {
        instances: Vec<InstanceCore>,
        rounds: u64,
        splitter_wall: Duration,
    },
    /// Worker threads running [`instance_worker`]; joined at finish (or
    /// drop).
    Threaded { workers: Vec<JoinHandle<()>> },
}

/// An incremental SPECTRE session: push events in, pull complex events
/// out. See the [module docs](self) for the lifecycle and the example.
pub struct SpectreEngine {
    config: SpectreConfig,
    shared: Arc<SharedState>,
    splitter: Splitter,
    /// The watermark-driven reorder stage ahead of the splitter
    /// ([`SpectreConfig::reorder`]); `None` feeds the splitter directly.
    reorder: Option<ReorderBuffer>,
    driver: Driver,
    /// Feed-queue capacity before a push runs (or waits for) maintenance.
    capacity: usize,
    start: Instant,
    /// Set by [`try_finish`](Self::try_finish); further session calls
    /// return [`EngineError::SessionFinished`].
    finished: bool,
}

impl std::fmt::Debug for SpectreEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpectreEngine")
            .field("mode", &self.mode_name())
            .field("instances", &self.config.instances)
            .field("events_ingested", &self.splitter.events_ingested())
            .field("feed_len", &self.splitter.feed_len())
            .finish_non_exhaustive()
    }
}

impl SpectreEngine {
    /// Starts building a session over the single query `query` (deployed
    /// as `QueryId(0)`) — the original single-query entrypoint, now a thin
    /// wrapper over [`multi_builder`](Self::multi_builder).
    pub fn builder(query: &Arc<Query>) -> SpectreEngineBuilder {
        let mut builder = Self::multi_builder();
        builder.add_query(query);
        builder
    }

    /// Starts building a session hosting any number of queries: add them
    /// with [`SpectreEngineBuilder::add_query`] before
    /// [`build`](SpectreEngineBuilder::build), or deploy onto the live
    /// session with [`deploy_query`](Self::deploy_query).
    pub fn multi_builder() -> SpectreEngineBuilder {
        SpectreEngineBuilder {
            queries: Vec::new(),
            quotas: Vec::new(),
            config: SpectreConfig::default(),
            threaded: false,
        }
    }

    fn mode_name(&self) -> &'static str {
        match self.driver {
            Driver::Simulated { .. } => "simulated",
            Driver::Threaded { .. } => "threaded",
        }
    }

    /// Offers one event to the session. Returns [`PushResult::Full`] —
    /// handing the event back — when the feed is at capacity and the
    /// maintenance round this call ran could not drain it (speculative
    /// back-pressure); every retry runs another round, so a plain retry
    /// loop always terminates.
    ///
    /// # Panics
    ///
    /// Panics if the session was already finished; use
    /// [`try_push`](Self::try_push) to handle that as an error.
    pub fn push(&mut self, event: Event) -> PushResult {
        self.try_push(event).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`push`](Self::push): offering an event to a finished
    /// session is [`EngineError::SessionFinished`] instead of a panic.
    pub fn try_push(&mut self, event: Event) -> Result<PushResult, EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        if self.reorder.is_some() {
            return Ok(self.push_reordered(event));
        }
        if self.splitter.feed_len() >= self.capacity {
            self.pump();
            if self.splitter.feed_len() >= self.capacity {
                return Ok(PushResult::Full(event));
            }
        }
        self.splitter.feed(event);
        Ok(PushResult::Accepted)
    }

    /// The push path behind a reorder stage: release whatever the
    /// watermark already covers, make room if the buffer is at capacity
    /// (one maintenance round, like the direct path), then offer the event
    /// to the buffer. Buffer-cap back-pressure surfaces as the same
    /// [`PushResult::Full`] as splitter back-pressure.
    fn push_reordered(&mut self, event: Event) -> PushResult {
        self.drain_reorder();
        if self.reorder.as_ref().is_some_and(ReorderBuffer::is_full) {
            self.pump();
            self.drain_reorder();
        }
        let offer = self
            .reorder
            .as_mut()
            .expect("push_reordered without a reorder stage")
            .offer(event);
        let result = match offer {
            Offer::Buffered | Offer::DroppedLate => PushResult::Accepted,
            Offer::AdmittedLate(late) => {
                self.splitter.feed_late(late);
                PushResult::Accepted
            }
            Offer::Rejected(back) => PushResult::Full(back),
        };
        self.flush_reorder_stats();
        self.drain_reorder();
        result
    }

    /// Moves watermark-released events from the reorder buffer into the
    /// splitter feed, up to the feed capacity. No-op without a reorder
    /// stage.
    fn drain_reorder(&mut self) {
        let Some(rb) = self.reorder.as_mut() else {
            return;
        };
        while self.splitter.feed_len() < self.capacity {
            match rb.pop_ready() {
                Some(event) => self.splitter.feed(event),
                None => break,
            }
        }
    }

    /// Publishes the reorder stage's counter deltas into the metrics (per
    /// query view — see [`Splitter::record_reorder`]).
    fn flush_reorder_stats(&mut self) {
        if let Some(rb) = self.reorder.as_mut() {
            let stats = rb.take_stats();
            self.splitter.record_reorder(&stats);
        }
    }

    /// Advances the reorder stage's watermark from an external punctuation:
    /// the source asserts it will send no event with a timestamp below
    /// `stream_ts`, so everything up to `stream_ts - max_delay` becomes
    /// releasable. This is how
    /// [`WatermarkPolicy::Punctuated`](crate::reorder::WatermarkPolicy::Punctuated)
    /// streams make progress; under a periodic policy it is a way to flush
    /// ahead of the
    /// per-arrival cadence. No-op without a reorder stage.
    ///
    /// # Panics
    ///
    /// Panics if the session was already finished.
    pub fn advance_watermark(&mut self, stream_ts: u64) {
        assert!(!self.finished, "session already finished");
        if let Some(rb) = self.reorder.as_mut() {
            rb.advance_watermark(stream_ts);
            self.flush_reorder_stats();
            self.drain_reorder();
        }
    }

    /// Deploys an additional query onto the live session. The query starts
    /// matching at the next window boundary its spec group opens — events
    /// already ingested (and windows already open) are not its. If an
    /// already-deployed query has an equal window spec, the new query
    /// shares its window buffers in the store from the start.
    pub fn deploy_query(&mut self, query: &Arc<Query>) -> Result<QueryId, EngineError> {
        self.deploy_query_for(TenantId::DEFAULT, query)
    }

    /// [`deploy_query`](Self::deploy_query) with an explicit owning
    /// tenant. Fails with [`EngineError::QuotaExceeded`] when the tenant
    /// is at its [`TenantQuota::max_queries`] cap.
    pub fn deploy_query_for(
        &mut self,
        tenant: TenantId,
        query: &Arc<Query>,
    ) -> Result<QueryId, EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        self.splitter.deploy_query_for(tenant, Arc::clone(query))
    }

    /// Sets (or replaces) `tenant`'s quota on the live session. The new
    /// weight and speculation cap take effect at the next scheduling
    /// cycle; the query cap applies to subsequent deploys (queries over a
    /// newly lowered cap stay deployed).
    pub fn set_tenant_quota(
        &mut self,
        tenant: TenantId,
        quota: TenantQuota,
    ) -> Result<(), EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        self.splitter.set_tenant_quota(tenant, quota)
    }

    /// Live per-tenant metric rollups, in first-deploy order: each
    /// tenant's live queries' shares plus the residual of its retired
    /// queries. See [`Report::tenants`] for the decomposition guarantee.
    pub fn tenant_metrics(&self) -> Vec<(TenantId, MetricsSnapshot)> {
        self.splitter.tenant_metrics()
    }

    /// Retires a deployed query mid-session: its in-flight speculative
    /// versions are discarded, its scheduling slots freed and its window
    /// state released (shared window buffers live on for other
    /// subscribers), without disturbing the other queries' outputs or
    /// back-pressure. Returns the query's committed-but-undrained complex
    /// events.
    pub fn retire_query(&mut self, qid: QueryId) -> Result<Vec<ComplexEvent>, EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        self.splitter
            .retire_query(qid)
            .ok_or(EngineError::UnknownQuery(qid))
    }

    /// Ids of the currently deployed queries, in deployment order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.splitter.query_ids()
    }

    /// Feeds a whole batch, blocking (i.e. running engine work) until
    /// every event is accepted. Returns the number of events fed.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = Event>) -> u64 {
        self.ingest(batch)
    }

    /// Feeds everything a source yields, blocking until every event is
    /// accepted — the streaming replacement for handing the drivers a
    /// `Vec`: any `Iterator<Item = Event>` (a dataset generator, a
    /// `TcpSource`, a decoded file) plugs in directly and is consumed
    /// incrementally, so memory stays bounded regardless of stream
    /// length. Returns the number of events fed.
    pub fn ingest(&mut self, source: impl IntoIterator<Item = Event>) -> u64 {
        let mut fed = 0u64;
        for mut event in source {
            loop {
                match self.push(event) {
                    PushResult::Accepted => break,
                    PushResult::Full(back) => event = back,
                }
            }
            fed += 1;
        }
        fed
    }

    /// [`ingest`](Self::ingest) for framed streams that interleave
    /// watermark punctuations with events
    /// ([`StreamItem`], as produced by
    /// `spectre_datasets::FramedSource::items`): events are retry-pushed
    /// like `ingest`, watermarks advance the reorder stage via
    /// [`advance_watermark`](Self::advance_watermark). Returns the number
    /// of *events* fed (watermarks are not counted).
    pub fn ingest_items(&mut self, source: impl IntoIterator<Item = StreamItem>) -> u64 {
        let mut fed = 0u64;
        for item in source {
            match item {
                StreamItem::Event(mut event) => {
                    loop {
                        match self.push(event) {
                            PushResult::Accepted => break,
                            PushResult::Full(back) => event = back,
                        }
                    }
                    fed += 1;
                }
                StreamItem::Watermark(ts) => self.advance_watermark(ts),
            }
        }
        fed
    }

    /// Takes the complex events committed since the last call, each tagged
    /// with the query that produced it. The tagged stream is in commit
    /// order; each query's subsequence is in its window order (detection
    /// order within a window). Runs one maintenance round first, so
    /// repeated calls make progress even without further pushes.
    ///
    /// # Panics
    ///
    /// Panics if the session was already finished; use
    /// [`try_drain_outputs`](Self::try_drain_outputs) to handle that as an
    /// error.
    pub fn drain_outputs(&mut self) -> Vec<(QueryId, ComplexEvent)> {
        self.try_drain_outputs().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`drain_outputs`](Self::drain_outputs): draining a
    /// finished session is [`EngineError::SessionFinished`] instead of a
    /// panic (a finished session's remaining outputs are in its
    /// [`Report`]).
    pub fn try_drain_outputs(&mut self) -> Result<Vec<(QueryId, ComplexEvent)>, EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        self.pump();
        Ok(self.splitter.take_outputs())
    }

    /// [`drain_outputs`](Self::drain_outputs) without the query tags — the
    /// convenience for single-query sessions (the common case), where the
    /// tag is always `QueryId(0)`.
    pub fn drain_events(&mut self) -> Vec<ComplexEvent> {
        self.drain_outputs().into_iter().map(|(_, ce)| ce).collect()
    }

    /// A live snapshot of the shared metric counters, aggregated over all
    /// queries.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Live per-worker snapshots of the instance-hot counters (events
    /// processed/suppressed, idle and stalled steps), in instance order.
    /// The aggregate [`metrics`](Self::metrics) equals the base residual
    /// plus the sum of these blocks — see
    /// [`Metrics::with_workers`](crate::metrics::Metrics::with_workers).
    pub fn worker_metrics(&self) -> Vec<WorkerSnapshot> {
        self.shared.metrics.worker_snapshots()
    }

    /// Live per-query metric snapshots, in deployment order. See
    /// [`QueryReport::metrics`] for which counters have per-query shares.
    pub fn per_query_metrics(&self) -> Vec<(QueryId, MetricsSnapshot)> {
        self.splitter.per_query_metrics()
    }

    /// Events ingested so far (excludes events still in the feed queue).
    pub fn events_ingested(&self) -> u64 {
        self.splitter.events_ingested()
    }

    /// The tenant owning a deployed query, or `None` for an unknown or
    /// retired id.
    pub fn query_tenant(&self, qid: QueryId) -> Option<TenantId> {
        self.splitter.query_tenant(qid)
    }

    /// `true` once [`try_finish`](Self::try_finish) succeeded; every
    /// further session call errors with [`EngineError::SessionFinished`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Runs one unit of engine work (a virtual-time round or a splitter
    /// maintenance cycle) without pushing or draining — how an idle driver
    /// (e.g. a server feed thread with no pending frames) keeps the session
    /// progressing between arrivals.
    ///
    /// # Errors
    ///
    /// [`EngineError::SessionFinished`] if the session already finished.
    pub fn maintain(&mut self) -> Result<(), EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        self.pump();
        Ok(())
    }

    /// Signals end-of-stream, drives the run to completion, shuts the
    /// session down (threaded mode joins its workers) and returns the
    /// unified [`Report`].
    ///
    /// # Panics
    ///
    /// Simulated mode panics if the run exceeds
    /// `200 × input_events + 1_000_000` virtual rounds — a liveness guard;
    /// a correct configuration always terminates far below it.
    pub fn finish(mut self) -> Report {
        self.try_finish().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`finish`](Self::finish), usable on a borrowed session:
    /// finishing twice is [`EngineError::SessionFinished`] instead of a
    /// panic. After `Ok`, every further session call errors; dropping the
    /// session is then a no-op.
    pub fn try_finish(&mut self) -> Result<Report, EngineError> {
        if self.finished {
            return Err(EngineError::SessionFinished);
        }
        self.finished = true;
        // End-of-stream closes the reorder stage: the final watermark
        // releases everything still buffered, in timestamp order, before
        // the splitter learns the stream is over.
        if let Some(rb) = self.reorder.as_mut() {
            rb.finish();
            loop {
                self.drain_reorder();
                if self.reorder.as_ref().is_none_or(ReorderBuffer::is_empty) {
                    break;
                }
                // Feed at capacity with events still buffered: run engine
                // work to make room, exactly like a blocked push.
                self.pump();
            }
            self.flush_reorder_stats();
        }
        self.splitter.end_of_stream();
        let total = self.splitter.events_ingested() + self.splitter.feed_len() as u64;
        match &mut self.driver {
            Driver::Simulated { rounds, .. } => {
                let limit = 200u64.saturating_mul(total) + 1_000_000;
                let mut r = *rounds;
                while !self.sim_round() {
                    r += 1;
                    assert!(r < limit, "simulation exceeded liveness bound");
                }
            }
            Driver::Threaded { .. } => {
                // The calling thread becomes the splitter, as in the legacy
                // driver: yield whenever a cycle made no progress so the
                // worker threads are not starved on small machines.
                while !self.splitter.cycle() {
                    if self.splitter.made_progress() {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        // A worker that panicked mid-run must fail the session loudly, as
        // the scoped threads of the old driver did — its statistics were
        // never flushed and its processing cannot be trusted.
        if let Some(payload) = self.join_workers().into_iter().next() {
            std::panic::resume_unwind(payload);
        }
        let (rounds, splitter_wall) = match &self.driver {
            Driver::Simulated {
                rounds,
                splitter_wall,
                ..
            } => (Some(*rounds), Some(*splitter_wall)),
            Driver::Threaded { .. } => (None, None),
        };
        let mut queries: BTreeMap<QueryId, QueryReport> = self
            .splitter
            .per_query_metrics()
            .into_iter()
            .map(|(qid, metrics)| {
                let tenant = self
                    .splitter
                    .query_tenant(qid)
                    .expect("per_query_metrics lists only deployed queries");
                (
                    qid,
                    QueryReport {
                        tenant,
                        complex_events: Vec::new(),
                        metrics,
                    },
                )
            })
            .collect();
        let tenants: BTreeMap<TenantId, MetricsSnapshot> =
            self.splitter.tenant_metrics().into_iter().collect();
        let tagged = self.splitter.take_outputs();
        let mut complex_events = Vec::with_capacity(tagged.len());
        for (qid, ce) in tagged {
            if let Some(qr) = queries.get_mut(&qid) {
                qr.complex_events.push(ce.clone());
            }
            complex_events.push(ce);
        }
        Ok(Report {
            complex_events,
            metrics: self.shared.metrics.snapshot(),
            input_events: self.splitter.events_ingested(),
            wall: self.start.elapsed(),
            rounds,
            splitter_wall,
            queries,
            tenants,
        })
    }

    /// Convenience one-shot: feed everything, then [`finish`](Self::finish)
    /// — what the legacy wrapper entrypoints do.
    pub fn run(mut self, source: impl IntoIterator<Item = Event>) -> Report {
        self.ingest(source);
        self.finish()
    }

    /// One unit of engine work on the calling thread: a virtual-time round
    /// (simulated) or a splitter maintenance cycle (threaded). Returns
    /// `true` once the run is complete (only possible after end-of-stream).
    fn pump(&mut self) -> bool {
        match &mut self.driver {
            Driver::Simulated { .. } => self.sim_round(),
            Driver::Threaded { .. } => {
                let done = self.splitter.cycle();
                if !done && !self.splitter.made_progress() {
                    std::thread::yield_now();
                }
                done
            }
        }
    }

    /// One round of the legacy `run_simulated` loop: a splitter cycle
    /// every `sched_period` rounds, then one step per instance. The final
    /// cycle (run complete) ends the round early, exactly as the legacy
    /// loop broke before stepping.
    fn sim_round(&mut self) -> bool {
        let Driver::Simulated {
            instances,
            rounds,
            splitter_wall,
        } = &mut self.driver
        else {
            unreachable!("sim_round on a threaded session");
        };
        if rounds.is_multiple_of(self.config.sched_period as u64) {
            let t = Instant::now();
            let done = self.splitter.cycle();
            *splitter_wall += t.elapsed();
            if done {
                return true;
            }
        }
        for inst in instances.iter_mut() {
            let _ = inst.step(&self.shared);
        }
        *rounds += 1;
        false
    }

    /// Joins the worker threads (threaded mode; no-op otherwise),
    /// returning the panic payloads of any that died. The shared `done`
    /// flag must already be (or concurrently become) set.
    fn join_workers(&mut self) -> Vec<Box<dyn std::any::Any + Send>> {
        let mut panics = Vec::new();
        if let Driver::Threaded { workers } = &mut self.driver {
            for worker in workers.drain(..) {
                if let Err(payload) = worker.join() {
                    panics.push(payload);
                }
            }
        }
        panics
    }
}

impl Drop for SpectreEngine {
    /// Dropping an unfinished threaded session aborts it: the `done` flag
    /// is raised so the workers exit their poll loop, and they are joined
    /// (panic payloads are swallowed here — a drop must not panic).
    /// A finished session already joined them; this is a no-op then.
    fn drop(&mut self) {
        if let Driver::Threaded { workers } = &self.driver {
            if workers.is_empty() {
                return;
            }
            self.shared.done.store(true, Ordering::Release);
            self.shared.unpark_workers();
            let _ = self.join_workers();
        }
    }
}

/// Spawns the operator-instance worker threads for a threaded session.
fn spawn_workers(shared: &Arc<SharedState>, config: &SpectreConfig) -> Vec<JoinHandle<()>> {
    (0..config.instances)
        .map(|i| {
            let shared = Arc::clone(shared);
            let check_freq = config.consistency_check_freq;
            let checkpoint_freq = config.checkpoint_freq;
            let batch_size = config.batch_size;
            std::thread::spawn(move || {
                // Register for unparking before the first step: the worker
                // may enter the parking tier before ever doing useful work.
                shared.register_worker(i);
                let mut inst = InstanceCore::new(i, check_freq)
                    .with_checkpoints(checkpoint_freq)
                    .with_batch(batch_size);
                instance_worker(&mut inst, &shared);
            })
        })
        .collect()
}

/// The operator-instance worker loop — the single implementation of the
/// idle back-off policy shared by the engine session and (through it) the
/// legacy `run_threaded` wrapper. Three tiers on idle/stalled steps:
///
/// 1. **Spin** (first 32 fruitless steps): a new assignment or fresh
///    ingestion usually lands within microseconds mid-stream.
/// 2. **Yield** (up to 64): give the splitter and the other workers the
///    core — the path that keeps oversubscribed machines live.
/// 3. **Park** (beyond 64): `park_timeout` with exponential back-off
///    (50 µs doubling to ~1.6 ms), so an idle worker costs no CPU. The
///    splitter unparks everyone whenever a cycle publishes slots, flushes
///    events or sets `done` ([`SharedState::unpark_workers`]); the bounded
///    timeout caps the cost of a lost wake-up at one period instead of a
///    hang. Without this tier, an idle k=8 session pins 8 cores.
///
/// Statistics are flushed on shutdown.
fn instance_worker(inst: &mut InstanceCore, shared: &SharedState) {
    const SPIN_STEPS: u32 = 32;
    const YIELD_STEPS: u32 = 64;
    const PARK_MIN: Duration = Duration::from_micros(50);
    const PARK_MAX: Duration = Duration::from_micros(1_600);
    let mut idle_spins = 0u32;
    let mut park_for = PARK_MIN;
    while !shared.is_done() {
        match inst.step(shared) {
            StepOutcome::Idle | StepOutcome::Stalled => {
                idle_spins = idle_spins.saturating_add(1);
                if idle_spins <= SPIN_STEPS {
                    std::hint::spin_loop();
                } else if idle_spins <= YIELD_STEPS {
                    std::thread::yield_now();
                } else {
                    // Re-check the shutdown flag after joining the parked
                    // set: unpark_workers only wakes registered threads it
                    // sees parked, so the order here (count up, re-check,
                    // park) closes the race with a concurrent `done`.
                    shared.note_parked();
                    if !shared.is_done() {
                        std::thread::park_timeout(park_for);
                    }
                    shared.note_unparked();
                    park_for = (park_for * 2).min(PARK_MAX);
                }
            }
            _ => {
                idle_spins = 0;
                park_for = PARK_MIN;
            }
        }
    }
    inst.flush_stats(shared);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_baselines::run_sequential;
    use spectre_datasets::{NyseConfig, NyseGenerator};
    use spectre_events::Schema;
    use spectre_query::queries::{self, Direction};

    fn fixture(events: usize, seed: u64) -> (Arc<Query>, Vec<Event>) {
        let mut schema = Schema::new();
        let events: Vec<_> =
            NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
        let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
        (query, events)
    }

    #[test]
    fn simulated_session_matches_sequential() {
        let (query, events) = fixture(1500, 17);
        let expected = run_sequential(&query, &events).complex_events;
        let report = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(4))
            .simulated()
            .build()
            .run(events);
        assert_eq!(report.complex_events, expected);
        assert_eq!(report.input_events, 1500);
        assert!(report.rounds.is_some(), "simulated mode reports rounds");
        assert!(report.splitter_wall.is_some());
    }

    #[test]
    fn threaded_session_matches_sequential() {
        let (query, events) = fixture(1500, 17);
        let expected = run_sequential(&query, &events).complex_events;
        let report = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(2))
            .threaded()
            .build()
            .run(events);
        assert_eq!(report.complex_events, expected);
        assert_eq!(report.input_events, 1500);
        assert!(report.rounds.is_none(), "threaded mode has no rounds");
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn drained_outputs_plus_final_report_cover_everything_once() {
        let (query, events) = fixture(2000, 23);
        let expected = run_sequential(&query, &events).complex_events;
        assert!(!expected.is_empty());
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(2))
            .simulated()
            .build();
        let mut collected = Vec::new();
        for chunk in events.chunks(97) {
            engine.push_batch(chunk.to_vec());
            collected.append(&mut engine.drain_events());
        }
        let streamed_before_finish = collected.len();
        let report = engine.finish();
        collected.extend(report.complex_events);
        assert_eq!(collected, expected);
        assert!(
            streamed_before_finish > 0,
            "outputs must be committed incrementally, not only at end of run"
        );
    }

    #[test]
    fn push_retry_loop_survives_backpressure() {
        // A tiny speculative-load cap forces Full results mid-stream; a
        // plain retry loop (each push attempt runs a maintenance round)
        // must still terminate with the exact output.
        let (query, events) = fixture(1200, 29);
        let expected = run_sequential(&query, &events).complex_events;
        let config = SpectreConfig {
            max_tree_versions: 2,
            ..SpectreConfig::with_instances(1)
        };
        let mut engine = SpectreEngine::builder(&query)
            .config(config)
            .simulated()
            .build();
        let mut rejected = 0u64;
        for mut event in events {
            loop {
                match engine.push(event) {
                    PushResult::Accepted => break,
                    PushResult::Full(back) => {
                        rejected += 1;
                        event = back;
                    }
                }
            }
        }
        let report = engine.finish();
        assert_eq!(report.complex_events, expected);
        assert!(
            rejected > 0,
            "a cap of 2 versions must exert visible back-pressure"
        );
    }

    #[test]
    fn reordered_session_matches_sequential_in_both_modes() {
        // NYSE-small timestamps advance in fixed steps; reversing chunks of
        // four bounds the disorder by three steps, within max_delay.
        let (query, events) = fixture(1500, 17);
        let step = events[1].ts() - events[0].ts();
        let mut shuffled = events.clone();
        for chunk in shuffled.chunks_mut(4) {
            chunk.reverse();
        }
        let expected = run_sequential(&query, &events).complex_events;
        for threaded in [false, true] {
            let builder = SpectreEngine::builder(&query)
                .config(SpectreConfig::with_instances(2).with_reorder(3 * step));
            let engine = if threaded {
                builder.threaded().build()
            } else {
                builder.simulated().build()
            };
            let report = engine.run(shuffled.clone());
            assert_eq!(report.complex_events, expected);
            assert_eq!(report.input_events, 1500);
            assert_eq!(report.metrics.late_events_dropped, 0);
            assert!(report.metrics.events_reordered > 0);
            assert!(report.metrics.watermarks_advanced > 0);
        }
    }

    #[test]
    fn punctuated_stream_holds_events_until_the_watermark() {
        let (query, events) = fixture(600, 17);
        let config = SpectreConfig::with_instances(1);
        let reorder = crate::reorder::ReorderConfig::bounded(0)
            .with_watermark(crate::reorder::WatermarkPolicy::Punctuated)
            .with_capacity(1024);
        let expected = run_sequential(&query, &events).complex_events;
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig {
                reorder: Some(reorder),
                ..config
            })
            .simulated()
            .build();
        engine.push_batch(events[..500].to_vec());
        assert_eq!(
            engine.events_ingested(),
            0,
            "without a punctuation nothing may pass the reorder stage"
        );
        engine.advance_watermark(events[499].ts());
        engine.drain_outputs(); // run a maintenance round
        assert!(engine.events_ingested() > 0);
        engine.push_batch(events[500..].to_vec());
        let report = engine.finish(); // final watermark releases the rest
        assert_eq!(report.complex_events, expected);
        assert_eq!(report.input_events, 600);
    }

    #[test]
    fn reorder_buffer_backpressure_hands_the_event_back() {
        let (query, events) = fixture(32, 7);
        let reorder = crate::reorder::ReorderConfig::bounded(0)
            .with_watermark(crate::reorder::WatermarkPolicy::Punctuated)
            .with_capacity(4);
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig {
                reorder: Some(reorder),
                ..SpectreConfig::with_instances(1)
            })
            .simulated()
            .build();
        let mut accepted = 0usize;
        let mut rejected = None;
        for event in events {
            match engine.push(event) {
                PushResult::Accepted => accepted += 1,
                PushResult::Full(back) => {
                    rejected = Some(back);
                    break;
                }
            }
        }
        assert_eq!(accepted, 4, "a 4-slot buffer accepts exactly 4 events");
        let back = rejected.expect("the fifth push must be rejected");
        // A watermark at the rejected event's own timestamp unblocks the
        // stream without making the re-offer late, so nothing is lost.
        engine.advance_watermark(back.ts());
        assert!(matches!(engine.push(back), PushResult::Accepted));
        let report = engine.finish();
        assert_eq!(report.input_events, 5);
    }

    #[test]
    fn empty_session_finishes_cleanly_in_both_modes() {
        let (query, _) = fixture(1, 1);
        for threaded in [false, true] {
            let builder = SpectreEngine::builder(&query).config(SpectreConfig::with_instances(2));
            let engine = if threaded {
                builder.threaded().build()
            } else {
                builder.build()
            };
            let report = engine.finish();
            assert!(report.complex_events.is_empty());
            assert_eq!(report.input_events, 0);
        }
    }

    #[test]
    fn dropping_an_unfinished_threaded_session_joins_workers() {
        let (query, events) = fixture(300, 31);
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(2))
            .threaded()
            .build();
        engine.push_batch(events);
        drop(engine); // must not hang or leave threads spinning
    }

    #[test]
    fn finished_session_surfaces_errors_instead_of_panicking() {
        let (query, events) = fixture(200, 41);
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(1))
            .simulated()
            .build();
        engine.ingest(events.clone());
        let report = engine.try_finish().expect("first finish succeeds");
        assert_eq!(report.input_events, 200);
        assert_eq!(report.queries.len(), 1);
        let q0 = &report.queries[&QueryId(0)];
        assert_eq!(q0.complex_events, report.complex_events);
        // Every further session call reports the misuse as a value.
        assert_eq!(
            engine.try_finish().unwrap_err(),
            EngineError::SessionFinished
        );
        assert_eq!(
            engine.try_push(events[0].clone()).unwrap_err(),
            EngineError::SessionFinished
        );
        assert_eq!(
            engine.try_drain_outputs().unwrap_err(),
            EngineError::SessionFinished
        );
        assert_eq!(
            engine.deploy_query(&query).unwrap_err(),
            EngineError::SessionFinished
        );
        assert_eq!(
            engine.retire_query(QueryId(0)).unwrap_err(),
            EngineError::SessionFinished
        );
    }

    #[test]
    fn retiring_an_unknown_query_is_an_error() {
        let (query, _) = fixture(1, 1);
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(1))
            .simulated()
            .build();
        assert_eq!(
            engine.retire_query(QueryId(9)).unwrap_err(),
            EngineError::UnknownQuery(QueryId(9))
        );
        let drained = engine.retire_query(QueryId(0)).unwrap();
        assert!(drained.is_empty());
        // Ids are never reused: the retired id stays unknown.
        assert_eq!(
            engine.retire_query(QueryId(0)).unwrap_err(),
            EngineError::UnknownQuery(QueryId(0))
        );
        let report = engine.finish();
        assert!(report.queries.is_empty());
    }

    #[test]
    fn maintain_and_report_summary_support_a_server_driver() {
        let (query, events) = fixture(400, 19);
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(1))
            .simulated()
            .build();
        assert_eq!(engine.query_tenant(QueryId(0)), Some(TenantId::DEFAULT));
        assert_eq!(engine.query_tenant(QueryId(7)), None);
        assert!(!engine.is_finished());
        engine.ingest(events);
        // Idle maintenance (no pushes) still makes engine progress.
        let before = engine.metrics().sched_cycles;
        for _ in 0..64 {
            engine.maintain().unwrap();
        }
        assert!(engine.metrics().sched_cycles >= before);
        let report = engine.try_finish().unwrap();
        assert!(engine.is_finished());
        assert_eq!(engine.maintain().unwrap_err(), EngineError::SessionFinished);
        let json = report.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"input_events\":400"), "{json}");
        assert!(
            json.contains("\"queries\":[{\"query\":0,\"tenant\":0,"),
            "{json}"
        );
    }

    #[test]
    fn live_metrics_reflect_progress() {
        let (query, events) = fixture(800, 37);
        let mut engine = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(2))
            .simulated()
            .build();
        engine.ingest(events);
        let mid = engine.metrics();
        assert!(mid.sched_cycles > 0, "cycles ran during ingestion");
        let report = engine.finish();
        assert!(report.metrics.sched_cycles >= mid.sched_cycles);
        assert!(report.metrics.windows_retired > 0);
    }
}
