//! Operator-instance event processing (paper Fig. 8).
//!
//! Each instance repeatedly: checks its scheduling slot, fetches a *run* of
//! its current window version's next events from the sharded window store
//! (up to [`SpectreConfig::batch_size`](crate::SpectreConfig::batch_size)
//! under one shard-lock acquisition), and processes the run while holding
//! the version lock once: each event is suppressed if an assumed-completed
//! consumption group contains it, otherwise fed to the version's pattern
//! detector, with the feedback translated into consumption-group updates
//! and dependency-tree operations. The tree operations are buffered locally
//! and flushed to the shared queue in one `push_many` per step. Periodic
//! consistency checks (still per event) detect late consumption-group
//! updates and roll the version back.
//!
//! Scheduling granularity is the step: a slot change or version drop takes
//! effect at the next step (drops are additionally honoured between the
//! events of a run), so a larger batch size trades scheduling latency for
//! amortized lock and queue traffic. The output is identical for every
//! batch size.
//!
//! Instances are oblivious to lazy branch materialization: the splitter's
//! top-k selection materializes an unmaterialized completion branch
//! *before* writing it to a scheduling slot, so a slot only ever holds a
//! fully materialized [`VersionState`]. A late clone that inherited
//! processing the new suppression invalidates is caught here by the same
//! periodic consistency check that catches late group updates.

use std::sync::Arc;

use spectre_events::Event;
use spectre_query::{DetectorAction, MatchId, SelectionPolicy};

use crate::cg::CgCell;
use crate::metrics::Metrics;
use crate::shared::{QueryId, SharedState, StatsBatch, TreeOp};
use crate::store::{EventRun, WindowBuf};
use crate::version::{VersionInner, VersionState};

/// Outcome of one instance step (used by the drivers for accounting and
/// back-off decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed (or suppressed) — useful work.
    Worked,
    /// The current version finished its window.
    Finished,
    /// No version scheduled, or the scheduled version is finished/dropped.
    Idle,
    /// The version's next event has not been ingested yet.
    Stalled,
    /// A consistency violation was detected; the version was reset.
    RolledBack,
}

/// One operator instance's local state.
#[derive(Debug)]
pub struct InstanceCore {
    index: usize,
    check_freq: u32,
    checkpoint_freq: Option<u32>,
    batch: usize,
    current: Option<Arc<VersionState>>,
    /// Last observed publication sequence of this instance's scheduling
    /// slot; lets the per-step pickup skip the slot lock while the
    /// assignment is unchanged (see [`SlotCell`](crate::shared::SlotCell)).
    slot_seq: u64,
    actions: Vec<DetectorAction>,
    stats: Vec<(u32, u32)>,
    /// Query whose versions produced the buffered `stats` (one batch never
    /// mixes queries; a version of another query forces a flush first).
    stats_query: Option<QueryId>,
    ops_buf: Vec<(QueryId, TreeOp)>,
    fetch: Vec<EventRun>,
    run_processed: u64,
    run_suppressed: u64,
    /// Per-query counters of the version the run counters belong to.
    run_qmetrics: Option<Arc<Metrics>>,
    /// The scheduled window's store buffer, cached by `store_id` across
    /// steps so the run-read path skips the store's shard-map lookup.
    /// Cleared whenever the assignment changes or goes idle, so a retired
    /// window's buffer is not pinned while the instance waits.
    run_buf: Option<(u64, Arc<WindowBuf>)>,
}

impl InstanceCore {
    /// Creates the instance for scheduling slot `index`, processing one
    /// event per step (see [`with_batch`](Self::with_batch)).
    pub fn new(index: usize, check_freq: u32) -> Self {
        assert!(check_freq > 0, "check frequency must be positive");
        InstanceCore {
            index,
            check_freq,
            checkpoint_freq: None,
            batch: 1,
            current: None,
            slot_seq: 0,
            actions: Vec::new(),
            stats: Vec::new(),
            stats_query: None,
            ops_buf: Vec::new(),
            fetch: Vec::new(),
            run_processed: 0,
            run_suppressed: 0,
            run_qmetrics: None,
            run_buf: None,
        }
    }

    /// Enables periodic checkpointing (the §3.3 ablation; the paper's final
    /// design rolls back to the window start instead).
    ///
    /// # Panics
    ///
    /// Panics if `freq` is `Some(0)`.
    pub fn with_checkpoints(mut self, freq: Option<u32>) -> Self {
        assert!(freq != Some(0), "checkpoint interval must be positive");
        self.checkpoint_freq = freq;
        self
    }

    /// Sets the maximum events processed per [`step`](Self::step) (the
    /// consume side of the batched hand-off,
    /// [`SpectreConfig::batch_size`](crate::SpectreConfig::batch_size)).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// The instance's slot index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Performs one processing step — up to [`with_batch`](Self::with_batch)
    /// events of the scheduled window version, fetched as one run and
    /// processed under one version-lock acquisition — per paper Fig. 8.
    pub fn step(&mut self, shared: &SharedState) -> StepOutcome {
        let outcome = self.step_inner(shared);
        self.flush_ops(shared);
        self.flush_run_counters(shared);
        outcome
    }

    /// Publishes the run's event counters with one atomic update each
    /// (amortizing per-event metric traffic over the batch), routed to this
    /// worker's cache-padded counter block.
    fn flush_run_counters(&mut self, shared: &SharedState) {
        let qmetrics = self.run_qmetrics.take();
        if self.run_processed > 0 {
            shared
                .metrics
                .add_events_processed(self.index, self.run_processed);
            if let Some(qm) = &qmetrics {
                qm.add_events_processed(self.index, self.run_processed);
            }
            self.run_processed = 0;
        }
        if self.run_suppressed > 0 {
            shared
                .metrics
                .add_events_suppressed(self.index, self.run_suppressed);
            if let Some(qm) = &qmetrics {
                qm.add_events_suppressed(self.index, self.run_suppressed);
            }
            self.run_suppressed = 0;
        }
    }

    fn step_inner(&mut self, shared: &SharedState) -> StepOutcome {
        // Pick up a scheduling change (Fig. 8 lines 7–9). Seq-gated: while
        // the splitter hasn't republished this slot, the check is a single
        // atomic load and the lock is never touched.
        if let Some(update) = shared.slots[self.index].observe(&mut self.slot_seq) {
            self.current = update;
            self.run_buf = None;
        }
        let Some(wv) = self.current.clone() else {
            self.run_buf = None;
            shared.metrics.add_idle_step(self.index);
            return StepOutcome::Idle;
        };
        if wv.is_dropped() || wv.is_finished() {
            self.run_buf = None;
            shared.metrics.add_idle_step(self.index);
            return StepOutcome::Idle;
        }

        let window = Arc::clone(wv.window());
        self.run_qmetrics = Some(Arc::clone(wv.query_metrics()));
        let mut inner = wv.lock();

        // Window end already reached?
        if let Some(end) = window.end_pos() {
            if window.start_pos + inner.pos >= end {
                self.finish(&wv, &mut inner, shared);
                return StepOutcome::Finished;
            }
        }

        // Fetch the next run under one window-buffer lock acquisition,
        // through the cached buffer handle when the instance is still on
        // the same window. The per-window buffer only ever holds the
        // window's own events, so the run can never overshoot the window
        // end.
        let buf = match &self.run_buf {
            Some((id, buf)) if *id == window.store_id => Arc::clone(buf),
            _ => match shared.store.window_buf(window.store_id) {
                Some(buf) => {
                    self.run_buf = Some((window.store_id, Arc::clone(&buf)));
                    buf
                }
                None => {
                    // Unknown buffer: the window is racing retirement; the
                    // dropped flag resolves it at a later step.
                    shared.metrics.add_stalled_step(self.index);
                    return StepOutcome::Stalled;
                }
            },
        };
        self.fetch.clear();
        let n = buf.read_run(inner.pos, self.batch, &mut self.fetch);
        if n == 0 {
            // Not yet ingested (or the window is racing retirement, which a
            // later step resolves via the dropped flag): stall.
            shared.metrics.add_stalled_step(self.index);
            return StepOutcome::Stalled;
        }
        let runs = std::mem::take(&mut self.fetch);
        let mut inconsistent = false;
        'runs: for run in &runs {
            for ev in run.events() {
                // A drop mid-run aborts the rest: the splitter discarded
                // this version, further work on it would be wasted.
                if wv.is_dropped() {
                    break 'runs;
                }
                if !self.process_event(&wv, &mut inner, shared, ev) {
                    inconsistent = true;
                    break 'runs;
                }
            }
        }
        // Reclaim the vec's allocation but drop the runs now: holding them
        // across steps would pin their batches (and every event in them)
        // while the instance sits idle or unscheduled.
        self.fetch = runs;
        self.fetch.clear();
        if inconsistent {
            drop(inner);
            self.rollback(&wv, shared);
            return StepOutcome::RolledBack;
        }

        // Finish immediately when the run consumed the window's last event.
        if let Some(end) = window.end_pos() {
            if window.start_pos + inner.pos >= end {
                self.finish(&wv, &mut inner, shared);
                return StepOutcome::Finished;
            }
        }
        StepOutcome::Worked
    }

    /// Processes one event of `wv` (suppression, detection, consumption
    /// groups, statistics, consistency check, checkpointing). Returns
    /// `false` when a consistency violation demands a rollback.
    fn process_event(
        &mut self,
        wv: &Arc<VersionState>,
        inner: &mut VersionInner,
        shared: &SharedState,
        ev: &Event,
    ) -> bool {
        use std::sync::atomic::Ordering;
        inner.pos += 1;

        // Suppression (Fig. 8 line 13).
        let suppressed = wv.suppressed().iter().any(|cg| cg.contains(ev.seq()));
        if suppressed {
            inner.detector.on_suppressed();
            self.run_suppressed += 1;
        } else {
            let prev_delta = inner.open_cgs.first().map(|(_, cg)| cg.delta());
            let max_delta = wv.query().pattern().max_delta();

            debug_assert!(
                inner.used.last().is_none_or(|&last| last < ev.seq()),
                "input stream must be seq-ordered"
            );
            inner.used.push(ev.seq());
            self.actions.clear();
            let mut actions = std::mem::take(&mut self.actions);
            inner.detector.on_event(ev, &mut actions);
            let consuming = !wv.query().consumption().is_none();
            let mut abandoned_any = false;
            let mut started_any = false;
            for action in actions.drain(..) {
                match action {
                    DetectorAction::MatchStarted { match_id } => {
                        started_any = true;
                        if consuming {
                            self.create_cg(wv, inner, shared, match_id, max_delta);
                        }
                    }
                    DetectorAction::EventAdded {
                        match_id,
                        seq,
                        consumable,
                        delta,
                    } => {
                        if !consuming {
                            continue;
                        }
                        // EachLast: a completed match keeps matching; its
                        // next event opens a new consumption group.
                        if let Some(i) = inner.needs_new_cg.iter().position(|m| *m == match_id) {
                            inner.needs_new_cg.swap_remove(i);
                            self.create_cg(wv, inner, shared, match_id, delta);
                        }
                        if let Some((_, cg)) = inner.open_cgs.iter().find(|(m, _)| *m == match_id) {
                            if consumable {
                                cg.add_event(seq, delta, inner.pos);
                            } else {
                                cg.touch(delta, inner.pos);
                            }
                        }
                    }
                    DetectorAction::Completed {
                        match_id, complex, ..
                    } => {
                        inner.outputs.push(complex);
                        if !consuming {
                            continue;
                        }
                        if let Some(i) = inner.open_cgs.iter().position(|(m, _)| *m == match_id) {
                            let (_, cg) = inner.open_cgs.swap_remove(i);
                            cg.complete();
                            self.ops_buf.push((
                                wv.query_id(),
                                TreeOp::CgResolved {
                                    cg: cg.id(),
                                    completed: true,
                                },
                            ));
                            shared.metrics.cgs_completed.fetch_add(1, Ordering::Relaxed);
                            wv.query_metrics()
                                .cgs_completed
                                .fetch_add(1, Ordering::Relaxed);
                            // Remember the completion: checkpoint restores
                            // re-assert these as suppression facts for the
                            // rebuilt dependents.
                            inner.completed_cells.push(cg);
                        }
                        if wv.query().selection() == SelectionPolicy::EachLast {
                            inner.needs_new_cg.push(match_id);
                        }
                    }
                    DetectorAction::Abandoned { match_id } => {
                        abandoned_any = true;
                        if !consuming {
                            continue;
                        }
                        if let Some(i) = inner.open_cgs.iter().position(|(m, _)| *m == match_id) {
                            let (_, cg) = inner.open_cgs.swap_remove(i);
                            cg.abandon();
                            self.ops_buf.push((
                                wv.query_id(),
                                TreeOp::CgResolved {
                                    cg: cg.id(),
                                    completed: false,
                                },
                            ));
                            shared.metrics.cgs_abandoned.fetch_add(1, Ordering::Relaxed);
                            wv.query_metrics()
                                .cgs_abandoned
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(i) = inner.needs_new_cg.iter().position(|m| *m == match_id) {
                            inner.needs_new_cg.swap_remove(i);
                        }
                    }
                }
            }
            self.actions = actions;

            // Markov statistics: observed δ transition of this event, taken
            // from non-speculative versions only (paper §3.2.1: statistics
            // are gathered by versions of independent windows — a
            // creation-time property, see `VersionState::stats_eligible`).
            if wv.stats_eligible() && !abandoned_any {
                let qid = wv.query_id();
                let new_delta = inner.open_cgs.first().map(|(_, cg)| cg.delta());
                match (prev_delta, new_delta) {
                    (Some(from), Some(to)) => self.record(shared, qid, from, to),
                    (Some(from), None) => self.record(shared, qid, from, 0), // completed
                    (None, Some(to)) if started_any => self.record(shared, qid, max_delta, to),
                    _ => {}
                }
            }
            self.run_processed += 1;
        }

        // Periodic consistency check (Fig. 8 lines 31–45).
        inner.steps_since_check += 1;
        if inner.steps_since_check >= self.check_freq {
            inner.steps_since_check = 0;
            if !consistency_check(wv, inner) {
                return false;
            }
        }

        // Checkpoint at clean cuts (§3.3 ablation): no open partial match,
        // so restoring never resurrects an already-resolved group.
        if let Some(freq) = self.checkpoint_freq {
            let due = inner
                .checkpoint
                .as_ref()
                .map_or(inner.pos >= freq as u64, |cp| {
                    inner.pos - cp.pos >= freq as u64
                });
            if due && inner.open_cgs.is_empty() && inner.needs_new_cg.is_empty() {
                inner.checkpoint = Some(Box::new(crate::version::Checkpoint {
                    detector: inner.detector.clone(),
                    pos: inner.pos,
                    outputs: inner.outputs.clone(),
                    used: inner.used.clone(),
                    completed_cells: inner.completed_cells.clone(),
                }));
                shared
                    .metrics
                    .checkpoints_taken
                    .fetch_add(1, Ordering::Relaxed);
                wv.query_metrics()
                    .checkpoints_taken
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }

    fn create_cg(
        &mut self,
        wv: &Arc<VersionState>,
        inner: &mut VersionInner,
        shared: &SharedState,
        match_id: MatchId,
        initial_delta: usize,
    ) {
        use std::sync::atomic::Ordering;
        let cell = Arc::new(CgCell::new(
            shared.alloc_cg_id(),
            wv.window().id,
            initial_delta,
        ));
        inner.open_cgs.push((match_id, Arc::clone(&cell)));
        self.ops_buf.push((
            wv.query_id(),
            TreeOp::CgCreated {
                creator: wv.id(),
                cell,
            },
        ));
        shared.metrics.cgs_created.fetch_add(1, Ordering::Relaxed);
        wv.query_metrics()
            .cgs_created
            .fetch_add(1, Ordering::Relaxed);
    }

    fn record(&mut self, shared: &SharedState, qid: QueryId, from: usize, to: usize) {
        if self.stats_query != Some(qid) {
            self.flush_stats(shared);
            self.stats_query = Some(qid);
        }
        self.stats
            .push((from.min(u32::MAX as usize) as u32, to as u32));
        if self.stats.len() >= 256 {
            self.flush_stats(shared);
        }
    }

    /// Flushes buffered Markov observations.
    pub fn flush_stats(&mut self, shared: &SharedState) {
        if !self.stats.is_empty() {
            let qid = self.stats_query.expect("buffered stats have an owner");
            shared.stats.push((
                qid,
                StatsBatch {
                    transitions: std::mem::take(&mut self.stats),
                },
            ));
        }
    }

    /// Flushes buffered dependency-tree operations to the shared queue in
    /// one lock acquisition, preserving their order ([`step`](Self::step)
    /// does this automatically on every return path; the FIFO op order per
    /// instance is what retirement acks rely on).
    pub fn flush_ops(&mut self, shared: &SharedState) {
        if !self.ops_buf.is_empty() {
            shared.ops.push_many(self.ops_buf.drain(..));
        }
    }

    fn finish(&mut self, wv: &Arc<VersionState>, inner: &mut VersionInner, shared: &SharedState) {
        use std::sync::atomic::Ordering;
        self.actions.clear();
        let mut actions = std::mem::take(&mut self.actions);
        inner.detector.on_window_end(&mut actions);
        for action in actions.drain(..) {
            if let DetectorAction::Abandoned { match_id } = action {
                if let Some(i) = inner.open_cgs.iter().position(|(m, _)| *m == match_id) {
                    let (_, cg) = inner.open_cgs.swap_remove(i);
                    cg.abandon();
                    self.ops_buf.push((
                        wv.query_id(),
                        TreeOp::CgResolved {
                            cg: cg.id(),
                            completed: false,
                        },
                    ));
                    shared.metrics.cgs_abandoned.fetch_add(1, Ordering::Relaxed);
                    wv.query_metrics()
                        .cgs_abandoned
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.actions = actions;
        // Defensive: no group may stay open past its window (paper §3.1).
        for (_, cg) in inner.open_cgs.drain(..) {
            cg.abandon();
            self.ops_buf.push((
                wv.query_id(),
                TreeOp::CgResolved {
                    cg: cg.id(),
                    completed: false,
                },
            ));
        }
        inner.needs_new_cg.clear();
        wv.mark_finished();
        self.ops_buf
            .push((wv.query_id(), TreeOp::WvFinished { wv: wv.id() }));
        self.flush_stats(shared);
    }

    fn rollback(&mut self, wv: &Arc<VersionState>, shared: &SharedState) {
        use std::sync::atomic::Ordering;
        shared.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
        wv.query_metrics().rollbacks.fetch_add(1, Ordering::Relaxed);
        let outcome = wv.rollback_state();
        if outcome.restored_checkpoint {
            shared
                .metrics
                .checkpoint_restores
                .fetch_add(1, Ordering::Relaxed);
            wv.query_metrics()
                .checkpoint_restores
                .fetch_add(1, Ordering::Relaxed);
        }
        self.ops_buf.push((
            wv.query_id(),
            TreeOp::WvRolledBack {
                wv: wv.id(),
                revoked: outcome.revoked,
            },
        ));
    }
}

/// The consistency check of paper Fig. 8 (lines 31–45): for every suppressed
/// group whose event set changed since the last check, verify none of its
/// events were erroneously processed. Returns `false` on inconsistency.
fn consistency_check(wv: &VersionState, inner: &mut VersionInner) -> bool {
    for (i, cg) in wv.suppressed().iter().enumerate() {
        let version = cg.version();
        if version != inner.seen_versions[i] {
            if cg.intersects_sorted(&inner.used) {
                return false;
            }
            inner.seen_versions[i] = version;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::CgId;
    use crate::store::WindowInfo;
    use crate::version::WvId;
    use spectre_events::{AttrKey, Event, EventType, Seq};
    use spectre_query::{ConsumptionPolicy, Expr, Pattern, Query, WindowSpec};

    fn query(consumption: ConsumptionPolicy) -> Arc<Query> {
        let x = AttrKey::new(0);
        Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", Expr::current(x).eq_(Expr::value(1.0)))
                        .one("B", Expr::current(x).eq_(Expr::value(2.0)))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::count_sliding(4, 4).unwrap())
                .consumption(consumption)
                .build()
                .unwrap(),
        )
    }

    fn ev(seq: Seq, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(seq)
            .attr(AttrKey::new(0), x)
            .build()
    }

    fn setup(
        consumption: ConsumptionPolicy,
        events: &[Event],
        suppressed: Vec<Arc<CgCell>>,
    ) -> (Arc<SharedState>, Arc<VersionState>, InstanceCore) {
        let shared = SharedState::new(1);
        let mut batch = crate::splitter::EventBatch::with_capacity(0, events.len());
        for e in events {
            batch.push(e.clone());
        }
        let n = batch.len();
        shared.store.open_window(0, 0);
        shared.store.extend(0, &Arc::new(batch), 0..n);
        shared
            .ingested
            .store(events.len() as u64, std::sync::atomic::Ordering::Release);
        let window = Arc::new(WindowInfo::new(0, 0, 0, 0));
        window.set_end_pos(events.len() as u64);
        let wv = VersionState::new(WvId(0), window, query(consumption), suppressed);
        shared.slots[0].publish(Some(Arc::clone(&wv)));
        let inst = InstanceCore::new(0, 2);
        (shared, wv, inst)
    }

    #[test]
    fn processes_window_and_buffers_outputs() {
        let events = [ev(0, 1.0), ev(1, 9.0), ev(2, 2.0), ev(3, 9.0)];
        let (shared, wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        for _ in 0..3 {
            assert_eq!(inst.step(&shared), StepOutcome::Worked);
        }
        // The step that consumes the window's last event finishes it.
        assert_eq!(inst.step(&shared), StepOutcome::Finished);
        assert!(wv.is_finished());
        let inner = wv.lock();
        assert_eq!(inner.outputs.len(), 1);
        assert_eq!(inner.outputs[0].constituents, vec![0, 2]);
        // CG created and completed
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.cgs_created, 1);
        assert_eq!(snap.cgs_completed, 1);
        assert_eq!(snap.events_processed, 4);
    }

    #[test]
    fn finished_version_goes_idle() {
        let events = [ev(0, 9.0)];
        let (shared, _wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        assert_eq!(inst.step(&shared), StepOutcome::Finished);
        assert_eq!(inst.step(&shared), StepOutcome::Idle);
    }

    #[test]
    fn empty_slot_is_idle() {
        let shared = SharedState::new(1);
        let mut inst = InstanceCore::new(0, 4);
        assert_eq!(inst.step(&shared), StepOutcome::Idle);
        assert_eq!(shared.metrics.snapshot().idle_steps, 1);
    }

    #[test]
    fn stalls_until_ingested() {
        // Build the version by hand with an *empty* window buffer: the
        // instance must stall until the splitter flushes events into it.
        let shared = SharedState::new(1);
        shared.store.open_window(0, 0);
        let window = Arc::new(WindowInfo::new(0, 0, 0, 0));
        window.set_end_pos(1);
        let wv = VersionState::new(WvId(0), window, query(ConsumptionPolicy::All), vec![]);
        shared.slots[0].publish(Some(Arc::clone(&wv)));
        let mut inst = InstanceCore::new(0, 2);
        assert_eq!(inst.step(&shared), StepOutcome::Stalled);
        let mut batch = crate::splitter::EventBatch::with_capacity(0, 1);
        batch.push(ev(0, 1.0));
        shared.store.extend(0, &Arc::new(batch), 0..1);
        assert_eq!(inst.step(&shared), StepOutcome::Finished);
    }

    #[test]
    fn suppressed_events_are_skipped() {
        // Suppress event 0 (the A): no match can start on it.
        let cg = Arc::new(CgCell::new(CgId(99), 0, 1));
        cg.add_event(0, 1, 0);
        let events = [ev(0, 1.0), ev(1, 2.0)];
        let (shared, wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![Arc::clone(&cg)]);
        inst.step(&shared);
        inst.step(&shared);
        inst.step(&shared);
        assert!(wv.is_finished());
        assert!(wv.lock().outputs.is_empty());
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.events_suppressed, 1);
        assert_eq!(snap.events_processed, 1);
    }

    #[test]
    fn late_cg_update_triggers_rollback() {
        let cg = Arc::new(CgCell::new(CgId(99), 0, 1));
        let events = [ev(0, 1.0), ev(1, 9.0), ev(2, 2.0), ev(3, 9.0)];
        let (shared, wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![Arc::clone(&cg)]);
        // process events 0 and 1 (check_freq = 2 → check after step 2, no
        // violation yet)
        assert_eq!(inst.step(&shared), StepOutcome::Worked);
        assert_eq!(inst.step(&shared), StepOutcome::Worked);
        // the suppressed group *now* receives already-processed event 0
        cg.add_event(0, 0, 0);
        assert_eq!(inst.step(&shared), StepOutcome::Worked);
        // next check (after step 4) detects the violation
        let out = inst.step(&shared);
        assert_eq!(out, StepOutcome::RolledBack);
        assert_eq!(shared.metrics.snapshot().rollbacks, 1);
        // version reset to the start
        let inner = wv.lock();
        assert_eq!(inner.pos, 0);
        assert!(inner.used.is_empty());
        // and the splitter was told
        let mut saw_rollback_op = false;
        while let Some((qid, op)) = shared.ops.pop() {
            assert_eq!(qid, QueryId(0));
            if matches!(op, TreeOp::WvRolledBack { wv: w, .. } if w == WvId(0)) {
                saw_rollback_op = true;
            }
        }
        assert!(saw_rollback_op);
    }

    #[test]
    fn rollback_reprocesses_correctly() {
        let cg = Arc::new(CgCell::new(CgId(99), 0, 1));
        let events = [ev(0, 1.0), ev(1, 1.0), ev(2, 2.0), ev(3, 9.0)];
        let (shared, wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![Arc::clone(&cg)]);
        inst.step(&shared);
        inst.step(&shared);
        // suppress event 0 after it was processed → rollback at next check
        cg.add_event(0, 0, 0);
        let mut rolled = false;
        for _ in 0..12 {
            if inst.step(&shared) == StepOutcome::RolledBack {
                rolled = true;
                break;
            }
        }
        assert!(rolled);
        // reprocess: event 0 now suppressed; match starts at event 1 instead
        loop {
            match inst.step(&shared) {
                StepOutcome::Finished => break,
                StepOutcome::Worked => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        {
            let inner = wv.lock();
            assert_eq!(inner.outputs.len(), 1);
            assert_eq!(inner.outputs[0].constituents, vec![1, 2]);
        }
        // Note: is_consistent locks the version state internally, so the
        // guard above must be released first.
        assert!(wv.is_consistent());
    }

    #[test]
    fn window_end_abandons_open_groups() {
        let events = [ev(0, 1.0), ev(1, 9.0)];
        let (shared, wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        inst.step(&shared);
        assert_eq!(inst.step(&shared), StepOutcome::Finished);
        assert!(wv.lock().open_cgs.is_empty());
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.cgs_created, 1);
        assert_eq!(snap.cgs_abandoned, 1);
    }

    #[test]
    fn no_consumption_skips_cg_machinery() {
        let events = [ev(0, 1.0), ev(1, 2.0)];
        let (shared, wv, mut inst) = setup(ConsumptionPolicy::None, &events, vec![]);
        inst.step(&shared);
        inst.step(&shared);
        inst.step(&shared);
        assert!(wv.is_finished());
        assert_eq!(wv.lock().outputs.len(), 1);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.cgs_created, 0);
        // only the WvFinished op was queued
        let mut count = 0;
        while let Some((_, op)) = shared.ops.pop() {
            assert!(matches!(op, TreeOp::WvFinished { .. }));
            count += 1;
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn checkpoint_taken_at_clean_cut() {
        // 1 (A), 9, 9, 9 …: the match at event 0 never completes, so no
        // clean cut happens until it is abandoned; a pure-noise stream
        // checkpoints right away.
        let events = [ev(0, 9.0), ev(1, 9.0), ev(2, 9.0), ev(3, 9.0)];
        let (shared, wv, inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        let mut inst = InstanceCore::new(inst.index(), 2).with_checkpoints(Some(2));
        inst.step(&shared);
        inst.step(&shared);
        assert_eq!(shared.metrics.snapshot().checkpoints_taken, 1);
        assert_eq!(wv.lock().checkpoint.as_ref().unwrap().pos, 2);
    }

    #[test]
    fn no_checkpoint_while_match_open() {
        // Event 0 starts a match that never completes within the window:
        // every position has an open group, so no snapshot is taken.
        let events = [ev(0, 1.0), ev(1, 9.0), ev(2, 9.0), ev(3, 9.0)];
        let (shared, wv, inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        let mut inst = InstanceCore::new(inst.index(), 2).with_checkpoints(Some(1));
        for _ in 0..4 {
            inst.step(&shared);
        }
        assert_eq!(shared.metrics.snapshot().checkpoints_taken, 0);
        assert!(wv.lock().checkpoint.is_none());
    }

    #[test]
    fn rollback_restores_consistent_checkpoint() {
        // Process two noise events (checkpoint at pos 2), then an A whose
        // event is later consumed by the suppressed group → rollback must
        // resume from pos 2, not 0.
        let cg = Arc::new(CgCell::new(CgId(99), 0, 1));
        let events = [ev(0, 9.0), ev(1, 9.0), ev(2, 1.0), ev(3, 9.0)];
        let (shared, wv, inst) = setup(ConsumptionPolicy::All, &events, vec![Arc::clone(&cg)]);
        let mut inst = InstanceCore::new(inst.index(), 2).with_checkpoints(Some(2));
        inst.step(&shared);
        inst.step(&shared); // checkpoint at pos 2
        inst.step(&shared); // processes the A at seq 2
        cg.add_event(2, 0, 0); // group consumes it retroactively
        let out = inst.step(&shared); // check detects → rollback
        assert_eq!(out, StepOutcome::RolledBack);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.checkpoint_restores, 1);
        assert_eq!(wv.lock().pos, 2, "resumed from the checkpoint");
    }

    #[test]
    fn conflicting_checkpoint_falls_back_to_full_reset() {
        // The suppressed group consumes an event *before* the checkpoint:
        // the snapshot itself is invalid and the reset goes to the start.
        let cg = Arc::new(CgCell::new(CgId(99), 0, 1));
        let events = [ev(0, 9.0), ev(1, 9.0), ev(2, 9.0), ev(3, 9.0)];
        let (shared, wv, inst) = setup(ConsumptionPolicy::All, &events, vec![Arc::clone(&cg)]);
        let mut inst = InstanceCore::new(inst.index(), 2).with_checkpoints(Some(2));
        inst.step(&shared);
        inst.step(&shared); // checkpoint at pos 2 (used = [0, 1])
        cg.add_event(1, 0, 0); // pre-checkpoint event consumed
        inst.step(&shared);
        let out = inst.step(&shared);
        assert_eq!(out, StepOutcome::RolledBack);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.checkpoint_restores, 0, "checkpoint was inconsistent");
        assert_eq!(wv.lock().pos, 0, "full reset");
    }

    #[test]
    fn batched_step_processes_whole_run_and_finishes() {
        // With a batch larger than the window, one step consumes the whole
        // window under a single version-lock acquisition and finishes it —
        // with the same outputs the event-at-a-time path produces.
        let events = [ev(0, 1.0), ev(1, 9.0), ev(2, 2.0), ev(3, 9.0)];
        let (shared, wv, inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        let mut inst = InstanceCore::new(inst.index(), 2).with_batch(1024);
        assert_eq!(inst.step(&shared), StepOutcome::Finished);
        assert!(wv.is_finished());
        let inner = wv.lock();
        assert_eq!(inner.outputs.len(), 1);
        assert_eq!(inner.outputs[0].constituents, vec![0, 2]);
        let snap = shared.metrics.snapshot();
        assert_eq!(snap.events_processed, 4);
        assert_eq!(snap.cgs_created, 1);
        assert_eq!(snap.cgs_completed, 1);
    }

    #[test]
    fn batched_run_detects_late_consumption_and_rolls_back() {
        // A late consumption-group update is caught by the periodic check
        // inside a batched run, aborting the step with a rollback.
        let cg = Arc::new(CgCell::new(CgId(99), 0, 1));
        let events = [ev(0, 1.0), ev(1, 9.0), ev(2, 2.0), ev(3, 9.0)];
        let (shared, wv, inst) = setup(ConsumptionPolicy::All, &events, vec![Arc::clone(&cg)]);
        let mut inst = InstanceCore::new(inst.index(), 2).with_batch(2);
        assert_eq!(inst.step(&shared), StepOutcome::Worked); // events 0, 1
        cg.add_event(0, 0, 0); // seq 0 consumed *after* it was processed
        assert_eq!(inst.step(&shared), StepOutcome::RolledBack);
        assert_eq!(wv.lock().pos, 0, "reset to the window start");
        assert_eq!(shared.metrics.snapshot().rollbacks, 1);
    }

    #[test]
    fn stats_flushed_on_finish() {
        let events = [ev(0, 1.0), ev(1, 9.0), ev(2, 2.0)];
        let (shared, _wv, mut inst) = setup(ConsumptionPolicy::All, &events, vec![]);
        for _ in 0..4 {
            inst.step(&shared);
        }
        let mut transitions = Vec::new();
        while let Some((qid, batch)) = shared.stats.pop() {
            assert_eq!(qid, QueryId(0));
            transitions.extend(batch.transitions);
        }
        // A@0: start 2→1; noise@1: 1→1; B@2: 1→0.
        assert_eq!(transitions, vec![(2, 1), (1, 1), (1, 0)]);
    }
}
