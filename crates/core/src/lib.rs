//! # SPECTRE — speculative window-based parallel CEP with consumption policies
//!
//! A reproduction of *SPECTRE: Supporting Consumption Policies in
//! Window-Based Parallel Complex Event Processing* (Mayer et al.,
//! Middleware '17). Consumption policies make overlapping windows
//! interdependent: an event consumed by a pattern instance in window `w`
//! must be excluded from every later window. SPECTRE processes dependent
//! windows in parallel anyway by *speculating* on the outcome of each
//! partial match (consumption group):
//!
//! * [`tree::DependencyTree`] keeps one window version per combination of
//!   assumed consumption-group outcomes (paper §3.1),
//! * [`markov::MarkovModel`] predicts each group's completion probability
//!   from run-time statistics (paper §3.2.1),
//! * the splitter schedules the top-k most-likely-to-survive versions onto
//!   k operator instances (paper §3.2.2),
//! * instances process events, suppress assumed-consumed events, buffer
//!   speculative outputs and roll back on consistency violations
//!   (paper §3.3).
//!
//! The runtime is an incremental **engine session**, [`SpectreEngine`]:
//! built with a builder (`SpectreEngine::builder(&query).config(cfg)
//! .threaded()/.simulated().build()`), fed with `push` / `push_batch` /
//! `ingest` (any `Iterator<Item = Event>` — a dataset generator, a TCP
//! source — streams in without ever being materialized), drained with
//! `drain_outputs` (complex events as they are committed, tagged with the
//! producing query; `drain_events` for the untagged single-query stream),
//! observed with `metrics`, and closed with `finish() -> Report`.
//! Back-pressure is part of the surface: `push` returns `Full(event)`
//! instead of buffering without bound, so memory stays bounded by the
//! speculative-load cap regardless of stream length. Two execution modes
//! share the session: deterministic virtual-time simulation (used for the
//! paper's scalability figures) and real OS threads. The legacy one-shot
//! drivers [`run_simulated`] and [`run_threaded`] survive as thin wrappers
//! over a session. Every mode delivers exactly the sequential-semantics
//! output: no false positives, no false negatives, in window order.
//!
//! Streams need not arrive in timestamp order: the opt-in
//! [`SpectreConfig::reorder`] knob interposes a watermark-driven
//! [`reorder::ReorderBuffer`] ahead of the splitter — events arriving up
//! to a bounded lateness out of order are buffered and released in
//! timestamp order, later ones are resolved by a pluggable
//! [`reorder::LatePolicy`], and the output stays bit-identical to the
//! in-order run.
//!
//! One session hosts any number of **concurrent queries** over the shared
//! splitter, store and instance pool ([`shared::QueryId`] keys the
//! per-query state): add them with `SpectreEngineBuilder::add_query`, or
//! deploy/retire on the live session mid-stream (`deploy_query` /
//! `retire_query`). Queries with equal window specs share their window
//! buffers — each window's events are stored once — and every query's
//! output stream is bit-identical to what it would produce in a session
//! of its own. Misuse of the session surface is reported as
//! [`engine::EngineError`] through the fallible `try_*` methods; the
//! legacy infallible methods stay panic-compatible.
//!
//! Sessions are **tenant-aware**: each query belongs to a
//! [`shared::TenantId`] (the default tenant unless deployed with
//! `add_query_for` / `deploy_query_for`), and per-tenant
//! [`config::TenantQuota`]s set a scheduling weight (weighted fair share
//! of the k instance slots, deficit-round-robin carryover), a speculation
//! cap (`max_versions`) and a query cap. Queries also derive a
//! conservative per-event prefilter from their pattern
//! ([`spectre_query::EventFilter`]): windows containing no relevant event
//! are skipped outright ([`MetricsSnapshot::windows_skipped`]). Sessions
//! with at most one tenant schedule bit-identically to the untenanted
//! engine, and per-tenant rollups ([`SpectreEngine::tenant_metrics`],
//! [`engine::Report::tenants`]) sum exactly to the aggregate counters.
//!
//! ## The batched, sharded data path
//!
//! The hot path moves data in batches end to end (see
//! `docs/ARCHITECTURE.md` at the repository root for the full map):
//!
//! * the splitter accumulates ingested events into an
//!   [`EventBatch`] of up to
//!   [`SpectreConfig::batch_size`] events and flushes each batch to the
//!   [`store::WindowStore`] with one write per touched window,
//! * the window store is sharded by window-id hash
//!   ([`SpectreConfig::store_shards`]), so instances working on different
//!   windows take different locks,
//! * instances fetch and process events in runs of up to `batch_size`
//!   under one shard read-lock plus one version-lock acquisition, and
//!   flush their buffered dependency-tree operations with one queue
//!   operation per step.
//!
//! `batch_size: 1` together with `store_shards: 1` reproduces the original
//! event-at-a-time, single-lock data path; the output is bit-identical for
//! every combination (enforced by `tests/tests/smoke.rs` and
//! `tests/tests/threaded.rs`).
//!
//! ## The lazy dependency tree
//!
//! Creating a consumption group nominally doubles the creator's dependent
//! subtree. With [`SpectreConfig::lazy_materialization`] on (the default)
//! the completion branch is a single *lazy vertex* — a thunk over the
//! sibling abandon edge — and group creation is O(1) in tree size. The
//! branch's version state is cloned only when the top-k selection first
//! schedules it or its group completes; branches dropped by an
//! abandonment, a rollback or a losing outer branch cost nothing
//! (counted by [`MetricsSnapshot::lazy_versions_dropped`]). Window attach
//! is deferred the same way ([`SpectreConfig::lazy_attach`], default on):
//! opening a window records it on a *pending-attach marker* per leaf
//! lineage, and the fresh version is created only when the selection
//! actually schedules the lineage — one version per pop, so per-window
//! version creation is O(scheduled lineages) instead of O(leaves).
//! `false` restores the eager behaviors for A/B runs; the output is
//! identical either way (enforced by the lazy/attach on/off matrices in
//! the same test suites).
//!
//! ## The vectorized Markov predictor
//!
//! The completion-probability prediction (paper Fig. 5) only reads entry
//! `[δ][0]` of the precomputed transition-matrix powers, so
//! [`markov::MarkovModel`] maintains just those *columns*
//! (`v_{i+1} = T^ℓ·v_i`): a statistics refresh costs O(L·n²)
//! matrix–vector work instead of O(L·n³) full products. Refreshes apply
//! one exponential-smoothing step per full ρ-window of pending
//! observations (remainder carried over) — the paper's per-ρ cadence even
//! when statistics arrive in bulk — and can be rate-limited via
//! [`markov::MarkovConfig::min_events_between_refreshes`]. The splitter
//! accounts the cost in [`MetricsSnapshot::predictor_refreshes`] /
//! [`MetricsSnapshot::predictor_refresh_nanos`].
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use spectre_events::Schema;
//! use spectre_datasets::{NyseConfig, NyseGenerator};
//! use spectre_query::queries;
//! use spectre_core::{SpectreConfig, SpectreEngine};
//!
//! let mut schema = Schema::new();
//! let query = Arc::new(queries::q1(&mut schema, 3, 100, Default::default()));
//! let mut engine = SpectreEngine::builder(&query)
//!     .config(SpectreConfig::with_instances(8))
//!     .simulated()
//!     .build();
//! // The generator streams straight into the session — no Vec fixture.
//! engine.ingest(NyseGenerator::new(NyseConfig::small(1000, 42), &mut schema));
//! let report = engine.finish();
//! println!("{} complex events from {} input events",
//!          report.complex_events.len(), report.input_events);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod config;
pub mod elastic;
pub mod engine;
pub mod instance;
pub mod markov;
pub mod matrix;
pub mod metrics;
pub mod predictor;
pub mod reorder;
pub mod runtime;
pub mod shared;
pub mod sim;
pub mod splitter;
pub mod store;
pub mod tree;
pub mod version;

pub use config::{PredictorKind, SpectreConfig, TenantQuota};
pub use engine::{
    EngineError, PushResult, QueryReport, Report, SpectreEngine, SpectreEngineBuilder,
};
pub use metrics::{MetricsSnapshot, WorkerSnapshot};
pub use reorder::{LatePolicy, ReorderConfig, WatermarkPolicy};
pub use runtime::{run_threaded, ThreadedReport};
pub use shared::{QueryId, TenantId};
pub use sim::{run_simulated, SimReport};
pub use splitter::{EventBatch, Splitter};
pub use store::WindowStore;
