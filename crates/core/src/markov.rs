//! The Markov completion-probability model (paper §3.2.1, Fig. 5).
//!
//! Pattern completion is modeled as a discrete-time Markov process over the
//! completion distance δ (δ = 0 means the pattern completed). A transition
//! matrix `T1` is estimated from run-time statistics — the observed
//! `δ_old → δ_new` transitions per processed event — and refreshed with
//! exponential smoothing `T1 = (1 − α)·T1_old + α·T1_new` after every ρ new
//! measurements. Powers `T_ℓ, T_2ℓ, …` are precomputed at step size ℓ and
//! linearly interpolated, so predicting the completion probability of a
//! consumption group with `n` expected remaining events is a constant-time
//! lookup of entry `[δ][0]`.
//!
//! Deviation from the paper: the state space is capped at
//! [`MarkovConfig::state_cap`] states (δ values above the cap saturate).
//! The paper's examples use δ ≤ 3; query Q1 at q = 2560 would otherwise
//! need a 2561² matrix with thousands of precomputed powers (see DESIGN.md).

use crate::matrix::Matrix;

/// Configuration of the [`MarkovModel`].
#[derive(Debug, Clone)]
pub struct MarkovConfig {
    /// Exponential-smoothing factor α ∈ [0, 1] (paper default 0.7).
    pub alpha: f64,
    /// Precomputed power step size ℓ (paper default 10).
    pub ell: u32,
    /// Measurements per `T1` refresh ρ.
    pub rho: u64,
    /// Maximum number of δ states tracked (δ saturates above this).
    pub state_cap: usize,
    /// Maximum number of precomputed power levels (`T_ℓ … T_{L·ℓ}`);
    /// predictions beyond saturate at the last level.
    pub max_levels: usize,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            alpha: 0.7,
            ell: 10,
            rho: 512,
            state_cap: 128,
            max_levels: 128,
        }
    }
}

/// The adaptive Markov model. Owned and updated by the splitter; instances
/// ship it `(δ_old, δ_new)` observations in batches.
///
/// # Example
///
/// ```
/// use spectre_core::markov::{MarkovConfig, MarkovModel};
///
/// let mut model = MarkovModel::new(3, MarkovConfig { rho: 4, ..Default::default() });
/// // Observe a pattern that always advances: 3→2→1→0.
/// for _ in 0..4 {
///     model.observe(3, 2);
///     model.observe(2, 1);
///     model.observe(1, 0);
/// }
/// model.refresh_if_due();
/// // With many events left, completion from δ=3 is near certain.
/// assert!(model.completion_probability(3, 100) > 0.9);
/// ```
#[derive(Debug)]
pub struct MarkovModel {
    config: MarkovConfig,
    states: usize,
    t1: Matrix,
    counts: Matrix,
    pending: u64,
    powers: Vec<Matrix>,
    dirty: bool,
    refreshes: u64,
}

impl MarkovModel {
    /// Creates a model for patterns with initial completion distance
    /// `max_delta`; the state space is `min(max_delta, state_cap) + 1`
    /// states.
    ///
    /// Before any statistics arrive the model uses an uninformative prior:
    /// from every state, advance one step or stay with probability ½ each.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or `ell` is zero.
    pub fn new(max_delta: usize, config: MarkovConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must be in [0, 1]"
        );
        assert!(config.ell > 0, "ell must be positive");
        let states = max_delta.min(config.state_cap) + 1;
        let mut t1 = Matrix::identity(states);
        for i in 1..states {
            t1[(i, i)] = 0.5;
            t1[(i, i - 1)] = 0.5;
        }
        let mut model = MarkovModel {
            config,
            states,
            t1,
            counts: Matrix::zeros(states),
            pending: 0,
            powers: Vec::new(),
            dirty: true,
            refreshes: 0,
        };
        model.rebuild_powers();
        model
    }

    /// Number of δ states (including state 0).
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Number of `T1` refreshes performed so far.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Maps a completion distance onto the (possibly saturated) state index.
    pub fn clamp_delta(&self, delta: usize) -> usize {
        delta.min(self.states - 1)
    }

    /// Records one observed transition `δ_old → δ_new`.
    pub fn observe(&mut self, delta_old: usize, delta_new: usize) {
        let from = self.clamp_delta(delta_old);
        let to = self.clamp_delta(delta_new);
        self.counts[(from, to)] += 1.0;
        self.pending += 1;
    }

    /// Records a batch of transitions.
    pub fn observe_batch(&mut self, transitions: &[(u32, u32)]) {
        for &(from, to) in transitions {
            self.observe(from as usize, to as usize);
        }
    }

    /// Refreshes `T1` (exponential smoothing) and the precomputed powers if ρ
    /// new measurements accumulated. Returns `true` if a refresh happened.
    pub fn refresh_if_due(&mut self) -> bool {
        if self.pending < self.config.rho {
            return false;
        }
        let mut t_new = self.counts.clone();
        t_new.row_normalize();
        self.t1 = self.t1.lerp(&t_new, self.config.alpha);
        self.counts = Matrix::zeros(self.states);
        self.pending = 0;
        self.dirty = true;
        self.rebuild_powers();
        self.refreshes += 1;
        true
    }

    fn rebuild_powers(&mut self) {
        if !self.dirty {
            return;
        }
        let t_ell = self.t1.power(self.config.ell);
        let mut powers = Vec::with_capacity(self.config.max_levels);
        powers.push(t_ell.clone());
        for _ in 1..self.config.max_levels {
            let next = powers.last().expect("non-empty").multiply(&t_ell);
            powers.push(next);
        }
        self.powers = powers;
        self.dirty = false;
    }

    /// Completion probability of a consumption group with completion
    /// distance `delta` when `events_left` more events are expected in its
    /// window (paper Fig. 5).
    ///
    /// `events_left` is clamped to at least 1 ("at least 1 more event
    /// expected") and the interpolation reads entry `[δ][0]` of
    /// `T_n ≈ lerp(T_{⌊n/ℓ⌋·ℓ}, T_{⌈n/ℓ⌉·ℓ})`.
    pub fn completion_probability(&self, delta: usize, events_left: i64) -> f64 {
        let delta = self.clamp_delta(delta);
        if delta == 0 {
            return 1.0;
        }
        let n = events_left.max(1) as u64;
        let ell = self.config.ell as u64;
        // Level i holds T^{(i+1)·ℓ}.
        let lo_level = n / ell; // T^{lo_level·ℓ}
        let rem = n % ell;
        let w = rem as f64 / ell as f64;
        let max_level = self.powers.len() as u64;

        let entry = |level: u64| -> f64 {
            if level == 0 {
                // T^0 = identity: probability 1 only from state 0.
                0.0
            } else {
                let idx = (level.min(max_level) - 1) as usize;
                self.powers[idx][(delta, 0)]
            }
        };
        let lo = entry(lo_level);
        let hi = entry(lo_level + 1);
        (1.0 - w) * lo + w * hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(rho: u64) -> MarkovConfig {
        MarkovConfig {
            rho,
            ell: 4,
            max_levels: 32,
            ..Default::default()
        }
    }

    #[test]
    fn prior_gives_moderate_probabilities() {
        let model = MarkovModel::new(3, small_config(10));
        let p_short = model.completion_probability(3, 2);
        let p_long = model.completion_probability(3, 100);
        assert!(p_short < p_long, "{p_short} vs {p_long}");
        assert!(p_long > 0.9);
        assert_eq!(model.completion_probability(0, 5), 1.0);
    }

    #[test]
    fn learns_never_completing_patterns() {
        let mut model = MarkovModel::new(2, small_config(8));
        // Interleave observation rounds with refreshes so smoothing drives
        // the transition rates towards "never advance".
        for _ in 0..12 {
            for _ in 0..4 {
                model.observe(2, 2);
                model.observe(1, 1);
            }
            model.refresh_if_due();
        }
        let p = model.completion_probability(2, 50);
        assert!(p < 0.1, "p = {p}");
    }

    #[test]
    fn learns_always_advancing_patterns() {
        let mut model = MarkovModel::new(4, small_config(8));
        for _ in 0..64 {
            for d in (1..=4).rev() {
                model.observe(d, d - 1);
            }
        }
        while model.refresh_if_due() {}
        assert!(model.completion_probability(4, 20) > 0.95);
        // but with fewer remaining events than steps needed, low probability
        assert!(model.completion_probability(4, 2) < 0.5);
    }

    #[test]
    fn refresh_respects_rho() {
        let mut model = MarkovModel::new(2, small_config(10));
        for _ in 0..9 {
            model.observe(2, 1);
        }
        assert!(!model.refresh_if_due());
        model.observe(2, 1);
        assert!(model.refresh_if_due());
        assert_eq!(model.refresh_count(), 1);
    }

    #[test]
    fn smoothing_blends_old_and_new() {
        let cfg = MarkovConfig {
            alpha: 0.5,
            rho: 4,
            ell: 2,
            max_levels: 8,
            state_cap: 128,
        };
        let mut model = MarkovModel::new(1, cfg);
        // Prior: P(1→0) = 0.5. Observe only 1→0.
        for _ in 0..4 {
            model.observe(1, 0);
        }
        model.refresh_if_due();
        // T1[1][0] = 0.5 * 0.5 + 0.5 * 1.0 = 0.75
        let p = model.completion_probability(1, 1);
        // n=1, ℓ=2: interpolates between T^0 (0.0) and T^2 at weight 0.5.
        // T^2[1][0] = 1 - 0.25^2 = 0.9375 → p = 0.5 * 0.9375 = 0.46875
        assert!((p - 0.468_75).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn delta_saturates_at_state_cap() {
        let cfg = MarkovConfig {
            state_cap: 8,
            ..small_config(4)
        };
        let model = MarkovModel::new(100, cfg);
        assert_eq!(model.state_count(), 9);
        assert_eq!(model.clamp_delta(100), 8);
        // saturated deltas still produce a valid probability
        let p = model.completion_probability(100, 1000);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn events_left_clamps_to_one() {
        let model = MarkovModel::new(2, small_config(4));
        let p0 = model.completion_probability(1, 0);
        let p_neg = model.completion_probability(1, -5);
        let p1 = model.completion_probability(1, 1);
        assert_eq!(p0, p1);
        assert_eq!(p_neg, p1);
    }

    #[test]
    fn probabilities_monotone_in_events_left() {
        let mut model = MarkovModel::new(3, small_config(8));
        for _ in 0..32 {
            model.observe(3, 2);
            model.observe(2, 2);
            model.observe(2, 1);
            model.observe(1, 0);
        }
        model.refresh_if_due();
        let mut prev = 0.0;
        for n in [1i64, 2, 4, 8, 16, 32, 64] {
            let p = model.completion_probability(3, n);
            assert!(p + 1e-12 >= prev, "n={n}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn invalid_alpha_rejected() {
        let _ = MarkovModel::new(
            2,
            MarkovConfig {
                alpha: 1.5,
                ..Default::default()
            },
        );
    }
}
