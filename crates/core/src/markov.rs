//! The Markov completion-probability model (paper §3.2.1, Fig. 5).
//!
//! Pattern completion is modeled as a discrete-time Markov process over the
//! completion distance δ (δ = 0 means the pattern completed). A transition
//! matrix `T1` is estimated from run-time statistics — the observed
//! `δ_old → δ_new` transitions per processed event — and refreshed with
//! exponential smoothing `T1 = (1 − α)·T1_old + α·T1_new` after every ρ new
//! measurements. The prediction of Fig. 5 only ever reads entry `[δ][0]`
//! of the precomputed powers `T_ℓ, T_2ℓ, …`, so instead of maintaining the
//! full matrices the model keeps just their completion-probability
//! *columns*: `v_i = T^{iℓ}·e₀` with `v_{i+1} = T^ℓ·v_i`, making a refresh
//! O(L·n²) matrix–vector work (plus the O(n³·log ℓ) computation of `T^ℓ`)
//! instead of O(L·n³) full products. Predictions interpolate linearly
//! between adjacent levels, exactly as with the dense powers — the
//! matrix-power formulation survives as the executable specification
//! [`completion_probability_via_matrix_powers`](MarkovModel::completion_probability_via_matrix_powers),
//! which the equivalence tests hold the vectors to.
//!
//! Refresh cadence: statistics arrive in per-cycle batches, so `pending`
//! may cross several ρ-windows at once. [`refresh_if_due`](MarkovModel::refresh_if_due)
//! applies one smoothing step per *full* ρ-window (`pending / ρ` steps,
//! remainder carried into the next window), matching the paper's per-ρ
//! cadence instead of collapsing a whole backlog into a single step.
//! [`MarkovConfig::min_events_between_refreshes`] optionally rate-limits
//! the (rebuild-carrying) refreshes on top: while throttled, observations
//! keep accumulating and the eventual refresh catches up on every full
//! ρ-window at once.
//!
//! Deviation from the paper: the state space is capped at
//! [`MarkovConfig::state_cap`] states (δ values above the cap saturate).
//! The paper's examples use δ ≤ 3; query Q1 at q = 2560 would otherwise
//! need a 2561² matrix with thousands of precomputed powers (see DESIGN.md).

use crate::matrix::Matrix;

/// Configuration of the [`MarkovModel`].
#[derive(Debug, Clone)]
pub struct MarkovConfig {
    /// Exponential-smoothing factor α ∈ [0, 1] (paper default 0.7).
    pub alpha: f64,
    /// Precomputed power step size ℓ (paper default 10).
    pub ell: u32,
    /// Measurements per `T1` refresh ρ.
    pub rho: u64,
    /// Maximum number of δ states tracked (δ saturates above this).
    pub state_cap: usize,
    /// Maximum number of precomputed power levels (`T_ℓ … T_{L·ℓ}`);
    /// predictions beyond saturate at the last level.
    pub max_levels: usize,
    /// Minimum number of *observations* between two refreshes (each refresh
    /// rebuilds the completion-probability vectors). `0` disables the
    /// throttle: a refresh happens whenever a full ρ-window is pending.
    /// With a positive value, a flood of stats batches cannot trigger
    /// back-to-back rebuilds — pending observations accumulate and the
    /// next permitted refresh applies every full ρ-window at once.
    pub min_events_between_refreshes: u64,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            alpha: 0.7,
            ell: 10,
            rho: 512,
            state_cap: 128,
            max_levels: 128,
            min_events_between_refreshes: 0,
        }
    }
}

/// The adaptive Markov model. Owned and updated by the splitter; instances
/// ship it `(δ_old, δ_new)` observations in batches.
///
/// # Example
///
/// ```
/// use spectre_core::markov::{MarkovConfig, MarkovModel};
///
/// let mut model = MarkovModel::new(3, MarkovConfig { rho: 4, ..Default::default() });
/// // Observe a pattern that always advances: 3→2→1→0.
/// for _ in 0..4 {
///     model.observe(3, 2);
///     model.observe(2, 1);
///     model.observe(1, 0);
/// }
/// model.refresh_if_due();
/// // With many events left, completion from δ=3 is near certain.
/// assert!(model.completion_probability(3, 100) > 0.9);
/// ```
#[derive(Debug)]
pub struct MarkovModel {
    config: MarkovConfig,
    states: usize,
    t1: Matrix,
    counts: Matrix,
    pending: u64,
    /// Lifetime observation count (drives the refresh rate limiter).
    events_seen: u64,
    /// `events_seen` at the last refresh.
    last_refresh_events: u64,
    /// Completion-probability vectors, level-major:
    /// `completion[i·states + δ] = (T^{(i+1)·ℓ})[δ][0]`.
    completion: Vec<f64>,
    dirty: bool,
    refreshes: u64,
    smoothing_steps: u64,
}

impl MarkovModel {
    /// Creates a model for patterns with initial completion distance
    /// `max_delta`; the state space is `min(max_delta, state_cap) + 1`
    /// states.
    ///
    /// Before any statistics arrive the model uses an uninformative prior:
    /// from every state, advance one step or stay with probability ½ each.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or `ell` is zero.
    pub fn new(max_delta: usize, config: MarkovConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must be in [0, 1]"
        );
        assert!(config.ell > 0, "ell must be positive");
        let states = max_delta.min(config.state_cap) + 1;
        let mut t1 = Matrix::identity(states);
        for i in 1..states {
            t1[(i, i)] = 0.5;
            t1[(i, i - 1)] = 0.5;
        }
        let mut model = MarkovModel {
            config,
            states,
            t1,
            counts: Matrix::zeros(states),
            pending: 0,
            events_seen: 0,
            last_refresh_events: 0,
            completion: Vec::new(),
            dirty: true,
            refreshes: 0,
            smoothing_steps: 0,
        };
        model.rebuild_completion_levels();
        model
    }

    /// Number of δ states (including state 0).
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Number of refreshes performed so far (each rebuilt the
    /// completion-probability vectors; one refresh may apply several
    /// smoothing steps, see [`smoothing_steps`](Self::smoothing_steps)).
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Number of exponential-smoothing steps applied so far — one per full
    /// ρ-window of observations, however they were batched.
    pub fn smoothing_steps(&self) -> u64 {
        self.smoothing_steps
    }

    /// Observations accumulated towards the next ρ-window.
    pub fn pending_observations(&self) -> u64 {
        self.pending
    }

    /// The current smoothed transition matrix `T1` (for inspection and the
    /// equivalence tests).
    pub fn t1(&self) -> &Matrix {
        &self.t1
    }

    /// Maps a completion distance onto the (possibly saturated) state index.
    pub fn clamp_delta(&self, delta: usize) -> usize {
        delta.min(self.states - 1)
    }

    /// Records one observed transition `δ_old → δ_new`.
    pub fn observe(&mut self, delta_old: usize, delta_new: usize) {
        let from = self.clamp_delta(delta_old);
        let to = self.clamp_delta(delta_new);
        self.counts[(from, to)] += 1.0;
        self.pending += 1;
        self.events_seen += 1;
    }

    /// Records a batch of transitions.
    pub fn observe_batch(&mut self, transitions: &[(u32, u32)]) {
        for &(from, to) in transitions {
            self.observe(from as usize, to as usize);
        }
    }

    /// Refreshes `T1` (exponential smoothing) and the precomputed
    /// completion-probability vectors if at least one full ρ-window of
    /// measurements accumulated — one smoothing step per full window, the
    /// remainder carried over — unless the refresh rate limiter
    /// ([`MarkovConfig::min_events_between_refreshes`]) is still in its
    /// hold-off period. Returns `true` if a refresh happened.
    ///
    /// Statistics arrive in per-cycle batches, so `pending` routinely
    /// crosses several ρ-windows at once; collapsing them into a single
    /// smoothing step would under-weight recent observations relative to
    /// the paper's per-ρ cadence (`T1 = (1−α)·T1_old + α·T1_new` once per
    /// window). The aggregated counts stand in for each window's estimate:
    /// when every window drew from the same distribution this is exact
    /// (normalization is scale-invariant), otherwise it is the natural
    /// batch approximation. The `pending % ρ` remainder observations stay
    /// pending, their counts scaled down to the remainder's share of the
    /// aggregate.
    pub fn refresh_if_due(&mut self) -> bool {
        if self.pending < self.config.rho {
            return false;
        }
        let min_gap = self.config.min_events_between_refreshes;
        if min_gap > 0 && self.events_seen - self.last_refresh_events < min_gap {
            return false;
        }
        let steps = self.pending / self.config.rho;
        let remainder = self.pending % self.config.rho;
        let mut t_new = self.counts.clone();
        t_new.row_normalize();
        // One lerp per full ρ-window — bit-identical to feeding the same
        // windows one refresh at a time.
        for _ in 0..steps {
            self.t1 = self.t1.lerp(&t_new, self.config.alpha);
        }
        if remainder == 0 {
            self.counts = Matrix::zeros(self.states);
        } else {
            // Keep the remainder's share of the aggregate distribution.
            self.counts.scale(remainder as f64 / self.pending as f64);
        }
        self.pending = remainder;
        self.smoothing_steps += steps;
        self.last_refresh_events = self.events_seen;
        self.dirty = true;
        self.rebuild_completion_levels();
        self.refreshes += 1;
        true
    }

    /// Rebuilds the completion-probability vectors from `T1`: level `i`
    /// holds column 0 of `T^{(i+1)·ℓ}`, advanced one level at a time via
    /// `v_{i+1} = T^ℓ·v_i` — O(max_levels · n²) after the single O(n³·log ℓ)
    /// power for `T^ℓ`.
    fn rebuild_completion_levels(&mut self) {
        if !self.dirty {
            return;
        }
        let t_ell = self.t1.power(self.config.ell);
        let states = self.states;
        let mut completion = Vec::with_capacity(self.config.max_levels * states);
        // Level 0: column 0 of T^ℓ itself.
        let mut v: Vec<f64> = (0..states).map(|i| t_ell[(i, 0)]).collect();
        completion.extend_from_slice(&v);
        for _ in 1..self.config.max_levels {
            v = t_ell.mul_col(&v);
            completion.extend_from_slice(&v);
        }
        self.completion = completion;
        self.dirty = false;
    }

    /// Completion probability of a consumption group with completion
    /// distance `delta` when `events_left` more events are expected in its
    /// window (paper Fig. 5).
    ///
    /// `events_left` is clamped to at least 1 ("at least 1 more event
    /// expected") and the interpolation reads the `[δ][0]` entries of
    /// `T_n ≈ lerp(T_{⌊n/ℓ⌋·ℓ}, T_{⌈n/ℓ⌉·ℓ})` — two lookups in the
    /// precomputed completion vectors plus the lerp.
    pub fn completion_probability(&self, delta: usize, events_left: i64) -> f64 {
        let delta = self.clamp_delta(delta);
        if delta == 0 {
            return 1.0;
        }
        let n = events_left.max(1) as u64;
        let ell = self.config.ell as u64;
        // Level i holds the [δ][0] column of T^{(i+1)·ℓ}.
        let lo_level = n / ell; // T^{lo_level·ℓ}
        let rem = n % ell;
        let w = rem as f64 / ell as f64;
        let max_level = (self.completion.len() / self.states) as u64;

        let entry = |level: u64| -> f64 {
            if level == 0 {
                // T^0 = identity: probability 1 only from state 0.
                0.0
            } else {
                let idx = (level.min(max_level) - 1) as usize;
                self.completion[idx * self.states + delta]
            }
        };
        let lo = entry(lo_level);
        let hi = entry(lo_level + 1);
        (1.0 - w) * lo + w * hi
    }

    /// Reference implementation of [`completion_probability`](Self::completion_probability)
    /// via full dense matrix powers, recomputed from the current `T1` on
    /// every call — O(max_levels·n³), the pre-vectorization cost. This is
    /// the executable specification the equivalence tests hold the
    /// maintained completion vectors to (≤ 1e-9); it is not used on any
    /// hot path.
    pub fn completion_probability_via_matrix_powers(&self, delta: usize, events_left: i64) -> f64 {
        let delta = self.clamp_delta(delta);
        if delta == 0 {
            return 1.0;
        }
        let t_ell = self.t1.power(self.config.ell);
        let mut powers: Vec<Matrix> = Vec::with_capacity(self.config.max_levels);
        powers.push(t_ell.clone());
        for _ in 1..self.config.max_levels {
            let next = powers.last().expect("non-empty").multiply(&t_ell);
            powers.push(next);
        }
        let n = events_left.max(1) as u64;
        let ell = self.config.ell as u64;
        let lo_level = n / ell;
        let rem = n % ell;
        let w = rem as f64 / ell as f64;
        let max_level = powers.len() as u64;
        let entry = |level: u64| -> f64 {
            if level == 0 {
                0.0
            } else {
                let idx = (level.min(max_level) - 1) as usize;
                powers[idx][(delta, 0)]
            }
        };
        (1.0 - w) * entry(lo_level) + w * entry(lo_level + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(rho: u64) -> MarkovConfig {
        MarkovConfig {
            rho,
            ell: 4,
            max_levels: 32,
            ..Default::default()
        }
    }

    #[test]
    fn prior_gives_moderate_probabilities() {
        let model = MarkovModel::new(3, small_config(10));
        let p_short = model.completion_probability(3, 2);
        let p_long = model.completion_probability(3, 100);
        assert!(p_short < p_long, "{p_short} vs {p_long}");
        assert!(p_long > 0.9);
        assert_eq!(model.completion_probability(0, 5), 1.0);
    }

    #[test]
    fn learns_never_completing_patterns() {
        let mut model = MarkovModel::new(2, small_config(8));
        // Interleave observation rounds with refreshes so smoothing drives
        // the transition rates towards "never advance".
        for _ in 0..12 {
            for _ in 0..4 {
                model.observe(2, 2);
                model.observe(1, 1);
            }
            model.refresh_if_due();
        }
        let p = model.completion_probability(2, 50);
        assert!(p < 0.1, "p = {p}");
    }

    #[test]
    fn learns_always_advancing_patterns() {
        let mut model = MarkovModel::new(4, small_config(8));
        for _ in 0..64 {
            for d in (1..=4).rev() {
                model.observe(d, d - 1);
            }
        }
        while model.refresh_if_due() {}
        assert!(model.completion_probability(4, 20) > 0.95);
        // With fewer remaining events (2) than steps needed (4) the true
        // probability is 0; the ℓ-grid interpolation between T⁰ and T^ℓ
        // floors the estimate at (n mod ℓ)/ℓ · T^ℓ[δ][0] = 0.5 here (the
        // fully-learned chain reaches 0 in exactly ℓ = 4 steps).
        let p_short = model.completion_probability(4, 2);
        assert!(p_short <= 0.5 + 1e-9, "p = {p_short}");
        assert!(p_short < model.completion_probability(4, 20));
    }

    #[test]
    fn refresh_respects_rho() {
        let mut model = MarkovModel::new(2, small_config(10));
        for _ in 0..9 {
            model.observe(2, 1);
        }
        assert!(!model.refresh_if_due());
        model.observe(2, 1);
        assert!(model.refresh_if_due());
        assert_eq!(model.refresh_count(), 1);
        assert_eq!(model.smoothing_steps(), 1);
        assert_eq!(model.pending_observations(), 0);
    }

    #[test]
    fn smoothing_blends_old_and_new() {
        let cfg = MarkovConfig {
            alpha: 0.5,
            rho: 4,
            ell: 2,
            max_levels: 8,
            state_cap: 128,
            min_events_between_refreshes: 0,
        };
        let mut model = MarkovModel::new(1, cfg);
        // Prior: P(1→0) = 0.5. Observe only 1→0.
        for _ in 0..4 {
            model.observe(1, 0);
        }
        model.refresh_if_due();
        // T1[1][0] = 0.5 * 0.5 + 0.5 * 1.0 = 0.75
        let p = model.completion_probability(1, 1);
        // n=1, ℓ=2: interpolates between T^0 (0.0) and T^2 at weight 0.5.
        // T^2[1][0] = 1 - 0.25^2 = 0.9375 → p = 0.5 * 0.9375 = 0.46875
        assert!((p - 0.468_75).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn batched_stats_match_sequential_refreshes() {
        // The ρ-collapse regression test: 5ρ observations delivered in one
        // batch must produce the same T1 as the same observations fed one
        // ρ-window at a time with a refresh after each — the paper's
        // per-ρ smoothing cadence, not a single collapsed step.
        let rho = 8u64;
        let window = [
            (2u32, 1u32),
            (2, 2),
            (1, 0),
            (1, 1),
            (2, 1),
            (1, 0),
            (2, 2),
            (1, 1),
        ];
        assert_eq!(window.len() as u64, rho);

        let mut sequential = MarkovModel::new(2, small_config(rho));
        for _ in 0..5 {
            sequential.observe_batch(&window);
            assert!(sequential.refresh_if_due());
        }
        assert_eq!(sequential.smoothing_steps(), 5);

        let mut batched = MarkovModel::new(2, small_config(rho));
        let bulk: Vec<(u32, u32)> = (0..5).flat_map(|_| window.iter().copied()).collect();
        batched.observe_batch(&bulk);
        assert!(batched.refresh_if_due());
        assert_eq!(batched.refresh_count(), 1, "one rebuild for the backlog");
        assert_eq!(batched.smoothing_steps(), 5, "one step per full ρ-window");

        for i in 0..3 {
            for j in 0..3 {
                let (s, b) = (sequential.t1()[(i, j)], batched.t1()[(i, j)]);
                assert!(
                    (s - b).abs() < 1e-15,
                    "T1[{i}][{j}]: sequential {s} vs batched {b}"
                );
            }
        }
        for (delta, n) in [(1usize, 3i64), (2, 10), (2, 100)] {
            let (s, b) = (
                sequential.completion_probability(delta, n),
                batched.completion_probability(delta, n),
            );
            assert!((s - b).abs() < 1e-12, "p({delta},{n}): {s} vs {b}");
        }
    }

    #[test]
    fn refresh_carries_the_remainder() {
        // 2ρ + 3 pending → two smoothing steps, 3 observations carried.
        let mut model = MarkovModel::new(2, small_config(8));
        for _ in 0..19 {
            model.observe(2, 1);
        }
        assert!(model.refresh_if_due());
        assert_eq!(model.smoothing_steps(), 2);
        assert_eq!(model.pending_observations(), 3);
        // Topping the carried remainder up to a full window triggers the
        // next step.
        for _ in 0..5 {
            model.observe(2, 1);
        }
        assert!(model.refresh_if_due());
        assert_eq!(model.smoothing_steps(), 3);
        assert_eq!(model.pending_observations(), 0);
    }

    #[test]
    fn rate_limiter_batches_pending_windows() {
        // With a 100-observation hold-off, ρ-windows pile up unrefreshed
        // and the eventual refresh applies them all in one rebuild.
        let cfg = MarkovConfig {
            min_events_between_refreshes: 100,
            ..small_config(10)
        };
        let mut model = MarkovModel::new(2, cfg);
        for _ in 0..40 {
            model.observe(2, 1);
        }
        assert!(!model.refresh_if_due(), "throttled despite 4 full windows");
        assert_eq!(model.refresh_count(), 0);
        for _ in 0..60 {
            model.observe(2, 1);
        }
        assert!(model.refresh_if_due());
        assert_eq!(model.refresh_count(), 1, "one rebuild for 10 windows");
        assert_eq!(model.smoothing_steps(), 10);
        // The hold-off restarts from the refresh.
        for _ in 0..10 {
            model.observe(2, 1);
        }
        assert!(!model.refresh_if_due());
    }

    #[test]
    fn vectors_match_matrix_power_reference() {
        // The maintained completion vectors against the dense-power
        // executable spec, before and after refreshes.
        let mut model = MarkovModel::new(5, small_config(6));
        let probe = |m: &MarkovModel| {
            for delta in 0..=5usize {
                for n in [0i64, 1, 3, 4, 7, 16, 64, 500] {
                    let fast = m.completion_probability(delta, n);
                    let slow = m.completion_probability_via_matrix_powers(delta, n);
                    assert!(
                        (fast - slow).abs() <= 1e-9,
                        "delta={delta} n={n}: {fast} vs {slow}"
                    );
                }
            }
        };
        probe(&model);
        for round in 0..4 {
            for _ in 0..6 {
                model.observe(5 - (round % 3), 4 - (round % 3));
                model.observe(2, 2);
            }
            model.refresh_if_due();
            probe(&model);
        }
    }

    #[test]
    fn delta_saturates_at_state_cap() {
        let cfg = MarkovConfig {
            state_cap: 8,
            ..small_config(4)
        };
        let model = MarkovModel::new(100, cfg);
        assert_eq!(model.state_count(), 9);
        assert_eq!(model.clamp_delta(100), 8);
        // saturated deltas still produce a valid probability
        let p = model.completion_probability(100, 1000);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn events_left_clamps_to_one() {
        let model = MarkovModel::new(2, small_config(4));
        let p0 = model.completion_probability(1, 0);
        let p_neg = model.completion_probability(1, -5);
        let p1 = model.completion_probability(1, 1);
        assert_eq!(p0, p1);
        assert_eq!(p_neg, p1);
    }

    #[test]
    fn probabilities_monotone_in_events_left() {
        let mut model = MarkovModel::new(3, small_config(8));
        for _ in 0..32 {
            model.observe(3, 2);
            model.observe(2, 2);
            model.observe(2, 1);
            model.observe(1, 0);
        }
        model.refresh_if_due();
        let mut prev = 0.0;
        for n in [1i64, 2, 4, 8, 16, 32, 64] {
            let p = model.completion_probability(3, n);
            assert!(p + 1e-12 >= prev, "n={n}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn invalid_alpha_rejected() {
        let _ = MarkovModel::new(
            2,
            MarkovConfig {
                alpha: 1.5,
                ..Default::default()
            },
        );
    }
}
