//! Minimal dense-matrix kernel for the Markov prediction model.
//!
//! SPECTRE's completion-probability model needs only square row-stochastic
//! matrices, multiplication, and convex combinations (exponential smoothing
//! and linear interpolation of precomputed powers, paper Fig. 5). This
//! hand-rolled kernel avoids a linear-algebra dependency.

/// A square matrix of `f64`, row-major.
///
/// Rows index the *from* state, columns the *to* state:
/// `m[(i, j)] = P(i → j)` for stochastic matrices.
///
/// # Example
///
/// ```
/// use spectre_core::matrix::Matrix;
/// let mut m = Matrix::identity(3);
/// m[(0, 0)] = 0.5;
/// m[(0, 1)] = 0.5;
/// let sq = m.multiply(&m);
/// assert!((sq[(0, 1)] - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of dimension `n × n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Matrix {
        assert!(n > 0, "matrix dimension must be positive");
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of dimension `n × n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let n = self.n;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            let row = &self.data[i * n..(i + 1) * n];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^p` by repeated squaring (`p == 0` gives the identity).
    pub fn power(&self, p: u32) -> Matrix {
        let mut result = Matrix::identity(self.n);
        let mut base = self.clone();
        let mut p = p;
        while p > 0 {
            if p & 1 == 1 {
                result = result.multiply(&base);
            }
            base = base.multiply(&base);
            p >>= 1;
        }
        result
    }

    /// Matrix–column-vector product `self × v`.
    ///
    /// This is the kernel behind the Markov model's vectorized power
    /// maintenance: keeping only the completion-probability *columns*
    /// `T^{iℓ}·e₀` and advancing them with one `mul_col` per level costs
    /// O(n²) per level where a full matrix product costs O(n³).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::matrix::Matrix;
    /// let mut m = Matrix::identity(2);
    /// m[(1, 0)] = 0.5;
    /// m[(1, 1)] = 0.5;
    /// assert_eq!(m.mul_col(&[1.0, 0.0]), vec![1.0, 0.5]);
    /// ```
    pub fn mul_col(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.n, v.len(), "dimension mismatch");
        let n = self.n;
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * n..(i + 1) * n];
            *o = row.iter().zip(v).map(|(&a, &b)| a * b).sum();
        }
        out
    }

    /// Scales every entry by `s` in place (used to carry a remainder
    /// fraction of accumulated transition counts across a refresh).
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Convex combination `(1 - w) * self + w * rhs` (exponential smoothing
    /// and power interpolation both reduce to this).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn lerp(&self, rhs: &Matrix, w: f64) -> Matrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let mut out = Matrix::zeros(self.n);
        for (o, (&a, &b)) in out.data.iter_mut().zip(self.data.iter().zip(&rhs.data)) {
            *o = (1.0 - w) * a + w * b;
        }
        out
    }

    /// Normalizes every row to sum 1; rows summing to 0 become the identity
    /// row (state maps to itself).
    pub fn row_normalize(&mut self) {
        let n = self.n;
        for i in 0..n {
            let row = &mut self.data[i * n..(i + 1) * n];
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                row.iter_mut().for_each(|v| *v /= sum);
            } else {
                row.iter_mut().for_each(|v| *v = 0.0);
                row[i] = 1.0;
            }
        }
    }

    /// `true` if every row sums to 1 within `eps` and all entries are
    /// non-negative.
    pub fn is_row_stochastic(&self, eps: f64) -> bool {
        let n = self.n;
        (0..n).all(|i| {
            let row = &self.data[i * n..(i + 1) * n];
            row.iter().all(|v| *v >= -eps) && (row.iter().sum::<f64>() - 1.0).abs() <= eps
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_chain(p: f64) -> Matrix {
        // state 1 → 0 with probability p; state 0 absorbing.
        let mut m = Matrix::identity(2);
        m[(1, 1)] = 1.0 - p;
        m[(1, 0)] = p;
        m
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = two_state_chain(0.3);
        let id = Matrix::identity(2);
        assert_eq!(m.multiply(&id), m);
        assert_eq!(id.multiply(&m), m);
    }

    #[test]
    fn power_matches_repeated_multiplication() {
        let m = two_state_chain(0.25);
        let mut acc = Matrix::identity(2);
        for p in 0..8 {
            assert_eq!(m.power(p), acc, "power {p}");
            acc = acc.multiply(&m);
        }
    }

    #[test]
    fn absorbing_chain_converges() {
        let m = two_state_chain(0.5);
        let m64 = m.power(64);
        // After many steps, state 1 is absorbed into 0 almost surely.
        assert!((m64[(1, 0)] - 1.0).abs() < 1e-9);
        assert!(m64.is_row_stochastic(1e-9));
    }

    #[test]
    fn lerp_interpolates_entrywise() {
        let a = two_state_chain(0.0);
        let b = two_state_chain(1.0);
        let mid = a.lerp(&b, 0.4);
        assert!((mid[(1, 0)] - 0.4).abs() < 1e-12);
        assert!((mid[(1, 1)] - 0.6).abs() < 1e-12);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn row_normalize_handles_empty_rows() {
        let mut m = Matrix::zeros(3);
        m[(0, 1)] = 2.0;
        m[(0, 2)] = 6.0;
        m.row_normalize();
        assert!((m[(0, 1)] - 0.25).abs() < 1e-12);
        assert!((m[(0, 2)] - 0.75).abs() < 1e-12);
        // empty row 1 becomes identity row
        assert_eq!(m[(1, 1)], 1.0);
        assert!(m.is_row_stochastic(1e-12));
    }

    #[test]
    fn stochasticity_is_preserved_by_products() {
        let a = two_state_chain(0.3);
        let b = two_state_chain(0.7);
        assert!(a.multiply(&b).is_row_stochastic(1e-12));
        assert!(a.power(17).is_row_stochastic(1e-9));
        assert!(a.lerp(&b, 0.5).is_row_stochastic(1e-12));
    }

    #[test]
    fn mul_col_matches_full_product() {
        let a = two_state_chain(0.3);
        let b = two_state_chain(0.7);
        let ab = a.multiply(&b);
        for col in 0..2 {
            let v: Vec<f64> = (0..2).map(|i| b[(i, col)]).collect();
            let got = a.mul_col(&v);
            for (i, g) in got.iter().enumerate() {
                assert!((g - ab[(i, col)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn scale_is_entrywise() {
        let mut m = two_state_chain(0.25);
        m.scale(0.5);
        assert!((m[(1, 0)] - 0.125).abs() < 1e-12);
        assert!((m[(0, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_mul_col_rejected() {
        let _ = Matrix::identity(2).mul_col(&[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_rejected() {
        let _ = Matrix::zeros(0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_multiply_rejected() {
        let _ = Matrix::identity(2).multiply(&Matrix::identity(3));
    }
}
