//! Runtime metrics: the counters behind the paper's overhead analysis
//! (Fig. 10(c) scheduling frequency, Fig. 10(f) tree size) plus speculation
//! accounting.
//!
//! The instance-hot counters (events processed/suppressed, idle and stalled
//! steps) are split into per-worker [`CachePadded`] blocks when the metrics
//! are built with [`Metrics::with_workers`]: each operator instance then
//! increments its own cache line instead of ping-ponging one shared line
//! between cores, and [`Metrics::snapshot`] folds the blocks back into the
//! aggregate. Metrics built without worker blocks (`new`/`default`, e.g.
//! per-query views) fall back to the shared base atomics transparently.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// The instance-hot counters, one cache-padded block per worker (see the
/// module docs). Fields mirror the same-named [`Metrics`] counters.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Events processed by this worker (excluding suppressed skips).
    pub events_processed: AtomicU64,
    /// Events this worker skipped because a suppressed group contained them.
    pub events_suppressed: AtomicU64,
    /// Idle steps taken by this worker (no version scheduled).
    pub idle_steps: AtomicU64,
    /// Stalled steps taken by this worker (version waiting for ingestion).
    pub stalled_steps: AtomicU64,
}

impl WorkerCounters {
    /// Takes a plain-value snapshot of this worker's block.
    pub fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            events_processed: self.events_processed.load(Ordering::Relaxed),
            events_suppressed: self.events_suppressed.load(Ordering::Relaxed),
            idle_steps: self.idle_steps.load(Ordering::Relaxed),
            stalled_steps: self.stalled_steps.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of one worker's [`WorkerCounters`] block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct WorkerSnapshot {
    pub events_processed: u64,
    pub events_suppressed: u64,
    pub idle_steps: u64,
    pub stalled_steps: u64,
}

/// Shared atomic counters, updated by splitter and instances.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Events processed by instances (excluding suppressed skips).
    pub events_processed: AtomicU64,
    /// Events skipped because a suppressed group contained them.
    pub events_suppressed: AtomicU64,
    /// Consumption groups created.
    pub cgs_created: AtomicU64,
    /// Consumption groups completed.
    pub cgs_completed: AtomicU64,
    /// Consumption groups abandoned.
    pub cgs_abandoned: AtomicU64,
    /// Window versions created.
    pub versions_created: AtomicU64,
    /// Window versions dropped (wasted speculation).
    pub versions_dropped: AtomicU64,
    /// Window versions created by materializing lazy completion branches
    /// (the demand-driven subset of `versions_created`).
    pub versions_materialized: AtomicU64,
    /// Lazy completion branches discarded before ever being materialized —
    /// speculation the lazy tree made free (each one stands for a whole
    /// subtree copy the eager tree would have made and thrown away).
    pub lazy_versions_dropped: AtomicU64,
    /// Predictor refreshes performed by the splitter (each rebuilt the
    /// Markov completion-probability vectors).
    pub predictor_refreshes: AtomicU64,
    /// Cumulative wall-clock time spent in predictor refreshes, in
    /// nanoseconds (the `apply_stats` share of the splitter cycle).
    pub predictor_refresh_nanos: AtomicU64,
    /// Rollbacks (instance consistency check or final check).
    pub rollbacks: AtomicU64,
    /// Splitter maintenance + scheduling cycles.
    pub sched_cycles: AtomicU64,
    /// Maximum observed live-version count (paper Fig. 10(f)).
    pub max_tree_versions: AtomicU64,
    /// Windows retired (fully processed and emitted).
    pub windows_retired: AtomicU64,
    /// Idle instance steps (no version scheduled).
    pub idle_steps: AtomicU64,
    /// Stalled instance steps (version waiting for ingestion).
    pub stalled_steps: AtomicU64,
    /// State snapshots taken (checkpointing ablation, §3.3).
    pub checkpoints_taken: AtomicU64,
    /// Rollbacks served from a checkpoint instead of the window start.
    pub checkpoint_restores: AtomicU64,
    /// Complex events committed (appended to the output stream at window
    /// retirement).
    pub outputs_emitted: AtomicU64,
    /// Event buffers opened in the shared window store. Engine-global:
    /// same-spec windows of different queries share one buffer, so in a
    /// multi-query session this stays below the per-query window counts.
    pub store_windows_opened: AtomicU64,
    /// Windows a query never attached because its ingestion prefilter
    /// proved no contained event could match (see the per-query filters in
    /// the splitter): the window spec opened it, but the query paid no
    /// window-attach or tree cost for it.
    pub windows_skipped: AtomicU64,
    /// Out-of-order arrivals the reorder stage repaired (events whose
    /// timestamp was below the maximum already seen). Counted per query
    /// view, like `windows_retired`: every deployed query records the
    /// shared stage's delta, and the aggregate is the sum of the shares.
    pub events_reordered: AtomicU64,
    /// Late events (below the watermark) discarded under
    /// `LatePolicy::Drop`. Per query view, like `events_reordered`.
    pub late_events_dropped: AtomicU64,
    /// Late events routed to still-open windows under `LatePolicy::Admit`.
    /// Per query view, like `events_reordered`.
    pub late_events_admitted: AtomicU64,
    /// Watermark advances emitted by the reorder stage. Per query view,
    /// like `events_reordered`.
    pub watermarks_advanced: AtomicU64,
    /// Per-worker blocks for the instance-hot counters (empty unless built
    /// with [`Metrics::with_workers`]). [`Metrics::snapshot`] adds these to
    /// the base fields of the same names.
    workers: Vec<CachePadded<WorkerCounters>>,
}

impl Metrics {
    /// Creates zeroed metrics with no per-worker blocks: every counter,
    /// including the instance-hot ones, lands on the shared base atomics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed metrics with `workers` cache-padded per-worker blocks
    /// for the instance-hot counters.
    pub fn with_workers(workers: usize) -> Self {
        Metrics {
            workers: (0..workers).map(|_| CachePadded::default()).collect(),
            ..Self::default()
        }
    }

    /// This worker's counter block, or `None` when the metrics were built
    /// without one (then the base atomics are the destination).
    pub fn worker(&self, index: usize) -> Option<&WorkerCounters> {
        self.workers.get(index).map(|w| &**w)
    }

    /// Number of per-worker blocks (0 for `new`/`default` metrics).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Per-worker snapshots, in worker-index order (empty for metrics built
    /// without worker blocks).
    pub fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        self.workers.iter().map(|w| w.snapshot()).collect()
    }

    /// Adds `n` processed events to worker `index`'s block, or to the base
    /// counter when no block exists.
    pub fn add_events_processed(&self, index: usize, n: u64) {
        match self.worker(index) {
            Some(w) => w.events_processed.fetch_add(n, Ordering::Relaxed),
            None => self.events_processed.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Adds `n` suppressed events to worker `index`'s block, or to the base
    /// counter when no block exists.
    pub fn add_events_suppressed(&self, index: usize, n: u64) {
        match self.worker(index) {
            Some(w) => w.events_suppressed.fetch_add(n, Ordering::Relaxed),
            None => self.events_suppressed.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Counts one idle step for worker `index` (base counter when no block
    /// exists).
    pub fn add_idle_step(&self, index: usize) {
        match self.worker(index) {
            Some(w) => w.idle_steps.fetch_add(1, Ordering::Relaxed),
            None => self.idle_steps.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Counts one stalled step for worker `index` (base counter when no
    /// block exists).
    pub fn add_stalled_step(&self, index: usize) {
        match self.worker(index) {
            Some(w) => w.stalled_steps.fetch_add(1, Ordering::Relaxed),
            None => self.stalled_steps.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records a tree-size observation, keeping the maximum.
    pub fn observe_tree_size(&self, size: u64) {
        self.max_tree_versions.fetch_max(size, Ordering::Relaxed);
    }

    /// Takes a plain-value snapshot. The instance-hot counters fold every
    /// per-worker block into the base value, so the snapshot is the same
    /// aggregate whether or not the metrics were built `with_workers`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut events_processed = self.events_processed.load(Ordering::Relaxed);
        let mut events_suppressed = self.events_suppressed.load(Ordering::Relaxed);
        let mut idle_steps = self.idle_steps.load(Ordering::Relaxed);
        let mut stalled_steps = self.stalled_steps.load(Ordering::Relaxed);
        for w in &self.workers {
            events_processed += w.events_processed.load(Ordering::Relaxed);
            events_suppressed += w.events_suppressed.load(Ordering::Relaxed);
            idle_steps += w.idle_steps.load(Ordering::Relaxed);
            stalled_steps += w.stalled_steps.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            events_processed,
            events_suppressed,
            cgs_created: self.cgs_created.load(Ordering::Relaxed),
            cgs_completed: self.cgs_completed.load(Ordering::Relaxed),
            cgs_abandoned: self.cgs_abandoned.load(Ordering::Relaxed),
            versions_created: self.versions_created.load(Ordering::Relaxed),
            versions_dropped: self.versions_dropped.load(Ordering::Relaxed),
            versions_materialized: self.versions_materialized.load(Ordering::Relaxed),
            lazy_versions_dropped: self.lazy_versions_dropped.load(Ordering::Relaxed),
            predictor_refreshes: self.predictor_refreshes.load(Ordering::Relaxed),
            predictor_refresh_nanos: self.predictor_refresh_nanos.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            sched_cycles: self.sched_cycles.load(Ordering::Relaxed),
            max_tree_versions: self.max_tree_versions.load(Ordering::Relaxed),
            windows_retired: self.windows_retired.load(Ordering::Relaxed),
            idle_steps,
            stalled_steps,
            checkpoints_taken: self.checkpoints_taken.load(Ordering::Relaxed),
            checkpoint_restores: self.checkpoint_restores.load(Ordering::Relaxed),
            outputs_emitted: self.outputs_emitted.load(Ordering::Relaxed),
            store_windows_opened: self.store_windows_opened.load(Ordering::Relaxed),
            windows_skipped: self.windows_skipped.load(Ordering::Relaxed),
            events_reordered: self.events_reordered.load(Ordering::Relaxed),
            late_events_dropped: self.late_events_dropped.load(Ordering::Relaxed),
            late_events_admitted: self.late_events_admitted.load(Ordering::Relaxed),
            watermarks_advanced: self.watermarks_advanced.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`Metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct MetricsSnapshot {
    pub events_processed: u64,
    pub events_suppressed: u64,
    pub cgs_created: u64,
    pub cgs_completed: u64,
    pub cgs_abandoned: u64,
    pub versions_created: u64,
    pub versions_dropped: u64,
    pub versions_materialized: u64,
    pub lazy_versions_dropped: u64,
    pub predictor_refreshes: u64,
    pub predictor_refresh_nanos: u64,
    pub rollbacks: u64,
    pub sched_cycles: u64,
    pub max_tree_versions: u64,
    pub windows_retired: u64,
    pub idle_steps: u64,
    pub stalled_steps: u64,
    pub checkpoints_taken: u64,
    pub checkpoint_restores: u64,
    pub outputs_emitted: u64,
    pub store_windows_opened: u64,
    pub windows_skipped: u64,
    pub events_reordered: u64,
    pub late_events_dropped: u64,
    pub late_events_admitted: u64,
    pub watermarks_advanced: u64,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: every summable counter adds, the
    /// high-water mark `max_tree_versions` takes the maximum. The
    /// per-tenant rollups ([`crate::SpectreEngine::tenant_metrics`]) are
    /// built with this, so a new counter added here keeps the
    /// tenant-decomposition invariant by construction.
    pub fn accumulate(&mut self, other: &MetricsSnapshot) {
        let MetricsSnapshot {
            events_processed,
            events_suppressed,
            cgs_created,
            cgs_completed,
            cgs_abandoned,
            versions_created,
            versions_dropped,
            versions_materialized,
            lazy_versions_dropped,
            predictor_refreshes,
            predictor_refresh_nanos,
            rollbacks,
            sched_cycles,
            max_tree_versions,
            windows_retired,
            idle_steps,
            stalled_steps,
            checkpoints_taken,
            checkpoint_restores,
            outputs_emitted,
            store_windows_opened,
            windows_skipped,
            events_reordered,
            late_events_dropped,
            late_events_admitted,
            watermarks_advanced,
        } = *other;
        self.events_processed += events_processed;
        self.events_suppressed += events_suppressed;
        self.cgs_created += cgs_created;
        self.cgs_completed += cgs_completed;
        self.cgs_abandoned += cgs_abandoned;
        self.versions_created += versions_created;
        self.versions_dropped += versions_dropped;
        self.versions_materialized += versions_materialized;
        self.lazy_versions_dropped += lazy_versions_dropped;
        self.predictor_refreshes += predictor_refreshes;
        self.predictor_refresh_nanos += predictor_refresh_nanos;
        self.rollbacks += rollbacks;
        self.sched_cycles += sched_cycles;
        self.max_tree_versions = self.max_tree_versions.max(max_tree_versions);
        self.windows_retired += windows_retired;
        self.idle_steps += idle_steps;
        self.stalled_steps += stalled_steps;
        self.checkpoints_taken += checkpoints_taken;
        self.checkpoint_restores += checkpoint_restores;
        self.outputs_emitted += outputs_emitted;
        self.store_windows_opened += store_windows_opened;
        self.windows_skipped += windows_skipped;
        self.events_reordered += events_reordered;
        self.late_events_dropped += late_events_dropped;
        self.late_events_admitted += late_events_admitted;
        self.watermarks_advanced += watermarks_advanced;
    }

    /// Fraction of processing that survived (was not spent on later-dropped
    /// versions); a rough utility measure of the speculation.
    pub fn cg_completion_ratio(&self) -> f64 {
        let resolved = self.cgs_completed + self.cgs_abandoned;
        if resolved == 0 {
            1.0
        } else {
            self.cgs_completed as f64 / resolved as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        m.events_processed.fetch_add(5, Ordering::Relaxed);
        m.rollbacks.fetch_add(2, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.events_processed, 5);
        assert_eq!(s.rollbacks, 2);
        assert_eq!(s.cgs_created, 0);
    }

    #[test]
    fn worker_blocks_fold_into_the_snapshot() {
        let m = Metrics::with_workers(3);
        assert_eq!(m.worker_count(), 3);
        m.add_events_processed(0, 5);
        m.add_events_processed(2, 7);
        m.add_events_suppressed(1, 2);
        m.add_idle_step(1);
        m.add_stalled_step(2);
        // Out-of-range worker indices land on the base atomics.
        m.add_events_processed(9, 11);
        let s = m.snapshot();
        assert_eq!(s.events_processed, 23);
        assert_eq!(s.events_suppressed, 2);
        assert_eq!(s.idle_steps, 1);
        assert_eq!(s.stalled_steps, 1);
        // The aggregate is exactly the base residual plus the block sums.
        let per: Vec<WorkerSnapshot> = m.worker_snapshots();
        let block_sum: u64 = per.iter().map(|w| w.events_processed).sum();
        let base = m.events_processed.load(Ordering::Relaxed);
        assert_eq!(base + block_sum, s.events_processed);
        assert_eq!(per[0].events_processed, 5);
        assert_eq!(per[2].events_processed, 7);
    }

    #[test]
    fn workerless_metrics_fall_back_to_base_atomics() {
        let m = Metrics::new();
        assert_eq!(m.worker_count(), 0);
        assert!(m.worker(0).is_none());
        m.add_events_processed(0, 4);
        m.add_idle_step(3);
        assert_eq!(m.events_processed.load(Ordering::Relaxed), 4);
        assert_eq!(m.idle_steps.load(Ordering::Relaxed), 1);
        assert_eq!(m.snapshot().events_processed, 4);
        assert!(m.worker_snapshots().is_empty());
    }

    #[test]
    fn tree_size_keeps_maximum() {
        let m = Metrics::new();
        m.observe_tree_size(10);
        m.observe_tree_size(4);
        m.observe_tree_size(17);
        assert_eq!(m.snapshot().max_tree_versions, 17);
    }

    #[test]
    fn accumulate_sums_counters_and_maxes_the_high_water_mark() {
        let mut acc = MetricsSnapshot {
            events_processed: 3,
            max_tree_versions: 10,
            windows_skipped: 1,
            ..Default::default()
        };
        acc.accumulate(&MetricsSnapshot {
            events_processed: 4,
            max_tree_versions: 7,
            windows_skipped: 2,
            outputs_emitted: 5,
            ..Default::default()
        });
        assert_eq!(acc.events_processed, 7);
        assert_eq!(acc.max_tree_versions, 10);
        assert_eq!(acc.windows_skipped, 3);
        assert_eq!(acc.outputs_emitted, 5);
    }

    #[test]
    fn completion_ratio() {
        let s = MetricsSnapshot {
            cgs_completed: 3,
            cgs_abandoned: 1,
            ..Default::default()
        };
        assert!((s.cg_completion_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(MetricsSnapshot::default().cg_completion_ratio(), 1.0);
    }
}
