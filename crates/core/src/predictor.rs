//! Completion-probability predictors.
//!
//! The splitter asks a predictor for the completion probability of every
//! open consumption group when computing survival probabilities (paper
//! §3.2). The paper proposes the adaptive [`MarkovModel`]; the evaluation of
//! Fig. 11 compares it against fixed-probability assignments, reproduced
//! here as [`FixedPredictor`].

use crate::markov::{MarkovConfig, MarkovModel};

/// Predicts the completion probability of a consumption group.
pub trait CompletionPredictor: Send {
    /// Probability that a consumption group with completion distance `delta`
    /// completes, given `events_left` expected further events in its window.
    fn predict(&self, delta: usize, events_left: i64) -> f64;

    /// Feeds observed `(δ_old, δ_new)` transitions (no-op for static
    /// predictors).
    fn observe_batch(&mut self, _transitions: &[(u32, u32)]) {}

    /// Gives the predictor a chance to refresh internal state (no-op for
    /// static predictors). Returns `true` if a refresh happened.
    fn refresh(&mut self) -> bool {
        false
    }
}

/// The paper's adaptive Markov predictor (§3.2.1).
#[derive(Debug)]
pub struct MarkovPredictor {
    model: MarkovModel,
}

impl MarkovPredictor {
    /// Creates a predictor for patterns with the given initial completion
    /// distance.
    pub fn new(max_delta: usize, config: MarkovConfig) -> Self {
        MarkovPredictor {
            model: MarkovModel::new(max_delta, config),
        }
    }

    /// The underlying model (for inspection).
    pub fn model(&self) -> &MarkovModel {
        &self.model
    }
}

impl CompletionPredictor for MarkovPredictor {
    fn predict(&self, delta: usize, events_left: i64) -> f64 {
        self.model.completion_probability(delta, events_left)
    }

    fn observe_batch(&mut self, transitions: &[(u32, u32)]) {
        self.model.observe_batch(transitions);
    }

    fn refresh(&mut self) -> bool {
        self.model.refresh_if_due()
    }
}

/// Assigns every consumption group the same fixed completion probability
/// (the baseline family of paper Fig. 11).
#[derive(Debug, Clone, Copy)]
pub struct FixedPredictor {
    p: f64,
}

impl FixedPredictor {
    /// Creates a fixed predictor.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        FixedPredictor { p }
    }
}

impl CompletionPredictor for FixedPredictor {
    fn predict(&self, delta: usize, _events_left: i64) -> f64 {
        if delta == 0 {
            1.0
        } else {
            self.p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_predictor_is_constant_except_when_complete() {
        let p = FixedPredictor::new(0.3);
        assert_eq!(p.predict(5, 10), 0.3);
        assert_eq!(p.predict(5, 1_000_000), 0.3);
        assert_eq!(p.predict(0, 1), 1.0);
    }

    #[test]
    fn markov_predictor_adapts() {
        let mut p = MarkovPredictor::new(
            2,
            MarkovConfig {
                rho: 4,
                ..Default::default()
            },
        );
        let before = p.predict(2, 20);
        for _ in 0..8 {
            p.observe_batch(&[(2, 1), (1, 0)]);
            p.refresh();
        }
        let after = p.predict(2, 20);
        assert!(after > before, "{after} <= {before}");
    }

    #[test]
    fn trait_objects_work() {
        let predictors: Vec<Box<dyn CompletionPredictor>> = vec![
            Box::new(FixedPredictor::new(0.5)),
            Box::new(MarkovPredictor::new(3, MarkovConfig::default())),
        ];
        for p in &predictors {
            let v = p.predict(1, 10);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn fixed_predictor_validates() {
        let _ = FixedPredictor::new(1.1);
    }
}
