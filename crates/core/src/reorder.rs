//! The watermark-driven reorder stage: bounded-lateness buffering ahead of
//! the splitter.
//!
//! Every engine path downstream of the splitter assumes events arrive in
//! timestamp order — the window assigner closes time windows by comparing
//! each event's timestamp against open window starts, and the warm-up
//! window-size estimate feeds the predictor under the same assumption. The
//! paper's target feeds deliver late and out of order, so an opt-in
//! [`ReorderBuffer`] sits between the session surface
//! (`push`/`push_batch`/`ingest`) and [`Splitter::feed`]
//! (see [`SpectreConfig::reorder`](crate::SpectreConfig::reorder)):
//!
//! * arriving events are buffered keyed by `(timestamp, arrival)` — the
//!   arrival counter keeps duplicate timestamps stable,
//! * a **watermark** tracks event-time progress under a fixed
//!   bounded-lateness assumption: no event arrives more than
//!   [`ReorderConfig::max_delay`] timestamp ticks after a later-stamped
//!   event already seen ([`WatermarkPolicy::Periodic`] re-derives it from
//!   the maximum seen timestamp; [`WatermarkPolicy::Punctuated`] advances
//!   it only on explicit punctuation, e.g. a decoded watermark frame),
//! * events at or below the watermark are **released** in timestamp order
//!   ([`pop_ready`](ReorderBuffer::pop_ready)) — anything still buffered is
//!   strictly above it, so the released stream is timestamp-monotone,
//! * an event arriving *below* the watermark is **late**: the violation of
//!   the lateness bound is handled by the configured [`LatePolicy`] —
//!   counted and dropped, or admitted for best-effort routing to
//!   still-open windows,
//! * the buffer is **bounded** ([`ReorderConfig::capacity`]): an offer
//!   beyond the cap hands the event back intact, which the engine surfaces
//!   as the existing `PushResult::Full` back-pressure.
//!
//! The structure follows the event-time window managers of dataflow
//! systems (allocate on watermark advance, emit on watermark pass); the
//! lateness handling is a pluggable policy rather than a baked-in
//! constant.
//!
//! [`Splitter::feed`]: crate::splitter::Splitter::feed

use std::collections::BTreeMap;

use spectre_events::Event;

/// What to do with a late event — one whose timestamp is already below the
/// watermark, i.e. the bounded-lateness assumption
/// ([`ReorderConfig::max_delay`]) was violated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LatePolicy {
    /// Count the event ([`ReorderStats::late_dropped`]) and discard it —
    /// the default: downstream output stays exactly the in-order output of
    /// the on-time stream.
    #[default]
    Drop,
    /// Hand the event back for best-effort routing straight to still-open
    /// windows ([`Offer::AdmittedLate`]); the engine feeds it past the
    /// monotonicity check. Windows that already closed stay closed — an
    /// admitted event can only reach windows still accumulating.
    Admit,
}

/// How the watermark advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatermarkPolicy {
    /// Re-derive the watermark as `max_seen_ts − max_delay` every `period`
    /// arrivals (`period = 1` re-evaluates on every event — the tightest,
    /// default cadence; larger periods trade latency for fewer
    /// re-evaluations).
    Periodic {
        /// Arrivals between watermark re-evaluations (must be positive).
        period: u64,
    },
    /// The watermark advances only on explicit punctuation
    /// ([`ReorderBuffer::advance_watermark`] — fed by watermark frames on
    /// the wire, see `spectre_events::codec::encode_watermark`). Without
    /// punctuation nothing is ever released, so a full buffer
    /// back-pressures until the source emits one.
    Punctuated,
}

impl Default for WatermarkPolicy {
    fn default() -> Self {
        WatermarkPolicy::Periodic { period: 1 }
    }
}

/// Configuration of the reorder stage (see
/// [`SpectreConfig::reorder`](crate::SpectreConfig::reorder)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderConfig {
    /// The bounded-lateness assumption, in timestamp ticks: an event may
    /// arrive at most `max_delay` ticks of event time after a
    /// later-stamped event. `0` asserts in-order arrival (any disorder is
    /// late).
    pub max_delay: u64,
    /// Watermark emission cadence.
    pub watermark: WatermarkPolicy,
    /// Policy for events that violate the lateness bound.
    pub late_policy: LatePolicy,
    /// Maximum buffered events; offers beyond it are handed back
    /// ([`Offer::Rejected`]), which the engine surfaces as
    /// `PushResult::Full`.
    pub capacity: usize,
}

impl ReorderConfig {
    /// The standard bounded-lateness configuration: periodic per-event
    /// watermarks at `max_delay` ticks of slack, late events dropped,
    /// a 4096-event buffer.
    pub fn bounded(max_delay: u64) -> Self {
        ReorderConfig {
            max_delay,
            watermark: WatermarkPolicy::default(),
            late_policy: LatePolicy::default(),
            capacity: 4096,
        }
    }

    /// Returns the configuration with the late policy replaced.
    ///
    /// # Example
    ///
    /// ```
    /// use spectre_core::reorder::{LatePolicy, ReorderConfig};
    ///
    /// let admit = ReorderConfig::bounded(64).with_late_policy(LatePolicy::Admit);
    /// assert_eq!(admit.late_policy, LatePolicy::Admit);
    /// assert_eq!(ReorderConfig::bounded(64).late_policy, LatePolicy::Drop);
    /// ```
    #[must_use]
    pub fn with_late_policy(mut self, policy: LatePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    /// Returns the configuration with the watermark policy replaced.
    #[must_use]
    pub fn with_watermark(mut self, policy: WatermarkPolicy) -> Self {
        self.watermark = policy;
        self
    }

    /// Returns the configuration with the buffer capacity replaced.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Validates the configuration, reporting the first violated
    /// constraint as an error.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("reorder buffer capacity must be positive".into());
        }
        if let WatermarkPolicy::Periodic { period } = self.watermark {
            if period == 0 {
                return Err("watermark period must be positive".into());
            }
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero buffer capacity or a zero periodic watermark
    /// period. [`try_validate`](Self::try_validate) is the non-panicking
    /// equivalent.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig::bounded(0)
    }
}

/// Counter deltas accumulated by a [`ReorderBuffer`] since the last
/// [`take_stats`](ReorderBuffer::take_stats); the engine flushes them into
/// the session metrics (aggregate and per-query, see
/// [`MetricsSnapshot`](crate::MetricsSnapshot)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Events that arrived with a timestamp below the maximum already seen
    /// (the disorder the buffer repaired).
    pub reordered: u64,
    /// Late events discarded under [`LatePolicy::Drop`].
    pub late_dropped: u64,
    /// Late events handed through under [`LatePolicy::Admit`].
    pub late_admitted: u64,
    /// Watermark advances (initial emission included).
    pub watermarks: u64,
}

impl ReorderStats {
    /// `true` if every delta is zero.
    pub fn is_empty(&self) -> bool {
        *self == ReorderStats::default()
    }
}

/// Outcome of offering one event to a [`ReorderBuffer`].
#[derive(Debug)]
#[must_use = "AdmittedLate and Rejected hand the event back; dropping them loses it"]
pub enum Offer {
    /// The event was buffered; it will be released once the watermark
    /// passes its timestamp.
    Buffered,
    /// The event is late and [`LatePolicy::Admit`] hands it back for
    /// direct routing to still-open windows.
    AdmittedLate(Event),
    /// The event is late and [`LatePolicy::Drop`] discarded it (counted in
    /// [`ReorderStats::late_dropped`]).
    DroppedLate,
    /// The buffer is at [`ReorderConfig::capacity`]; the event is handed
    /// back intact. Release some events (advance the watermark, or drain
    /// [`pop_ready`](ReorderBuffer::pop_ready)) and retry.
    Rejected(Event),
}

/// The bounded reorder buffer — see the [module docs](self) for the
/// semantics.
///
/// # Example
///
/// ```
/// use spectre_core::reorder::{Offer, ReorderBuffer, ReorderConfig};
/// use spectre_events::{Event, EventType};
///
/// let ev = |seq: u64, ts: u64| Event::builder(EventType::new(0)).seq(seq).ts(ts).build();
/// let mut buf = ReorderBuffer::new(ReorderConfig::bounded(10));
/// assert!(matches!(buf.offer(ev(0, 25)), Offer::Buffered));
/// assert!(matches!(buf.offer(ev(1, 20)), Offer::Buffered)); // within the bound
/// // Watermark = 25 − 10 = 15: nothing is ready yet …
/// assert!(buf.pop_ready().is_none());
/// assert!(matches!(buf.offer(ev(2, 40)), Offer::Buffered));
/// // … now it is 30: the two early events drain, back in timestamp order.
/// assert_eq!(buf.pop_ready().unwrap().ts(), 20);
/// assert_eq!(buf.pop_ready().unwrap().ts(), 25);
/// assert!(buf.pop_ready().is_none());
/// ```
#[derive(Debug)]
pub struct ReorderBuffer {
    config: ReorderConfig,
    /// Buffered events keyed by `(timestamp, arrival)` — the arrival
    /// counter makes duplicate timestamps drain in arrival order.
    buf: BTreeMap<(u64, u64), Event>,
    /// Monotone arrival counter (tie-breaker for duplicate timestamps).
    arrivals: u64,
    /// Arrivals since the last periodic watermark re-evaluation.
    since_eval: u64,
    /// Maximum timestamp seen so far (`None` before the first event).
    max_ts: Option<u64>,
    /// Current watermark (`None` until first emitted — nothing is released
    /// and nothing is late before then).
    watermark: Option<u64>,
    stats: ReorderStats,
}

impl ReorderBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`ReorderConfig::validate`]).
    pub fn new(config: ReorderConfig) -> Self {
        config.validate();
        ReorderBuffer {
            config,
            buf: BTreeMap::new(),
            arrivals: 0,
            since_eval: 0,
            max_ts: None,
            watermark: None,
            stats: ReorderStats::default(),
        }
    }

    /// Number of buffered (not yet released) events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` if the buffer is at its capacity — the next non-late offer
    /// will be [`Offer::Rejected`].
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.config.capacity
    }

    /// The current watermark, or `None` if none was emitted yet.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// The configuration the buffer was built with.
    pub fn config(&self) -> &ReorderConfig {
        &self.config
    }

    /// Offers one event. Late events (timestamp below the watermark) are
    /// resolved by the [`LatePolicy`] without consuming buffer space; a
    /// full buffer hands the event back ([`Offer::Rejected`]).
    pub fn offer(&mut self, event: Event) -> Offer {
        let ts = event.ts();
        if self.watermark.is_some_and(|w| ts < w) {
            return match self.config.late_policy {
                LatePolicy::Drop => {
                    self.stats.late_dropped += 1;
                    Offer::DroppedLate
                }
                LatePolicy::Admit => {
                    self.stats.late_admitted += 1;
                    Offer::AdmittedLate(event)
                }
            };
        }
        if self.is_full() {
            return Offer::Rejected(event);
        }
        if self.max_ts.is_some_and(|m| ts < m) {
            self.stats.reordered += 1;
        } else {
            self.max_ts = Some(ts);
        }
        self.buf.insert((ts, self.arrivals), event);
        self.arrivals += 1;
        if let WatermarkPolicy::Periodic { period } = self.config.watermark {
            self.since_eval += 1;
            if self.since_eval >= period {
                self.since_eval = 0;
                let max = self.max_ts.expect("an event was just offered");
                self.advance_to(max.saturating_sub(self.config.max_delay));
            }
        }
        Offer::Buffered
    }

    /// Punctuated watermark advance: event time has progressed to
    /// `stream_ts`, so the watermark moves to
    /// `stream_ts − max_delay` (if that is ahead of the current one —
    /// watermarks never regress). Works under either policy; periodic
    /// buffers simply treat it as an extra punctuation.
    pub fn advance_watermark(&mut self, stream_ts: u64) {
        self.advance_to(stream_ts.saturating_sub(self.config.max_delay));
    }

    fn advance_to(&mut self, candidate: u64) {
        if self.watermark.is_none_or(|w| candidate > w) {
            self.watermark = Some(candidate);
            self.stats.watermarks += 1;
        }
    }

    /// Releases the next ready event — the buffered event with the
    /// smallest `(timestamp, arrival)` key, provided its timestamp is at
    /// or below the watermark (a watermark *equal* to a buffered timestamp
    /// flushes it: later events are stamped strictly above a passed
    /// watermark under the lateness bound). Returns `None` when nothing is
    /// ready. The released sequence is timestamp-monotone by construction.
    pub fn pop_ready(&mut self) -> Option<Event> {
        let w = self.watermark?;
        let (&key, _) = self.buf.first_key_value()?;
        if key.0 <= w {
            self.buf.remove(&key)
        } else {
            None
        }
    }

    /// End of stream: opens the gate so every buffered event drains
    /// through [`pop_ready`](Self::pop_ready) in `(timestamp, arrival)`
    /// order. Emits nothing by itself — an empty buffer stays empty — and
    /// counts no watermark advance (it is a flush, not an emission).
    pub fn finish(&mut self) {
        self.watermark = Some(u64::MAX);
    }

    /// Takes the counter deltas accumulated since the last call.
    pub fn take_stats(&mut self) -> ReorderStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::EventType;

    fn ev(seq: u64, ts: u64) -> Event {
        Event::builder(EventType::new(0)).seq(seq).ts(ts).build()
    }

    fn drain(buf: &mut ReorderBuffer) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(e) = buf.pop_ready() {
            out.push(e.seq());
        }
        out
    }

    #[test]
    fn in_order_stream_passes_through_with_zero_delay() {
        let mut buf = ReorderBuffer::new(ReorderConfig::bounded(0));
        for seq in 0..10u64 {
            assert!(matches!(buf.offer(ev(seq, seq * 100)), Offer::Buffered));
            // Period-1 watermark == the event's own ts: released at once.
            assert_eq!(drain(&mut buf), vec![seq]);
        }
        let stats = buf.take_stats();
        assert_eq!(stats.reordered, 0);
        assert_eq!(stats.late_dropped, 0);
        assert_eq!(stats.watermarks, 10);
    }

    #[test]
    fn bounded_disorder_is_repaired_in_timestamp_order() {
        let mut buf = ReorderBuffer::new(ReorderConfig::bounded(25));
        // ts order 30, 10, 20, 40 — disorder ≤ 20, within the bound.
        for (seq, ts) in [(0u64, 30u64), (1, 10), (2, 20), (3, 40)] {
            assert!(matches!(buf.offer(ev(seq, ts)), Offer::Buffered));
        }
        buf.finish();
        // Drained back in ts order: 10, 20, 30, 40.
        assert_eq!(drain(&mut buf), vec![1, 2, 0, 3]);
        let stats = buf.take_stats();
        assert_eq!(stats.reordered, 2);
        assert_eq!(stats.late_dropped, 0);
    }

    #[test]
    fn duplicate_timestamps_preserve_arrival_order() {
        let mut buf = ReorderBuffer::new(ReorderConfig::bounded(100));
        for seq in 0..5u64 {
            assert!(matches!(buf.offer(ev(seq, 50)), Offer::Buffered));
        }
        buf.finish();
        assert_eq!(drain(&mut buf), vec![0, 1, 2, 3, 4], "stable for equal ts");
    }

    #[test]
    fn watermark_equal_to_buffered_timestamp_flushes_it() {
        let mut buf = ReorderBuffer::new(
            ReorderConfig::bounded(0).with_watermark(WatermarkPolicy::Punctuated),
        );
        assert!(matches!(buf.offer(ev(0, 42)), Offer::Buffered));
        buf.advance_watermark(41);
        assert!(buf.pop_ready().is_none(), "below the ts: stays buffered");
        buf.advance_watermark(42);
        assert_eq!(drain(&mut buf), vec![0], "equal to the ts: released");
    }

    #[test]
    fn empty_stream_finish_emits_nothing() {
        let mut buf = ReorderBuffer::new(ReorderConfig::bounded(64));
        buf.finish();
        assert!(buf.pop_ready().is_none());
        assert!(buf.is_empty());
        assert!(buf.take_stats().is_empty());
    }

    #[test]
    fn buffer_full_returns_the_rejected_event_intact() {
        let mut buf = ReorderBuffer::new(ReorderConfig::bounded(1_000).with_capacity(2));
        assert!(matches!(buf.offer(ev(0, 100)), Offer::Buffered));
        assert!(matches!(buf.offer(ev(1, 200)), Offer::Buffered));
        let held = ev(2, 150);
        match buf.offer(held.clone()) {
            Offer::Rejected(back) => assert_eq!(back, held),
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(buf.len(), 2, "a rejected offer consumes no space");
        // Releasing makes room again.
        buf.advance_watermark(1_000 + 100);
        assert_eq!(drain(&mut buf), vec![0]);
        assert!(matches!(buf.offer(held), Offer::Buffered));
    }

    #[test]
    fn late_event_is_dropped_and_counted() {
        let mut buf = ReorderBuffer::new(ReorderConfig::bounded(10));
        assert!(matches!(buf.offer(ev(0, 100)), Offer::Buffered));
        // Watermark = 90; ts 50 is below it → late.
        assert!(matches!(buf.offer(ev(1, 50)), Offer::DroppedLate));
        // ts 90 equals the watermark → on time.
        assert!(matches!(buf.offer(ev(2, 90)), Offer::Buffered));
        let stats = buf.take_stats();
        assert_eq!(stats.late_dropped, 1);
        assert_eq!(stats.reordered, 1, "the on-time ts-90 event was disordered");
        buf.finish();
        assert_eq!(drain(&mut buf), vec![2, 0]);
    }

    #[test]
    fn late_event_is_admitted_under_admit_policy() {
        let mut buf =
            ReorderBuffer::new(ReorderConfig::bounded(10).with_late_policy(LatePolicy::Admit));
        assert!(matches!(buf.offer(ev(0, 100)), Offer::Buffered));
        let late = ev(1, 50);
        match buf.offer(late.clone()) {
            Offer::AdmittedLate(back) => assert_eq!(back, late),
            other => panic!("expected AdmittedLate, got {other:?}"),
        }
        assert_eq!(buf.take_stats().late_admitted, 1);
    }

    #[test]
    fn punctuated_buffer_releases_nothing_without_punctuation() {
        let mut buf = ReorderBuffer::new(
            ReorderConfig::bounded(0).with_watermark(WatermarkPolicy::Punctuated),
        );
        for seq in 0..20u64 {
            assert!(matches!(buf.offer(ev(seq, seq)), Offer::Buffered));
        }
        assert!(buf.pop_ready().is_none());
        assert_eq!(buf.watermark(), None);
        buf.advance_watermark(9);
        assert_eq!(drain(&mut buf).len(), 10, "ts 0..=9 released");
        assert_eq!(buf.len(), 10);
        let stats = buf.take_stats();
        assert_eq!(stats.watermarks, 1);
    }

    #[test]
    fn periodic_watermark_respects_the_period() {
        let mut buf = ReorderBuffer::new(
            ReorderConfig::bounded(0).with_watermark(WatermarkPolicy::Periodic { period: 4 }),
        );
        for seq in 0..3u64 {
            assert!(matches!(buf.offer(ev(seq, seq * 10)), Offer::Buffered));
        }
        assert_eq!(buf.watermark(), None, "period not reached");
        assert!(matches!(buf.offer(ev(3, 30)), Offer::Buffered));
        assert_eq!(buf.watermark(), Some(30), "fourth arrival re-evaluates");
        assert_eq!(drain(&mut buf).len(), 4);
    }

    #[test]
    fn watermarks_never_regress() {
        let mut buf = ReorderBuffer::new(
            ReorderConfig::bounded(0).with_watermark(WatermarkPolicy::Punctuated),
        );
        buf.advance_watermark(100);
        buf.advance_watermark(50);
        assert_eq!(buf.watermark(), Some(100));
        assert_eq!(buf.take_stats().watermarks, 1, "the regression was ignored");
    }

    #[test]
    #[should_panic(expected = "reorder buffer capacity must be positive")]
    fn zero_capacity_rejected() {
        ReorderBuffer::new(ReorderConfig::bounded(0).with_capacity(0));
    }

    #[test]
    #[should_panic(expected = "watermark period must be positive")]
    fn zero_period_rejected() {
        ReorderBuffer::new(
            ReorderConfig::bounded(0).with_watermark(WatermarkPolicy::Periodic { period: 0 }),
        );
    }
}
