//! Threaded runtime: one splitter thread plus k operator-instance threads
//! over shared memory — the paper's deployment model (§2.2: "the splitter
//! and operator instances are executed by independent threads running on
//! dedicated CPU cores").
//!
//! The output is identical to the sequential reference engine regardless of
//! thread interleavings; the consistency checks and the final validation at
//! retirement make speculation transparent. Consumption-heavy workloads
//! lean on the lazy dependency tree
//! ([`SpectreConfig::lazy_materialization`], on by default): the splitter
//! thread creates consumption groups in O(1) and clones a completion
//! branch only when it actually schedules it onto an instance, which is
//! what lets million-event speculative streams sustain throughput.

use std::sync::Arc;
use std::time::Duration;

use spectre_events::Event;
use spectre_query::{ComplexEvent, Query};

use crate::config::SpectreConfig;
use crate::engine::SpectreEngine;
use crate::metrics::MetricsSnapshot;

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Complex events in window order.
    pub complex_events: Vec<ComplexEvent>,
    /// Metric counters.
    pub metrics: MetricsSnapshot,
    /// Number of input events, counted by the splitter as it ingests (so
    /// the figure is exact even for sessions whose stream length is
    /// unknown up front).
    pub input_events: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl ThreadedReport {
    /// Measured throughput in events per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.input_events as f64 / secs
        }
    }
}

/// Runs SPECTRE with real threads: the calling thread becomes the splitter,
/// `config.instances` worker threads run operator instances.
///
/// This is the legacy one-shot surface, kept (with an unchanged signature
/// and identical results) as a thin wrapper over an incremental
/// [`SpectreEngine`] session — `builder(query).threaded().build()`, feed
/// everything, `finish()`. New code, and anything that cannot afford to
/// materialize its stream as a `Vec`, should use the session directly
/// (which can also host several queries at once — see
/// `SpectreEngine::multi_builder`; this wrapper is the single-query
/// `QueryId(0)` special case).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::Schema;
/// use spectre_datasets::{NyseConfig, NyseGenerator};
/// use spectre_query::queries;
/// use spectre_core::{run_threaded, SpectreConfig};
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     NyseGenerator::new(NyseConfig::small(500, 1), &mut schema).collect();
/// let query = Arc::new(queries::q1(&mut schema, 2, 100, Default::default()));
/// let report = run_threaded(&query, events, &SpectreConfig::with_instances(2));
/// assert_eq!(report.input_events, 500);
/// ```
pub fn run_threaded(
    query: &Arc<Query>,
    events: Vec<Event>,
    config: &SpectreConfig,
) -> ThreadedReport {
    let report = SpectreEngine::builder(query)
        .config(config.clone())
        .threaded()
        .build()
        .run(events);
    ThreadedReport {
        complex_events: report.complex_events,
        metrics: report.metrics,
        input_events: report.input_events,
        wall: report.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_baselines::run_sequential;
    use spectre_datasets::{NyseConfig, NyseGenerator};
    use spectre_events::Schema;
    use spectre_query::queries::{self, Direction};

    #[test]
    fn threaded_output_matches_sequential() {
        let mut schema = Schema::new();
        let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 13), &mut schema).collect();
        let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
        let expected = run_sequential(&query, &events).complex_events;
        for k in [1usize, 2, 4] {
            let report = run_threaded(&query, events.clone(), &SpectreConfig::with_instances(k));
            assert_eq!(report.complex_events, expected, "k = {k}");
        }
    }

    #[test]
    fn threaded_run_is_repeatable_across_interleavings() {
        let mut schema = Schema::new();
        let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1500, 29), &mut schema).collect();
        let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 300, 60));
        let expected = run_sequential(&query, &events).complex_events;
        // Several runs: thread schedules differ, output must not.
        for _ in 0..3 {
            let report = run_threaded(&query, events.clone(), &SpectreConfig::with_instances(3));
            assert_eq!(report.complex_events, expected);
        }
    }

    #[test]
    fn empty_input_terminates() {
        let mut schema = Schema::new();
        let _ = NyseGenerator::new(NyseConfig::small(1, 1), &mut schema);
        let query = Arc::new(queries::q1(&mut schema, 2, 50, Direction::Rising));
        let report = run_threaded(&query, vec![], &SpectreConfig::with_instances(2));
        assert!(report.complex_events.is_empty());
        assert!(report.throughput() >= 0.0);
    }
}
