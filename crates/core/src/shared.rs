//! State shared between the splitter and the operator instances.
//!
//! The communication structure follows paper §3.3: instances buffer their
//! dependency-tree function calls ([`TreeOp`]) and Markov-model observations
//! ([`StatsBatch`]); the splitter drains and applies them in batches at each
//! maintenance cycle. Scheduling is a set of per-instance slots the splitter
//! writes and instances poll (paper Fig. 8 lines 7–9).
//!
//! Every hot-path structure here moves data in batches: events travel
//! through the sharded [`WindowStore`] in runs (see
//! [`EventBatch`](crate::splitter::EventBatch)), tree ops are flushed with
//! `SegQueue::push_many` / drained with `SegQueue::pop_many` (one lock
//! acquisition per batch), and the `ingested` watermark is published once
//! per batch rather than once per event.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

use crate::cg::{CgCell, CgId};
use crate::config::SpectreConfig;
use crate::metrics::Metrics;
use crate::store::WindowStore;
use crate::version::{VersionState, WvId};

/// Identifies one deployed query within an engine session.
///
/// Ids are allocated densely by the splitter in deployment order and are
/// never reused, so a retired query's id stays invalid for the rest of the
/// session. All cross-thread traffic ([`TreeOp`]s, [`StatsBatch`]es,
/// committed outputs) is tagged with the owning query's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A buffered dependency-tree update from an operator instance
/// (the function calls of paper Fig. 4 / Fig. 8).
#[derive(Debug)]
pub enum TreeOp {
    /// A version created a consumption group
    /// (`consumptionGroupCreated`).
    CgCreated {
        /// The creating version.
        creator: WvId,
        /// The new group.
        cell: Arc<CgCell>,
    },
    /// A consumption group completed or was abandoned
    /// (`consumptionGroupCompleted` / `consumptionGroupAbandoned`).
    CgResolved {
        /// The resolved group.
        cg: CgId,
        /// `true` for completion.
        completed: bool,
    },
    /// A version processed its whole window.
    WvFinished {
        /// The finished version.
        wv: WvId,
    },
    /// A version detected an inconsistency and reset itself; the splitter
    /// must rebuild its dependent subtree and revoke the completions its
    /// discarded processing produced.
    WvRolledBack {
        /// The rolled-back version.
        wv: WvId,
        /// Completed groups of the discarded processing that the rollback
        /// does not carry over (see
        /// [`VersionState::rollback_state`](crate::version::VersionState::rollback_state)).
        revoked: Vec<Arc<CgCell>>,
    },
}

/// A batch of observed `(δ_old, δ_new)` transitions for the Markov model.
#[derive(Debug, Default)]
pub struct StatsBatch {
    /// The transitions.
    pub transitions: Vec<(u32, u32)>,
}

/// Everything splitter and instances share.
#[derive(Debug)]
pub struct SharedState {
    /// The sharded per-window event buffers.
    pub store: WindowStore,
    /// Per-instance scheduling slot.
    pub slots: Vec<Mutex<Option<Arc<VersionState>>>>,
    /// Buffered tree updates (instances → splitter), tagged with the query
    /// whose tree they belong to. Ops for a query retired in the meantime
    /// are dropped as stale when drained.
    pub ops: SegQueue<(QueryId, TreeOp)>,
    /// Buffered Markov observations (instances → splitter), tagged with the
    /// query whose predictor they feed.
    pub stats: SegQueue<(QueryId, StatsBatch)>,
    /// Number of events ingested so far, published once per
    /// [`EventBatch`](crate::splitter::EventBatch) flush. Diagnostics /
    /// monitoring watermark only: instances detect readable events through
    /// the window store's buffers, not this counter.
    pub ingested: AtomicU64,
    /// Set once the input stream is exhausted.
    pub ingest_done: AtomicBool,
    /// Set once all windows retired; instances shut down.
    pub done: AtomicBool,
    /// Shared counters.
    pub metrics: Metrics,
    next_cg: AtomicU64,
    next_wv: AtomicU64,
}

impl SharedState {
    /// Creates shared state for `instances` operator instances with the
    /// default window-store shard count.
    pub fn new(instances: usize) -> Arc<Self> {
        Self::with_shards(instances, SpectreConfig::default().store_shards)
    }

    /// Creates shared state for a configuration (instance count and
    /// window-store shard count).
    pub fn for_config(config: &SpectreConfig) -> Arc<Self> {
        Self::with_shards(config.instances, config.store_shards)
    }

    /// Creates shared state for `instances` operator instances and a
    /// window store with `shards` shards.
    pub fn with_shards(instances: usize, shards: usize) -> Arc<Self> {
        Arc::new(SharedState {
            store: WindowStore::new(shards),
            slots: (0..instances).map(|_| Mutex::new(None)).collect(),
            ops: SegQueue::new(),
            stats: SegQueue::new(),
            ingested: AtomicU64::new(0),
            ingest_done: AtomicBool::new(false),
            done: AtomicBool::new(false),
            metrics: Metrics::new(),
            next_cg: AtomicU64::new(0),
            next_wv: AtomicU64::new(0),
        })
    }

    /// Number of operator instances.
    pub fn instance_count(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a consumption-group id.
    pub fn alloc_cg_id(&self) -> CgId {
        CgId(self.next_cg.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a window-version id.
    pub fn alloc_wv_id(&self) -> WvId {
        WvId(self.next_wv.fetch_add(1, Ordering::Relaxed))
    }

    /// `true` once processing completed.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_allocation_is_unique() {
        let s = SharedState::new(2);
        let a = s.alloc_cg_id();
        let b = s.alloc_cg_id();
        assert_ne!(a, b);
        let x = s.alloc_wv_id();
        let y = s.alloc_wv_id();
        assert_ne!(x, y);
        assert_eq!(s.instance_count(), 2);
    }

    #[test]
    fn for_config_sizes_store_and_slots() {
        let config = SpectreConfig::with_batching(3, 16, 4);
        let s = SharedState::for_config(&config);
        assert_eq!(s.instance_count(), 3);
        assert_eq!(s.store.shard_count(), 4);
    }

    #[test]
    fn ops_queue_is_fifo() {
        let s = SharedState::new(1);
        s.ops.push((QueryId(0), TreeOp::WvFinished { wv: WvId(1) }));
        s.ops.push((QueryId(7), TreeOp::WvFinished { wv: WvId(2) }));
        let (qid, TreeOp::WvFinished { wv }) = s.ops.pop().unwrap() else {
            panic!()
        };
        assert_eq!(qid, QueryId(0));
        assert_eq!(wv, WvId(1));
    }
}
