//! State shared between the splitter and the operator instances.
//!
//! The communication structure follows paper §3.3: instances buffer their
//! dependency-tree function calls ([`TreeOp`]) and Markov-model observations
//! ([`StatsBatch`]); the splitter drains and applies them in batches at each
//! maintenance cycle. Scheduling is a set of per-instance slots the splitter
//! writes and instances poll (paper Fig. 8 lines 7–9).
//!
//! Every hot-path structure here moves data in batches: events travel
//! through the sharded [`WindowStore`] in runs (see
//! [`EventBatch`](crate::splitter::EventBatch)), tree ops are flushed with
//! `SegQueue::push_many` / drained with `SegQueue::pop_many` (one lock
//! acquisition per batch), and the `ingested` watermark is published once
//! per batch rather than once per event.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

use crate::cg::{CgCell, CgId};
use crate::config::SpectreConfig;
use crate::metrics::Metrics;
use crate::store::WindowStore;
use crate::version::{VersionState, WvId};

/// Identifies one deployed query within an engine session.
///
/// Ids are allocated densely by the splitter in deployment order and are
/// never reused, so a retired query's id stays invalid for the rest of the
/// session. All cross-thread traffic ([`TreeOp`]s, [`StatsBatch`]es,
/// committed outputs) is tagged with the owning query's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifies one tenant — an owner of deployed queries — within an
/// engine session.
///
/// Tenancy is a pure policy layer over the shared mechanism (splitter,
/// store, instance pool): every query belongs to exactly one tenant, and
/// the splitter's top-k schedule divides the instance slots and the
/// speculation budget between tenants by their
/// [`TenantQuota`](crate::config::TenantQuota) weights. Sessions that
/// never mention tenants run everything under [`TenantId::DEFAULT`] and
/// behave bit-identically to the pre-tenancy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit owner of queries deployed through the tenant-less
    /// surface (`add_query`, `deploy_query`).
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A buffered dependency-tree update from an operator instance
/// (the function calls of paper Fig. 4 / Fig. 8).
#[derive(Debug)]
pub enum TreeOp {
    /// A version created a consumption group
    /// (`consumptionGroupCreated`).
    CgCreated {
        /// The creating version.
        creator: WvId,
        /// The new group.
        cell: Arc<CgCell>,
    },
    /// A consumption group completed or was abandoned
    /// (`consumptionGroupCompleted` / `consumptionGroupAbandoned`).
    CgResolved {
        /// The resolved group.
        cg: CgId,
        /// `true` for completion.
        completed: bool,
    },
    /// A version processed its whole window.
    WvFinished {
        /// The finished version.
        wv: WvId,
    },
    /// A version detected an inconsistency and reset itself; the splitter
    /// must rebuild its dependent subtree and revoke the completions its
    /// discarded processing produced.
    WvRolledBack {
        /// The rolled-back version.
        wv: WvId,
        /// Completed groups of the discarded processing that the rollback
        /// does not carry over (see
        /// [`VersionState::rollback_state`](crate::version::VersionState::rollback_state)).
        revoked: Vec<Arc<CgCell>>,
    },
}

/// A batch of observed `(δ_old, δ_new)` transitions for the Markov model.
#[derive(Debug, Default)]
pub struct StatsBatch {
    /// The transitions.
    pub transitions: Vec<(u32, u32)>,
}

/// One instance's scheduling slot with seq-numbered publication.
///
/// The splitter [`publish`](SlotCell::publish)es assignments rarely (only
/// when the top-k schedule actually moves a version), while every instance
/// step starts by checking its slot. The sequence number makes the common
/// unchanged case lock-free: [`observe`](SlotCell::observe) compares one
/// atomic against the caller's cached value and touches the mutex only when
/// a new assignment was published, so a polling instance no longer bounces
/// the slot's lock line against the splitter's scheduling pass.
#[derive(Debug, Default)]
pub struct SlotCell {
    seq: AtomicU64,
    value: Mutex<Option<Arc<VersionState>>>,
}

impl SlotCell {
    /// Publishes a new assignment and bumps the publication sequence.
    pub fn publish(&self, v: Option<Arc<VersionState>>) {
        let mut guard = self.value.lock();
        *guard = v;
        // Bumped under the lock, so an observer that wins the lock after
        // seeing the new sequence is guaranteed to read the new value.
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Checks for a publication newer than `last_seen`.
    ///
    /// Returns `None` without locking when nothing was published since the
    /// caller's previous observation (the per-step common case). Otherwise
    /// advances `last_seen` and returns the current assignment — possibly
    /// `Some(None)` when the slot was cleared.
    pub fn observe(&self, last_seen: &mut u64) -> Option<Option<Arc<VersionState>>> {
        if self.seq.load(Ordering::Acquire) == *last_seen {
            return None;
        }
        let guard = self.value.lock();
        *last_seen = self.seq.load(Ordering::Acquire);
        Some(guard.clone())
    }

    /// Clones the current assignment (test/diagnostic path; takes the lock).
    pub fn load(&self) -> Option<Arc<VersionState>> {
        self.value.lock().clone()
    }
}

/// Everything splitter and instances share.
#[derive(Debug)]
pub struct SharedState {
    /// The sharded per-window event buffers.
    pub store: WindowStore,
    /// Per-instance scheduling slot.
    pub slots: Vec<SlotCell>,
    /// Buffered tree updates (instances → splitter), tagged with the query
    /// whose tree they belong to. Ops for a query retired in the meantime
    /// are dropped as stale when drained.
    pub ops: SegQueue<(QueryId, TreeOp)>,
    /// Buffered Markov observations (instances → splitter), tagged with the
    /// query whose predictor they feed.
    pub stats: SegQueue<(QueryId, StatsBatch)>,
    /// Number of events ingested so far, published once per
    /// [`EventBatch`](crate::splitter::EventBatch) flush. Diagnostics /
    /// monitoring watermark only: instances detect readable events through
    /// the window store's buffers, not this counter.
    pub ingested: AtomicU64,
    /// Set once the input stream is exhausted.
    pub ingest_done: AtomicBool,
    /// Set once all windows retired; instances shut down.
    pub done: AtomicBool,
    /// Shared counters (built with one per-worker block per instance, so
    /// the instance-hot counters stay off shared cache lines).
    pub metrics: Metrics,
    next_cg: AtomicU64,
    next_wv: AtomicU64,
    /// Worker thread handles, registered by each threaded worker on entry
    /// (`None` for simulated instances, which never park).
    worker_threads: Mutex<Vec<Option<Thread>>>,
    /// How many workers are currently inside `park_timeout`. Lets
    /// [`unpark_workers`](Self::unpark_workers) skip the registry lock in
    /// the nobody-parked common case.
    parked: AtomicUsize,
}

impl SharedState {
    /// Creates shared state for `instances` operator instances with the
    /// default window-store shard count.
    pub fn new(instances: usize) -> Arc<Self> {
        Self::with_shards(instances, SpectreConfig::default().store_shards)
    }

    /// Creates shared state for a configuration (instance count and
    /// window-store shard count).
    pub fn for_config(config: &SpectreConfig) -> Arc<Self> {
        Self::with_shards(config.instances, config.store_shards)
    }

    /// Creates shared state for `instances` operator instances and a
    /// window store with `shards` shards.
    pub fn with_shards(instances: usize, shards: usize) -> Arc<Self> {
        Arc::new(SharedState {
            store: WindowStore::new(shards),
            slots: (0..instances).map(|_| SlotCell::default()).collect(),
            ops: SegQueue::new(),
            stats: SegQueue::new(),
            ingested: AtomicU64::new(0),
            ingest_done: AtomicBool::new(false),
            done: AtomicBool::new(false),
            metrics: Metrics::with_workers(instances),
            next_cg: AtomicU64::new(0),
            next_wv: AtomicU64::new(0),
            worker_threads: Mutex::new((0..instances).map(|_| None).collect()),
            parked: AtomicUsize::new(0),
        })
    }

    /// Number of operator instances.
    pub fn instance_count(&self) -> usize {
        self.slots.len()
    }

    /// Registers the calling thread as worker `index`, making it reachable
    /// by [`unpark_workers`](Self::unpark_workers). Threaded workers call
    /// this on entry; simulated instances never do.
    pub fn register_worker(&self, index: usize) {
        let mut threads = self.worker_threads.lock();
        if index < threads.len() {
            threads[index] = Some(std::thread::current());
        }
    }

    /// Brackets one `park_timeout` in the parked-worker count. The caller
    /// must re-check its wake conditions *after* incrementing and before
    /// parking; together with the bounded timeout that makes a missed
    /// unpark cost at most one timeout, never a hang.
    pub fn note_parked(&self) {
        self.parked.fetch_add(1, Ordering::SeqCst);
    }

    /// See [`note_parked`](Self::note_parked).
    pub fn note_unparked(&self) {
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes every parked worker. Cheap when nobody is parked (one atomic
    /// load); otherwise unparks all registered worker threads — unpark
    /// tokens are sticky, so racing with a worker about to park is safe.
    pub fn unpark_workers(&self) {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let threads = self.worker_threads.lock();
        for t in threads.iter().flatten() {
            t.unpark();
        }
    }

    /// Allocates a consumption-group id.
    pub fn alloc_cg_id(&self) -> CgId {
        CgId(self.next_cg.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a window-version id.
    pub fn alloc_wv_id(&self) -> WvId {
        WvId(self.next_wv.fetch_add(1, Ordering::Relaxed))
    }

    /// `true` once processing completed.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_allocation_is_unique() {
        let s = SharedState::new(2);
        let a = s.alloc_cg_id();
        let b = s.alloc_cg_id();
        assert_ne!(a, b);
        let x = s.alloc_wv_id();
        let y = s.alloc_wv_id();
        assert_ne!(x, y);
        assert_eq!(s.instance_count(), 2);
    }

    #[test]
    fn for_config_sizes_store_and_slots() {
        let config = SpectreConfig::with_batching(3, 16, 4);
        let s = SharedState::for_config(&config);
        assert_eq!(s.instance_count(), 3);
        assert_eq!(s.store.shard_count(), 4);
    }

    #[test]
    fn slot_observation_is_seq_gated() {
        let cell = SlotCell::default();
        let mut seen = cell.seq.load(Ordering::Relaxed);
        // Nothing published yet: the lock-free fast path reports no change.
        assert!(cell.observe(&mut seen).is_none());
        cell.publish(None);
        // A publication (even of "no assignment") is observed exactly once.
        assert!(matches!(cell.observe(&mut seen), Some(None)));
        assert!(cell.observe(&mut seen).is_none());
        // A second observer with its own cursor still sees it.
        let mut other = 0;
        assert!(matches!(cell.observe(&mut other), Some(None)));
    }

    #[test]
    fn unpark_workers_without_parked_workers_is_a_noop() {
        let s = SharedState::new(2);
        s.unpark_workers(); // fast path: nobody parked, no registry access
        s.register_worker(0);
        s.note_parked();
        s.unpark_workers(); // slow path: delivers a (sticky) unpark token
        s.note_unparked();
        std::thread::park_timeout(std::time::Duration::from_secs(5));
        // The token from unpark_workers makes the park return immediately;
        // reaching this line (well before the 5 s timeout) is the assertion.
    }

    #[test]
    fn ops_queue_is_fifo() {
        let s = SharedState::new(1);
        s.ops.push((QueryId(0), TreeOp::WvFinished { wv: WvId(1) }));
        s.ops.push((QueryId(7), TreeOp::WvFinished { wv: WvId(2) }));
        let (qid, TreeOp::WvFinished { wv }) = s.ops.pop().unwrap() else {
            panic!()
        };
        assert_eq!(qid, QueryId(0));
        assert_eq!(wv, WvId(1));
    }
}
