//! Deterministic multicore simulation runtime.
//!
//! The paper evaluates SPECTRE on a 2×10-core machine; this reproduction
//! targets the same *figures* on arbitrary hardware by executing the real
//! splitter and instance logic under a virtual-time scheduler: per round,
//! the splitter runs one maintenance cycle (every
//! [`SpectreConfig::sched_period`] rounds) and each of the k operator
//! instances performs at most one step — one batch of up to
//! [`SpectreConfig::batch_size`] events (set `batch_size: 1` for the
//! original one-event-per-round model). A round therefore models the time
//! slice in which one instance handles one batch, and
//!
//! ```text
//! throughput(k) = input_events / rounds × per_instance_event_rate
//! ```
//!
//! Speculation waste — rounds spent on window versions that are later
//! dropped — and scheduling breadth/depth are exactly the effects the
//! paper's scalability curves measure (§4.2.1), and they are captured
//! faithfully because the *same* tree, predictor, scheduler and consistency
//! machinery run underneath. Everything is single-threaded and seeded-free,
//! so runs are bit-for-bit reproducible. Lazy branch materialization
//! ([`SpectreConfig::lazy_materialization`]) happens inside the splitter's
//! maintenance cycle, so the virtual-time model is unchanged; the
//! `versions_materialized` / `lazy_versions_dropped` counters in the
//! report expose how much cloning the predictor's ranking avoided.

use std::sync::Arc;
use std::time::Duration;

use spectre_events::Event;
use spectre_query::{ComplexEvent, Query};

use crate::config::SpectreConfig;
use crate::engine::SpectreEngine;
use crate::metrics::MetricsSnapshot;

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Complex events in window order (identical to the sequential
    /// reference output).
    pub complex_events: Vec<ComplexEvent>,
    /// Metric counters.
    pub metrics: MetricsSnapshot,
    /// Virtual rounds until completion.
    pub rounds: u64,
    /// Number of input events, counted by the splitter as it ingests.
    pub input_events: u64,
    /// Wall-clock time spent inside splitter maintenance cycles (basis of
    /// the Fig. 10(c) scheduling-frequency measurement).
    pub splitter_wall: Duration,
    /// Total wall-clock time of the run.
    pub total_wall: Duration,
}

impl SimReport {
    /// Virtual throughput in events/second, calibrated by the rate at which
    /// one operator instance processes events (the paper's Q1 baseline is
    /// ≈10,800 events/s at one instance).
    ///
    /// The calibration assumes one event per instance per round, i.e.
    /// `batch_size: 1` — a batched round handles up to `batch_size` events
    /// and would inflate this number by that factor (the `spectre-bench`
    /// figure harness pins the batch size accordingly).
    pub fn throughput(&self, per_instance_event_rate: f64) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.input_events as f64 / self.rounds as f64 * per_instance_event_rate
    }

    /// Real scheduling cycles per second of splitter wall time
    /// (paper Fig. 10(c)).
    pub fn scheduling_cycles_per_sec(&self) -> f64 {
        let secs = self.splitter_wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.metrics.sched_cycles as f64 / secs
        }
    }
}

/// Runs SPECTRE over a finite stream under the virtual-time scheduler.
///
/// This is the legacy one-shot surface, kept (with an unchanged signature
/// and identical results) as a thin wrapper over an incremental
/// [`SpectreEngine`] session — `builder(query).simulated().build()`, feed
/// everything, `finish()`. New code, and anything that cannot afford to
/// materialize its stream as a `Vec`, should use the session directly
/// (which can also host several queries at once — see
/// `SpectreEngine::multi_builder`; this wrapper is the single-query
/// `QueryId(0)` special case).
///
/// # Panics
///
/// Panics if the run exceeds `200 × events + 1_000_000` rounds — a
/// liveness guard; a correct configuration always terminates far below it.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::Schema;
/// use spectre_datasets::{NyseConfig, NyseGenerator};
/// use spectre_query::queries;
/// use spectre_core::{run_simulated, SpectreConfig};
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     NyseGenerator::new(NyseConfig::small(500, 1), &mut schema).collect();
/// let query = Arc::new(queries::q1(&mut schema, 2, 100, Default::default()));
/// let report = run_simulated(&query, events, &SpectreConfig::with_instances(4));
/// assert!(report.rounds > 0);
/// ```
pub fn run_simulated(query: &Arc<Query>, events: Vec<Event>, config: &SpectreConfig) -> SimReport {
    let report = SpectreEngine::builder(query)
        .config(config.clone())
        .simulated()
        .build()
        .run(events);
    SimReport {
        complex_events: report.complex_events,
        metrics: report.metrics,
        rounds: report.rounds.expect("simulated sessions report rounds"),
        input_events: report.input_events,
        splitter_wall: report
            .splitter_wall
            .expect("simulated sessions report splitter wall time"),
        total_wall: report.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorKind;
    use spectre_baselines::run_sequential;
    use spectre_datasets::{NyseConfig, NyseGenerator, RandConfig, RandGenerator};
    use spectre_events::Schema;
    use spectre_query::queries::{self, Direction};

    fn nyse(events: usize, seed: u64) -> (Schema, Vec<Event>) {
        let mut schema = Schema::new();
        let ev: Vec<_> = NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
        (schema, ev)
    }

    #[test]
    fn q1_output_matches_sequential_for_all_k() {
        let (mut schema, events) = nyse(2000, 11);
        let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
        let expected = run_sequential(&query, &events).complex_events;
        assert!(!expected.is_empty(), "fixture must produce matches");
        for k in [1usize, 2, 4, 8] {
            let report = run_simulated(&query, events.clone(), &SpectreConfig::with_instances(k));
            assert_eq!(report.complex_events, expected, "k = {k}");
            assert!(report.metrics.windows_retired > 0);
        }
    }

    #[test]
    fn q2_output_matches_sequential() {
        let (mut schema, events) = nyse(3000, 5);
        let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 300, 50));
        let expected = run_sequential(&query, &events).complex_events;
        let report = run_simulated(&query, events, &SpectreConfig::with_instances(4));
        assert_eq!(report.complex_events, expected);
    }

    #[test]
    fn q3_output_matches_sequential() {
        let mut schema = Schema::new();
        let gen = RandGenerator::new(RandConfig::small(2000, 9), &mut schema);
        let symbols = gen.symbols().to_vec();
        let events: Vec<_> = gen.collect();
        let query = Arc::new(queries::q3(
            &mut schema,
            symbols[0],
            &symbols[1..4],
            200,
            40,
        ));
        let expected = run_sequential(&query, &events).complex_events;
        let report = run_simulated(&query, events, &SpectreConfig::with_instances(8));
        assert_eq!(report.complex_events, expected);
    }

    #[test]
    fn qe_output_matches_sequential() {
        let mut schema = Schema::new();
        let cfg = RandConfig {
            symbols: 2,
            leaders: 0,
            events: 1500,
            seed: 3,
            price: (1.0, 10.0),
            tick_ms: 1000,
        };
        let events: Vec<_> = RandGenerator::new(cfg, &mut schema).collect();
        let vocab = queries::StockVocab::install(&mut schema);
        let sym_a = schema.lookup_symbol("RND000").unwrap();
        let sym_b = schema.lookup_symbol("RND001").unwrap();
        let pattern = spectre_query::Pattern::builder()
            .one("A", vocab.symbol_is(sym_a))
            .one("B", vocab.symbol_is(sym_b))
            .build()
            .unwrap();
        let query = Arc::new(
            Query::builder("QE")
                .pattern(pattern)
                .window(
                    spectre_query::WindowSpec::on_match_time(
                        Some(vocab.quote),
                        vocab.symbol_is(sym_a),
                        30_000,
                    )
                    .unwrap(),
                )
                .selection(spectre_query::SelectionPolicy::EachLast)
                .consumption(spectre_query::ConsumptionPolicy::Selected(vec!["B".into()]))
                .build()
                .unwrap(),
        );
        let expected = run_sequential(&query, &events).complex_events;
        let report = run_simulated(&query, events, &SpectreConfig::with_instances(4));
        assert_eq!(report.complex_events, expected);
    }

    #[test]
    fn fixed_predictor_also_produces_correct_output() {
        let (mut schema, events) = nyse(1500, 21);
        let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
        let expected = run_sequential(&query, &events).complex_events;
        for p in [0.0, 0.5, 1.0] {
            let config = SpectreConfig {
                instances: 4,
                predictor: PredictorKind::Fixed(p),
                ..Default::default()
            };
            let report = run_simulated(&query, events.clone(), &config);
            assert_eq!(report.complex_events, expected, "p = {p}");
        }
    }

    #[test]
    fn more_instances_do_not_slow_down_high_completion_workloads() {
        // All quotes rising → every partial match completes (probability 1):
        // speculation always picks the right branch and scaling is near
        // linear (paper §4.2.1, ratio 0.005 case).
        let mut schema = Schema::new();
        let config = NyseConfig {
            symbols: 20,
            leaders: 4,
            events: 3000,
            drift: 1.0, // strongly positive: always rising
            volatility: 0.0,
            ..NyseConfig::default()
        };
        let events: Vec<_> = NyseGenerator::new(config, &mut schema).collect();
        let query = Arc::new(queries::q1(&mut schema, 4, 100, Direction::Rising));
        let r1 = run_simulated(&query, events.clone(), &SpectreConfig::with_instances(1));
        let r8 = run_simulated(&query, events.clone(), &SpectreConfig::with_instances(8));
        assert_eq!(r1.complex_events, r8.complex_events);
        assert!(
            r8.rounds * 2 < r1.rounds,
            "8 instances should be much faster: {} vs {}",
            r8.rounds,
            r1.rounds
        );
    }

    #[test]
    fn report_accessors() {
        let (mut schema, events) = nyse(500, 2);
        let query = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
        let report = run_simulated(&query, events, &SpectreConfig::with_instances(2));
        assert_eq!(report.input_events, 500);
        assert!(report.throughput(10_800.0) > 0.0);
        assert!(report.scheduling_cycles_per_sec() >= 0.0);
        assert!(report.metrics.sched_cycles > 0);
    }

    use spectre_query::Query;
}
