//! The splitter: ingestion, dependency-tree maintenance, completion-
//! probability prediction, top-k selection and scheduling (paper §3.2).
//!
//! One maintenance cycle performs, in order (paper §4.2.1's "cycle"):
//! (a) apply all buffered dependency-tree updates from the instances
//! (drained in one batch), (b) feed the Markov model, (c) ingest input
//! events in [`EventBatch`] units (opening and closing windows, flushing
//! each batch to the window store with one write per touched window),
//! (d) retire finished, confirmed root versions — emitting their buffered
//! complex events in window order — and (e) select and schedule the top-k
//! window versions.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use spectre_events::Event;
use spectre_query::window::{WindowAssigner, WindowBounds};
use spectre_query::{ComplexEvent, Query, WindowClose};

use crate::cg::{CgCell, CgId};
use crate::config::{PredictorKind, SpectreConfig};
use crate::predictor::{CompletionPredictor, FixedPredictor, MarkovPredictor};
use crate::shared::{SharedState, TreeOp};
use crate::store::WindowInfo;
use crate::tree::{DependencyTree, VersionFactory};
use crate::version::{VersionState, WvId};

/// One splitter→store hand-off unit: a run of consecutive stream events
/// starting at stream position [`first_pos`](Self::first_pos).
///
/// The splitter accumulates up to
/// [`SpectreConfig::batch_size`](crate::SpectreConfig::batch_size) events
/// per batch, wraps the batch in *one* `Arc`, and hands each window its
/// slice of it with a single
/// [`WindowStore::extend`](crate::store::WindowStore::extend) call — so
/// allocation, reference-count and lock traffic all scale with batches,
/// not events, and overlapping windows share the event payloads through
/// the batch. A batch size of 1 reproduces the original event-at-a-time
/// hand-off exactly.
///
/// # Example
///
/// ```
/// use spectre_core::splitter::EventBatch;
/// use spectre_events::{Event, EventType};
///
/// let mut batch = EventBatch::with_capacity(100, 64);
/// for seq in 100..104 {
///     batch.push(Event::builder(EventType::new(0)).seq(seq).ts(seq).build());
/// }
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.first_pos(), 100);
/// // A window that opened at the batch's third event owns the slice
/// // from index 2 on:
/// assert_eq!(batch.events()[2..].len(), 2);
/// assert_eq!(batch.events()[2].seq(), 102);
/// ```
#[derive(Debug, Default)]
pub struct EventBatch {
    first_pos: u64,
    events: Vec<Event>,
}

impl EventBatch {
    /// Creates an empty batch starting at stream position `first_pos` with
    /// room for `cap` events.
    pub fn with_capacity(first_pos: u64, cap: usize) -> Self {
        EventBatch {
            first_pos,
            events: Vec::with_capacity(cap),
        }
    }

    /// Appends the next event (stream position `first_pos() + len()`).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Stream position of the batch's first event.
    pub fn first_pos(&self) -> u64 {
        self.first_pos
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events accumulated so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// A not-yet-closed window together with the batch-relative index of the
/// first batch event belonging to it.
struct OpenWindow {
    info: Arc<WindowInfo>,
    pending: usize,
}

/// Why [`Splitter::fill_batch`] stopped collecting events.
enum FillOutcome {
    /// The batch reached its size cap.
    Full,
    /// Speculative back-pressure: the dependency tree is oversized and the
    /// root window is fully ingested; stop ingesting for this cycle.
    BackPressure,
    /// The feed queue is empty but end-of-stream has not been signalled;
    /// stop ingesting until the session feeds more events.
    SourceDry,
    /// The feed queue is empty and [`Splitter::end_of_stream`] was called.
    SourceExhausted,
}

/// The splitter's state; driven by [`cycle`](Splitter::cycle).
///
/// The splitter is *feed-driven*: it owns no input iterator. A session
/// (normally [`SpectreEngine`](crate::SpectreEngine)) pushes events into
/// the feed queue with [`feed`](Self::feed) and signals the end of the
/// stream explicitly with [`end_of_stream`](Self::end_of_stream); each
/// [`cycle`](Self::cycle) then ingests from the queue under the usual
/// per-cycle budget and speculative back-pressure. A queue that runs dry
/// mid-stream simply pauses ingestion — maintenance, retirement and
/// scheduling keep running — until more events arrive.
pub struct Splitter {
    config: SpectreConfig,
    query: Arc<Query>,
    shared: Arc<SharedState>,
    /// Events fed by the session, not yet ingested.
    feed: VecDeque<Event>,
    /// `true` once the session signalled end-of-stream.
    eos: bool,
    assigner: WindowAssigner,
    tree: DependencyTree,
    predictor: Box<dyn CompletionPredictor>,
    /// Live (unretired) windows, oldest first.
    live: VecDeque<Arc<WindowInfo>>,
    /// Not-yet-closed windows (a suffix of `live`), with per-batch flush
    /// bookkeeping. Mirrors the assigner's open set.
    open_windows: Vec<OpenWindow>,
    /// The in-flight hand-off batch (sealed into an `Arc` at flush).
    batch: EventBatch,
    /// Windows closed while the current batch was filling, with the
    /// batch-relative ranges they own (distributed at flush).
    batch_closed: Vec<(u64, std::ops::Range<usize>)>,
    /// Reusable buffer for per-event window closes.
    closed_buf: Vec<WindowBounds>,
    /// Reusable buffer for draining the shared op queue.
    ops_scratch: Vec<TreeOp>,
    /// Next stream position to assign (= events ingested so far).
    next_pos: u64,
    /// Versions whose `WvFinished` op has been applied. Retirement requires
    /// the ack: the op queue is FIFO and an instance pushes all of a
    /// version's consumption-group ops *before* its `WvFinished`, so the ack
    /// guarantees the dependency tree reflects every group the version
    /// created or resolved. Retiring on the atomic `is_finished` flag alone
    /// races with those queued ops (they would be dropped as stale and
    /// dependent windows would never suppress the consumed events).
    finished_acked: HashSet<WvId>,
    /// Running average window length (events), for the prediction input `n`.
    avg_window_size: f64,
    closed_windows: u64,
    outputs: Vec<ComplexEvent>,
    ingest_done: bool,
    progress: bool,
}

impl Splitter {
    /// Creates a splitter with an empty feed queue.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the query allows more than
    /// one concurrently active partial match. The speculative runtime keeps
    /// one open consumption group per window version at a time (the paper's
    /// evaluation setting, §4.2); a version's groups resolve strictly in
    /// creation order, which the dependency-tree chain construction relies
    /// on. Queries with `max_active > 1` run on the sequential engines.
    pub fn new(query: Arc<Query>, config: SpectreConfig, shared: Arc<SharedState>) -> Self {
        config.validate();
        assert_eq!(
            query.max_active(),
            1,
            "the speculative runtime requires max_active = 1"
        );
        let predictor: Box<dyn CompletionPredictor> = match &config.predictor {
            PredictorKind::Markov(mc) => Box::new(MarkovPredictor::new(
                query.pattern().max_delta(),
                mc.clone(),
            )),
            PredictorKind::Fixed(p) => Box::new(FixedPredictor::new(*p)),
        };
        // Warm-up window-size estimate, used by the prediction input
        // `events_left` until the first window closes: exact for count
        // windows; for time windows the duration in ticks stands in for
        // the event count (the generators emit ~1 event per tick) — a
        // spec-derived estimate instead of an arbitrary constant, so the
        // first-cycle predictions are not fed a wildly wrong horizon.
        let avg_window_size = match query.window().close() {
            WindowClose::Count(ws) => (ws as f64).max(1.0),
            WindowClose::Time(duration) => (duration as f64).max(1.0),
        };
        let assigner = WindowAssigner::new(query.window().clone());
        let batch = EventBatch::with_capacity(0, config.batch_size);
        let tree = DependencyTree::with_modes(config.lazy_materialization, config.lazy_attach);
        Splitter {
            config,
            query,
            shared,
            feed: VecDeque::new(),
            eos: false,
            assigner,
            tree,
            predictor,
            live: VecDeque::new(),
            open_windows: Vec::new(),
            batch,
            batch_closed: Vec::new(),
            closed_buf: Vec::new(),
            ops_scratch: Vec::new(),
            next_pos: 0,
            finished_acked: HashSet::new(),
            avg_window_size,
            closed_windows: 0,
            outputs: Vec::new(),
            ingest_done: false,
            progress: false,
        }
    }

    /// Queues one event for ingestion. The event is not touched until a
    /// [`cycle`](Self::cycle) ingests it under the per-cycle budget and the
    /// speculative back-pressure bound.
    ///
    /// # Panics
    ///
    /// Panics if [`end_of_stream`](Self::end_of_stream) was already called.
    pub fn feed(&mut self, event: Event) {
        assert!(!self.eos, "event fed after end_of_stream");
        self.feed.push_back(event);
    }

    /// Signals that no further events will be fed. Idempotent. Once the
    /// feed queue drains, the next cycle closes the remaining windows and
    /// the run winds down to completion.
    pub fn end_of_stream(&mut self) {
        self.eos = true;
    }

    /// Number of fed events not yet ingested.
    pub fn feed_len(&self) -> usize {
        self.feed.len()
    }

    /// Number of events ingested from the feed so far (the stream position
    /// of the next event). This is the authoritative input count: under
    /// streaming the total length is unknown up front, so reports take it
    /// from here at end of run.
    pub fn events_ingested(&self) -> u64 {
        self.next_pos
    }

    /// Complex events emitted so far (window order, detection order within a
    /// window).
    pub fn outputs(&self) -> &[ComplexEvent] {
        &self.outputs
    }

    /// Takes the complex events committed since the last call (window
    /// order, detection order within a window) — the incremental output
    /// path of the engine session.
    pub fn take_outputs(&mut self) -> Vec<ComplexEvent> {
        std::mem::take(&mut self.outputs)
    }

    /// Consumes the splitter, returning all emitted (undrained) complex
    /// events.
    pub fn into_outputs(self) -> Vec<ComplexEvent> {
        self.outputs
    }

    /// `true` if the last [`cycle`](Self::cycle) applied an op, ingested an
    /// event or retired a window. Threaded drivers yield when a cycle made
    /// no progress so operator instances are not starved of CPU time.
    pub fn made_progress(&self) -> bool {
        self.progress
    }

    /// Current dependency-tree size in window versions.
    pub fn tree_versions(&self) -> usize {
        self.tree.version_count()
    }

    /// One maintenance + scheduling cycle. Returns `true` once all input is
    /// ingested and every window retired (the shared `done` flag is set).
    pub fn cycle(&mut self) -> bool {
        self.progress = false;
        self.apply_ops();
        self.apply_stats();
        self.ingest();
        self.retire();
        self.schedule();
        let (materialized, lazy_dropped) = self.tree.take_lazy_stats();
        let metrics = &self.shared.metrics;
        if materialized > 0 {
            metrics
                .versions_materialized
                .fetch_add(materialized, Ordering::Relaxed);
        }
        if lazy_dropped > 0 {
            metrics
                .lazy_versions_dropped
                .fetch_add(lazy_dropped, Ordering::Relaxed);
        }
        metrics.sched_cycles.fetch_add(1, Ordering::Relaxed);
        metrics.observe_tree_size(self.tree.version_count() as u64);
        if self.ingest_done && self.tree.is_empty() {
            self.shared.done.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    fn factory(&self) -> SplitterFactory {
        SplitterFactory {
            shared: Arc::clone(&self.shared),
            query: Arc::clone(&self.query),
            acked_clones: Vec::new(),
        }
    }

    /// Merges the factory's side effects back into the splitter (clones of
    /// already-finished versions count as acked: their source's ops were
    /// applied before the copy, and the clone itself never runs).
    fn absorb(&mut self, factory: SplitterFactory) {
        self.finished_acked.extend(factory.acked_clones);
    }

    fn apply_ops(&mut self) {
        // One lock acquisition drains everything queued up to this point;
        // ops pushed while we process land in the next cycle's drain.
        let mut ops = std::mem::take(&mut self.ops_scratch);
        self.shared.ops.pop_many(&mut ops, usize::MAX);
        let mut factory = self.factory();
        for op in ops.drain(..) {
            self.progress = true;
            match op {
                TreeOp::CgCreated { creator, cell } => {
                    self.tree.cg_created(creator, cell, &mut factory);
                }
                TreeOp::CgResolved { cg, completed } => {
                    let dropped = self.tree.cg_resolved(cg, completed, &mut factory);
                    self.shared
                        .metrics
                        .versions_dropped
                        .fetch_add(dropped as u64, Ordering::Relaxed);
                }
                TreeOp::WvFinished { wv } => {
                    self.finished_acked.insert(wv);
                }
                TreeOp::WvRolledBack { wv, revoked } => {
                    // The version restarted; a previous finish ack is void.
                    self.finished_acked.remove(&wv);
                    if let Some(version) = self.tree.version(wv) {
                        let window_id = version.window().id;
                        // Completions surviving the rollback (the restored
                        // checkpoint's, if one was restored; empty
                        // otherwise) stay facts for the rebuilt dependents.
                        let carried = version.lock().completed_cells.clone();
                        let newer: Vec<Arc<WindowInfo>> = self
                            .live
                            .iter()
                            .filter(|w| w.id > window_id)
                            .cloned()
                            .collect();
                        let dropped = self
                            .tree
                            .rollback_rebuild(wv, &newer, carried, &mut factory);
                        self.shared
                            .metrics
                            .versions_dropped
                            .fetch_add(dropped as u64, Ordering::Relaxed);
                    }
                    // Even when the version itself is already gone (stale
                    // op), its discarded completions may survive in state
                    // copies under other branches; revoke them.
                    self.revoke(&revoked, &mut factory);
                }
            }
        }
        self.absorb(factory);
        self.ops_scratch = ops;
    }

    /// Revokes void consumption-group completions tree-wide (see
    /// [`DependencyTree::revoke_completions`]). Completions of already-
    /// retired windows are confirmed by the final validation and are never
    /// revoked.
    fn revoke(&mut self, revoked: &[Arc<CgCell>], factory: &mut SplitterFactory) {
        if revoked.is_empty() {
            return;
        }
        let Some(oldest_live) = self.live.front().map(|w| w.id) else {
            return;
        };
        let revocable: Vec<Arc<CgCell>> = revoked
            .iter()
            .filter(|c| c.window_id() >= oldest_live)
            .cloned()
            .collect();
        if revocable.is_empty() {
            return;
        }
        let live = &self.live;
        let newer = |window_id: u64| -> Vec<Arc<WindowInfo>> {
            live.iter().filter(|w| w.id > window_id).cloned().collect()
        };
        let dropped = self.tree.revoke_completions(&revocable, &newer, factory);
        if dropped > 0 {
            self.shared
                .metrics
                .versions_dropped
                .fetch_add(dropped as u64, Ordering::Relaxed);
            // Acks of replaced versions are dead.
            let tree = &self.tree;
            self.finished_acked.retain(|id| tree.version(*id).is_some());
        }
    }

    fn apply_stats(&mut self) {
        while let Some(batch) = self.shared.stats.pop() {
            self.predictor.observe_batch(&batch.transitions);
        }
        let started = std::time::Instant::now();
        if self.predictor.refresh() {
            let metrics = &self.shared.metrics;
            metrics.predictor_refreshes.fetch_add(1, Ordering::Relaxed);
            metrics
                .predictor_refresh_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    fn ingest(&mut self) {
        if self.ingest_done {
            return;
        }
        let mut budget = self.config.ingest_per_cycle;
        while budget > 0 {
            let cap = budget.min(self.config.batch_size);
            let outcome = self.fill_batch(cap);
            budget -= self.batch.len();
            self.flush_batch();
            match outcome {
                FillOutcome::Full => {}
                FillOutcome::BackPressure | FillOutcome::SourceDry => return,
                FillOutcome::SourceExhausted => {
                    self.finish_ingest();
                    return;
                }
            }
        }
    }

    /// Collects up to `cap` source events into the hand-off batch, applying
    /// window opens/closes as they are discovered. The batch's event slices
    /// are distributed to their windows by [`flush_batch`](Self::flush_batch).
    fn fill_batch(&mut self, cap: usize) -> FillOutcome {
        debug_assert_eq!(
            self.batch.first_pos() + self.batch.len() as u64,
            self.next_pos,
            "batch continues the stream"
        );
        while self.batch.len() < cap {
            // Back-pressure: stall speculative fan-out while the tree is
            // oversized — but never starve the root window of its remaining
            // events (it must be able to finish so the tree can shrink).
            // The load counts windows pending on attach markers alongside
            // live versions: lazy attach keeps the version count low while
            // windows accumulate, and every completion-driven rebuild
            // spans all of them, so unbounded pending windows would blow
            // the cycle cost up exactly like unbounded versions.
            if self.tree.speculative_load() >= self.config.max_tree_versions {
                let root_fully_ingested = self.live.front().is_none_or(|w| w.end_pos().is_some());
                if root_fully_ingested {
                    return FillOutcome::BackPressure;
                }
            }
            let Some(event) = self.feed.pop_front() else {
                return if self.eos {
                    FillOutcome::SourceExhausted
                } else {
                    FillOutcome::SourceDry
                };
            };
            self.progress = true;
            let pos = self.next_pos;
            self.next_pos += 1;
            let mut closed = std::mem::take(&mut self.closed_buf);
            let opened = self.assigner.ingest(&event, &mut closed);
            // Closes exclude the current event, which is not yet in the
            // batch, so the closing window's slice is exactly the batch
            // tail so far.
            for bounds in closed.drain(..) {
                self.close_window(bounds.id, pos);
            }
            self.closed_buf = closed;
            self.batch.push(event);
            if let Some(opened) = opened {
                let info = Arc::new(WindowInfo::new(
                    opened.id,
                    opened.start_pos,
                    opened.start_seq,
                    opened.start_ts,
                ));
                self.shared.store.open_window(opened.id, opened.start_pos);
                self.live.push_back(Arc::clone(&info));
                self.open_windows.push(OpenWindow {
                    info: Arc::clone(&info),
                    // The window contains its start event — the one just
                    // pushed.
                    pending: self.batch.len() - 1,
                });
                let mut factory = self.factory();
                self.tree.new_window(&info, &mut factory);
                self.absorb(factory);
            }
        }
        FillOutcome::Full
    }

    /// Seals the batch into one shared `Arc`, hands every touched window
    /// its slice (one store write and one `Arc` clone per window), and
    /// publishes the ingestion watermark once.
    fn flush_batch(&mut self) {
        let len = self.batch.len();
        if len == 0 {
            debug_assert!(self.batch_closed.is_empty());
            return;
        }
        let next = EventBatch::with_capacity(self.next_pos, self.config.batch_size);
        let sealed = Arc::new(std::mem::replace(&mut self.batch, next));
        for (id, range) in self.batch_closed.drain(..) {
            self.shared.store.extend(id, &sealed, range);
        }
        for ow in &mut self.open_windows {
            self.shared
                .store
                .extend(ow.info.id, &sealed, ow.pending..len);
            ow.pending = 0; // relative to the next batch
        }
        self.shared.ingested.store(self.next_pos, Ordering::Release);
    }

    fn finish_ingest(&mut self) {
        let total = self.next_pos;
        for closed in self.assigner.finish() {
            self.close_window(closed.id, total);
        }
        self.ingest_done = true;
        self.shared.ingest_done.store(true, Ordering::Release);
    }

    /// Closes window `id` at exclusive end `end_pos`: records its final
    /// batch slice (distributed at the next flush), publishes the end
    /// position and feeds the running window-size average (paper Fig. 5:
    /// `Splitter.avgWindowSize`).
    fn close_window(&mut self, id: u64, end_pos: u64) {
        if let Some(i) = self.open_windows.iter().position(|ow| ow.info.id == id) {
            let ow = self.open_windows.remove(i);
            if ow.pending < self.batch.len() {
                self.batch_closed.push((id, ow.pending..self.batch.len()));
            }
            ow.info.set_end_pos(end_pos);
            let len = (end_pos - ow.info.start_pos) as f64;
            self.closed_windows += 1;
            let n = self.closed_windows as f64;
            self.avg_window_size += (len - self.avg_window_size) / n;
        }
    }

    fn retire(&mut self) {
        loop {
            let Some(root) = self.tree.root_version() else {
                return;
            };
            if !root.is_finished()
                || !self.finished_acked.contains(&root.id())
                || self.tree.root_blocked_by_cg()
            {
                return;
            }
            let root = Arc::clone(root);
            // Final validation: the surviving version must never have
            // processed an event a suppressed (now final) group consumed.
            if !root.is_consistent() {
                self.shared
                    .metrics
                    .rollbacks
                    .fetch_add(1, Ordering::Relaxed);
                self.finished_acked.remove(&root.id());
                let outcome = root.rollback_state();
                if outcome.restored_checkpoint {
                    self.shared
                        .metrics
                        .checkpoint_restores
                        .fetch_add(1, Ordering::Relaxed);
                }
                let carried = root.lock().completed_cells.clone();
                let newer: Vec<Arc<WindowInfo>> = self
                    .live
                    .iter()
                    .filter(|w| w.id > root.window().id)
                    .cloned()
                    .collect();
                let mut factory = self.factory();
                let dropped = self
                    .tree
                    .rollback_rebuild(root.id(), &newer, carried, &mut factory);
                self.revoke(&outcome.revoked, &mut factory);
                self.absorb(factory);
                self.shared
                    .metrics
                    .versions_dropped
                    .fetch_add(dropped as u64, Ordering::Relaxed);
                return;
            }
            // Emit buffered complex events in detection order (paper §3.3).
            {
                let mut inner = root.lock();
                self.outputs.append(&mut inner.outputs);
            }
            self.progress = true;
            // Retirement materializes a pending-attach child, so it takes
            // the factory too.
            let mut factory = self.factory();
            let retired = self.tree.retire_root(&mut factory);
            self.absorb(factory);
            self.finished_acked.remove(&retired.id());
            // Acks of versions dropped from the tree are dead; prune them
            // here (retirement is rare relative to cycles).
            let tree = &self.tree;
            self.finished_acked.retain(|id| tree.version(*id).is_some());
            debug_assert_eq!(
                self.live.front().map(|w| w.id),
                Some(retired.window().id),
                "windows retire in id order"
            );
            self.live.pop_front();
            self.shared
                .metrics
                .windows_retired
                .fetch_add(1, Ordering::Relaxed);
            // The retired window's events are dead to it; payloads shared
            // with younger windows stay alive through their own buffers.
            self.shared.store.remove_window(retired.window().id);
        }
    }

    /// Running average window length in events — the prediction input's
    /// window-size term (paper Fig. 5: `Splitter.avgWindowSize`). Seeded
    /// from the query's window spec until the first window closes.
    pub fn avg_window_size(&self) -> f64 {
        self.avg_window_size
    }

    /// Prediction input `n` for a consumption group at `pos_in_window`:
    /// the expected further events in its window under the running average
    /// window size, clamped to ≥ 1 — a stale or short estimate (e.g. a
    /// group already past the average) must never feed the predictor a
    /// non-positive horizon.
    fn events_left(avg_window_size: f64, pos_in_window: u64) -> i64 {
        (avg_window_size as i64 - pos_in_window as i64).max(1)
    }

    fn schedule(&mut self) {
        let mut factory = self.factory();
        let avg = self.avg_window_size;
        let predictor = &*self.predictor;
        let prob = move |cell: &CgCell| -> f64 {
            let events_left = Self::events_left(avg, cell.pos_in_window());
            predictor.predict(cell.delta(), events_left)
        };
        // Selecting the top k is also where lazy completion branches
        // materialize: a branch clones its state only on first schedule.
        let top = self.tree.top_k(self.config.instances, &prob, &mut factory);
        self.absorb(factory);

        // Two-pass assignment (paper Fig. 7): keep already-placed versions,
        // hand the rest to free instances.
        let mut to_place: Vec<Arc<VersionState>> = Vec::new();
        let mut kept: Vec<bool> = vec![false; self.shared.slots.len()];
        'version: for v in &top {
            for (i, slot) in self.shared.slots.iter().enumerate() {
                if kept[i] {
                    continue;
                }
                let guard = slot.lock();
                if guard.as_ref().is_some_and(|s| Arc::ptr_eq(s, v)) {
                    kept[i] = true;
                    continue 'version;
                }
            }
            to_place.push(Arc::clone(v));
        }
        let mut to_place = to_place.into_iter();
        for (i, slot) in self.shared.slots.iter().enumerate() {
            if kept[i] {
                continue;
            }
            *slot.lock() = to_place.next();
        }
    }
}

/// The splitter's [`VersionFactory`]: allocates ids from the shared
/// counters, keeps the `versions_created` metric, and records clones of
/// already-finished versions so they can retire without a fresh
/// `WvFinished` op (see [`Splitter::absorb`]).
struct SplitterFactory {
    shared: Arc<SharedState>,
    query: Arc<Query>,
    acked_clones: Vec<WvId>,
}

impl VersionFactory for SplitterFactory {
    fn fresh(
        &mut self,
        window: &Arc<WindowInfo>,
        suppressed: Vec<Arc<CgCell>>,
    ) -> Arc<VersionState> {
        self.shared
            .metrics
            .versions_created
            .fetch_add(1, Ordering::Relaxed);
        VersionState::new(
            self.shared.alloc_wv_id(),
            Arc::clone(window),
            Arc::clone(&self.query),
            suppressed,
        )
    }

    fn clone_of(
        &mut self,
        source: &Arc<VersionState>,
        suppressed: Vec<Arc<CgCell>>,
        expected_open: &[CgId],
    ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)> {
        let shared = Arc::clone(&self.shared);
        let mut mk_twin = |cell: &CgCell| Arc::new(cell.twin(shared.alloc_cg_id()));
        let (version, twins) = VersionState::clone_speculative(
            source,
            self.shared.alloc_wv_id(),
            suppressed,
            expected_open,
            &mut mk_twin,
        )?;
        self.shared
            .metrics
            .versions_created
            .fetch_add(1, Ordering::Relaxed);
        if version.is_finished() {
            self.acked_clones.push(version.id());
        }
        Some((version, twins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceCore, StepOutcome};
    use spectre_events::{AttrKey, EventType, Schema};
    use spectre_query::{ConsumptionPolicy, Expr, Pattern, WindowSpec};

    fn ev(seq: u64, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(seq)
            .attr(AttrKey::new(0), x)
            .build()
    }

    fn ab_query() -> Arc<Query> {
        let x = AttrKey::new(0);
        Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", Expr::current(x).eq_(Expr::value(1.0)))
                        .one("B", Expr::current(x).eq_(Expr::value(2.0)))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::count_sliding(4, 2).unwrap())
                .consumption(ConsumptionPolicy::All)
                .build()
                .unwrap(),
        )
    }

    /// Drives splitter + instances single-threadedly until done.
    fn drive_config(
        query: Arc<Query>,
        events: Vec<Event>,
        config: SpectreConfig,
    ) -> Vec<ComplexEvent> {
        let shared = SharedState::for_config(&config);
        let k = config.instances;
        let check_freq = config.consistency_check_freq;
        let batch = config.batch_size;
        let mut splitter = Splitter::new(query, config, Arc::clone(&shared));
        for event in events {
            splitter.feed(event);
        }
        splitter.end_of_stream();
        let mut instances: Vec<_> = (0..k)
            .map(|i| InstanceCore::new(i, check_freq).with_batch(batch))
            .collect();
        for round in 0..1_000_000u64 {
            if splitter.cycle() {
                return splitter.into_outputs();
            }
            for inst in &mut instances {
                let _ = inst.step(&shared);
            }
            let _ = round;
        }
        panic!("did not converge");
    }

    fn drive(query: Arc<Query>, events: Vec<Event>, k: usize) -> Vec<ComplexEvent> {
        drive_config(query, events, SpectreConfig::with_instances(k))
    }

    #[test]
    fn small_stream_matches_sequential_reference() {
        let _ = Schema::new();
        let query = ab_query();
        let events: Vec<Event> = vec![
            ev(0, 1.0),
            ev(1, 2.0),
            ev(2, 1.0),
            ev(3, 9.0),
            ev(4, 2.0),
            ev(5, 1.0),
            ev(6, 2.0),
            ev(7, 9.0),
        ];
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
        for k in [1usize, 2, 4] {
            let got = drive(Arc::clone(&query), events.clone(), k);
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn empty_stream_terminates() {
        let query = ab_query();
        let got = drive(query, vec![], 2);
        assert!(got.is_empty());
    }

    #[test]
    fn stream_without_matches_terminates() {
        let query = ab_query();
        let events: Vec<Event> = (0..50).map(|i| ev(i, 9.0)).collect();
        let got = drive(query, events, 3);
        assert!(got.is_empty());
    }

    #[test]
    fn outputs_identical_across_batch_sizes_and_shard_counts() {
        // The batched hand-off and store sharding are pure mechanics: for
        // any batch size (including the degenerate 1 = the original
        // event-at-a-time path) and any shard count, the emitted complex
        // events are identical.
        let query = ab_query();
        let events: Vec<Event> = (0..200)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 1.0, 2.0, 9.0][i as usize % 6]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
        assert!(!expected.is_empty());
        for batch in [1usize, 7, 64, 1024] {
            for shards in [1usize, 8] {
                let config = SpectreConfig::with_batching(3, batch, shards);
                let got = drive_config(Arc::clone(&query), events.clone(), config);
                assert_eq!(got, expected, "batch = {batch}, shards = {shards}");
            }
        }
    }

    #[test]
    fn single_instance_behaves_like_sequential() {
        let query = ab_query();
        let events: Vec<Event> = (0..100)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 9.0][i as usize % 4]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
        let got = drive(query, events, 1);
        assert_eq!(got, expected);
    }

    #[test]
    fn warmup_window_size_estimate_derives_from_spec() {
        use spectre_query::window::{WindowClose, WindowOpen};

        // Count windows: the estimate is exact before the first close.
        let shared = SharedState::new(1);
        let splitter = Splitter::new(
            ab_query(), // ws = 4
            SpectreConfig::with_instances(1),
            shared,
        );
        assert_eq!(splitter.avg_window_size(), 4.0);

        // Time windows: the duration in ticks stands in for the event
        // count — derived from the spec, not a hardcoded constant.
        let x = AttrKey::new(0);
        let time_query = Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", Expr::current(x).eq_(Expr::value(1.0)))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::new(WindowOpen::EverySlide(5), WindowClose::Time(250)).unwrap())
                .build()
                .unwrap(),
        );
        let shared = SharedState::new(1);
        let mut splitter = Splitter::new(time_query, SpectreConfig::with_instances(1), shared);
        for i in 0..4 {
            splitter.feed(ev(i, 9.0));
        }
        splitter.end_of_stream();
        assert_eq!(splitter.avg_window_size(), 250.0);
        // The first cycle ingests the whole (short) stream and the final
        // flush closes the only window at 4 events: the measured length
        // replaces the warm-up estimate.
        splitter.cycle();
        assert_eq!(splitter.avg_window_size(), 4.0);
    }

    #[test]
    fn prediction_events_left_clamps_to_at_least_one() {
        assert_eq!(Splitter::events_left(200.0, 10), 190);
        // At or past the average the horizon floors at one expected
        // event, matching the model's own clamp.
        assert_eq!(Splitter::events_left(200.0, 200), 1);
        assert_eq!(Splitter::events_left(200.0, 5000), 1);
        // A degenerate (zero) average must not produce a zero horizon.
        assert_eq!(Splitter::events_left(0.0, 0), 1);
    }

    #[test]
    fn dry_feed_pauses_ingestion_until_end_of_stream() {
        // A feed that runs dry mid-stream pauses ingestion — cycles keep
        // doing maintenance without terminating — and ingestion resumes
        // seamlessly when more events arrive; explicit end-of-stream is
        // what lets the run wind down.
        let query = ab_query();
        let events: Vec<Event> = (0..40)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 1.0, 2.0, 9.0][i as usize % 6]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;

        let shared = SharedState::new(1);
        let mut splitter = Splitter::new(
            Arc::clone(&query),
            SpectreConfig::with_instances(1),
            Arc::clone(&shared),
        );
        let mut inst = InstanceCore::new(0, 64);
        let (head, tail) = events.split_at(7);
        for event in head {
            splitter.feed(event.clone());
        }
        for _ in 0..20 {
            assert!(!splitter.cycle(), "dry feed must not terminate the run");
            let _ = inst.step(&shared);
        }
        assert_eq!(splitter.events_ingested(), 7);
        for event in tail {
            splitter.feed(event.clone());
        }
        splitter.end_of_stream();
        for _ in 0..1_000_000u64 {
            if splitter.cycle() {
                assert_eq!(splitter.events_ingested(), 40);
                assert_eq!(splitter.into_outputs(), expected);
                return;
            }
            let _ = inst.step(&shared);
        }
        panic!("did not converge");
    }

    #[test]
    fn instance_outcomes_cover_stall() {
        // A splitter that ingests slowly: instances must stall, not skip.
        let query = ab_query();
        let shared = SharedState::new(1);
        let config = SpectreConfig {
            instances: 1,
            ingest_per_cycle: 1,
            ..Default::default()
        };
        let events: Vec<Event> = vec![ev(0, 1.0), ev(1, 2.0), ev(2, 9.0), ev(3, 9.0)];
        let mut splitter = Splitter::new(query, config, Arc::clone(&shared));
        for event in events {
            splitter.feed(event);
        }
        splitter.end_of_stream();
        let mut inst = InstanceCore::new(0, 64);
        splitter.cycle();
        // one event ingested; process it, then stall
        assert_eq!(inst.step(&shared), StepOutcome::Worked);
        assert_eq!(inst.step(&shared), StepOutcome::Stalled);
        for _ in 0..100 {
            if splitter.cycle() {
                break;
            }
            let _ = inst.step(&shared);
        }
        assert!(shared.is_done());
    }
}
