//! The splitter: ingestion, dependency-tree maintenance, completion-
//! probability prediction, top-k selection and scheduling (paper §3.2).
//!
//! One maintenance cycle performs, in order (paper §4.2.1's "cycle"):
//! (a) apply all buffered dependency-tree updates from the instances
//! (drained in one batch and routed to the owning query), (b) feed each
//! query's Markov model, (c) ingest input events in [`EventBatch`] units
//! (opening and closing windows, flushing each batch to the window store
//! with one write per touched window buffer), (d) retire finished,
//! confirmed root versions per query — emitting their buffered complex
//! events in window order — and (e) select and schedule the top-k window
//! versions across all queries.
//!
//! # Multi-query sessions
//!
//! The splitter hosts any number of concurrently deployed queries over the
//! one shared feed, store and instance pool. The split of state is strict:
//!
//! * **Per query** (`QueryState`, keyed by [`QueryId`]): window assigner
//!   membership, dependency tree, completion predictor, live-window
//!   bookkeeping, retirement acks, running window-size average, metric
//!   counters and committed outputs.
//! * **Shared** ([`SharedState`]): the feed queue, the sharded
//!   [`WindowStore`](crate::store::WindowStore), the scheduling slots, the
//!   op/stats queues and the aggregate metrics.
//!
//! Queries whose `WindowSpec`s compare equal share a `SpecGroup`: one
//! assigner drives their (identical) window boundaries, and each window's
//! events are stored **once** under a group-allocated `store_id` while every
//! member query gets its own [`WindowInfo`] cell (query-local `id`, shared
//! `store_id`). Deploying a query mid-stream subscribes it to windows from
//! the next boundary on; retiring one drops its versions, releases its
//! window references (buffers free when the last subscriber goes) and
//! leaves the other queries untouched.
//!
//! # Multi-tenant sessions
//!
//! Every query belongs to a [`TenantId`] (the default tenant when deployed
//! through [`deploy_query`](Splitter::deploy_query)). Tenancy is pure
//! policy on top of the mechanisms above:
//!
//! * **Scheduling** — the scheduling cycle splits the k
//!   instance slots between tenants by weighted fair share with
//!   deficit-round-robin carryover; a session with at most one active
//!   tenant reduces bit-identically to the untenanted merge.
//! * **Speculation** — a tenant's [`TenantQuota::max_versions`] caps how
//!   many window versions its queries may materialize, so one speculative
//!   tenant cannot monopolize the shared version budget.
//! * **Ingestion filters** — each query derives a conservative
//!   [`EventFilter`] from its pattern at deploy time; windows whose events
//!   the filter all rejects are never attached to the query's tree
//!   (counted as `windows_skipped`), while the shared store buffers stay
//!   byte-identical for every other subscriber.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use spectre_events::Event;
use spectre_query::window::{WindowAssigner, WindowBounds};
use spectre_query::{ComplexEvent, EventFilter, Query, WindowClose};

use crate::cg::{CgCell, CgId};
use crate::config::{PredictorKind, SpectreConfig, TenantQuota};
use crate::engine::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::predictor::{CompletionPredictor, FixedPredictor, MarkovPredictor};
use crate::reorder::ReorderStats;
use crate::shared::{QueryId, SharedState, TenantId, TreeOp};
use crate::store::WindowInfo;
use crate::tree::{DependencyTree, VersionFactory};
use crate::version::{VersionState, WvId};

/// A probability-ranked nomination list, as produced per tenant by the
/// quota-aware schedule.
type RankedNominations = Vec<(f64, Arc<VersionState>)>;

/// One splitter→store hand-off unit: a run of consecutive stream events
/// starting at stream position [`first_pos`](Self::first_pos).
///
/// The splitter accumulates up to
/// [`SpectreConfig::batch_size`](crate::SpectreConfig::batch_size) events
/// per batch, wraps the batch in *one* `Arc`, and hands each window its
/// slice of it with a single
/// [`WindowStore::extend`](crate::store::WindowStore::extend) call — so
/// allocation, reference-count and lock traffic all scale with batches,
/// not events, and overlapping windows share the event payloads through
/// the batch. A batch size of 1 reproduces the original event-at-a-time
/// hand-off exactly.
///
/// # Example
///
/// ```
/// use spectre_core::splitter::EventBatch;
/// use spectre_events::{Event, EventType};
///
/// let mut batch = EventBatch::with_capacity(100, 64);
/// for seq in 100..104 {
///     batch.push(Event::builder(EventType::new(0)).seq(seq).ts(seq).build());
/// }
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.first_pos(), 100);
/// // A window that opened at the batch's third event owns the slice
/// // from index 2 on:
/// assert_eq!(batch.events()[2..].len(), 2);
/// assert_eq!(batch.events()[2].seq(), 102);
/// ```
#[derive(Debug, Default)]
pub struct EventBatch {
    first_pos: u64,
    events: Vec<Event>,
}

impl EventBatch {
    /// Creates an empty batch starting at stream position `first_pos` with
    /// room for `cap` events.
    pub fn with_capacity(first_pos: u64, cap: usize) -> Self {
        EventBatch {
            first_pos,
            events: Vec::with_capacity(cap),
        }
    }

    /// Appends the next event (stream position `first_pos() + len()`).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Stream position of the batch's first event.
    pub fn first_pos(&self) -> u64 {
        self.first_pos
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events accumulated so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// A not-yet-closed window of one spec group: the shared store buffer, the
/// batch-relative index of its first pending event, and the subscribed
/// members' window cells.
struct GroupOpenWindow {
    /// Group-local window id (the assigner's numbering), for close matching.
    group_id: u64,
    /// Shared store buffer id.
    store_id: u64,
    /// Batch-relative index of the first batch event belonging to the
    /// window (reset to 0 at each flush).
    pending: usize,
    /// Each subscribed member's own `WindowInfo` cell for this window.
    infos: Vec<(QueryId, Arc<WindowInfo>)>,
}

/// One window-spec equivalence class: the queries whose specs compare
/// equal, the single assigner driving their shared window boundaries, and
/// the reference counts that keep each shared store buffer alive until its
/// last subscriber retires the window.
struct SpecGroup {
    assigner: WindowAssigner,
    /// Stream position at group creation; the assigner's positions are
    /// relative to it (a group deployed mid-stream starts counting at its
    /// own first event).
    base_pos: u64,
    /// Member queries (in deployment order). May be empty after retires;
    /// an empty group opens no windows but stays reusable for later
    /// same-spec deploys.
    members: Vec<QueryId>,
    /// Not-yet-closed windows, mirroring the assigner's open set.
    open: Vec<GroupOpenWindow>,
    /// Live subscriber count per store buffer; the buffer is removed from
    /// the store when the count hits zero.
    refs: HashMap<u64, usize>,
}

/// Per-tenant policy and bookkeeping (see the [module docs](self)):
/// quota, owned queries, scheduler carryover credit, and the metric
/// residual of retired queries that keeps
/// [`tenant_metrics`](Splitter::tenant_metrics) summing exactly to the
/// aggregate across the tenant's whole lifetime.
struct TenantState {
    id: TenantId,
    quota: TenantQuota,
    /// Queries owned by this tenant (deployment order).
    queries: Vec<QueryId>,
    /// Deficit-round-robin carryover, in instance slots: the fractional
    /// share a tenant was owed but not granted in earlier cycles. Bounded
    /// by k and reset to zero whenever the tenant has nothing to schedule.
    credit: f64,
    /// Accumulated snapshots of this tenant's retired queries.
    retired: MetricsSnapshot,
}

/// Per-query runtime state — everything that was hard-wired to the single
/// query before the registry existed (see the [module docs](self)).
struct QueryState {
    id: QueryId,
    /// Owning tenant (scheduling share, quotas, metric rollups).
    tenant: TenantId,
    query: Arc<Query>,
    /// Index of the query's [`SpecGroup`] in the splitter's group list.
    group: usize,
    /// Group-window-id offset: this query's local window id is
    /// `group_id - offset`, so a query deployed mid-stream numbers its own
    /// windows 0, 1, 2, … exactly like a freshly started session would.
    offset: u64,
    tree: DependencyTree,
    predictor: Box<dyn CompletionPredictor>,
    /// Pattern-derived event prefilter, or `None` when the pattern admits
    /// unconstrained events (then every window attaches eagerly, exactly
    /// the pre-filter behavior).
    filter: Option<EventFilter>,
    /// Live (unretired) windows *attached to the tree*, oldest first.
    /// Windows whose events the filter has so far all rejected are in
    /// [`deferred`](Self::deferred) instead.
    live: VecDeque<Arc<WindowInfo>>,
    /// Open windows not yet attached: no event of theirs has passed the
    /// filter. Always a suffix of the window sequence (a relevant event
    /// attaches *all* deferred windows at once — it is in every open
    /// window — so attached windows are strictly older than deferred
    /// ones). A window still deferred at close is skipped entirely.
    deferred: VecDeque<Arc<WindowInfo>>,
    /// Versions whose `WvFinished` op has been applied. Retirement requires
    /// the ack: the op queue is FIFO per instance and an instance pushes all
    /// of a version's consumption-group ops *before* its `WvFinished` (the
    /// tagged queue preserves each query's subsequence order), so the ack
    /// guarantees the dependency tree reflects every group the version
    /// created or resolved.
    finished_acked: HashSet<WvId>,
    /// Running average window length (events), for the prediction input `n`.
    avg_window_size: f64,
    closed_windows: u64,
    /// This query's share of the session counters (see
    /// [`MetricsSnapshot`]); the engine-global aggregate is updated at the
    /// same sites.
    metrics: Arc<Metrics>,
}

impl QueryState {
    /// Applies one buffered instance op to this query's tree.
    fn apply_op(&mut self, global: &Metrics, op: TreeOp, factory: &mut SplitterFactory) {
        match op {
            TreeOp::CgCreated { creator, cell } => {
                self.tree.cg_created(creator, cell, factory);
            }
            TreeOp::CgResolved { cg, completed } => {
                let dropped = self.tree.cg_resolved(cg, completed, factory) as u64;
                if dropped > 0 {
                    global
                        .versions_dropped
                        .fetch_add(dropped, Ordering::Relaxed);
                    self.metrics
                        .versions_dropped
                        .fetch_add(dropped, Ordering::Relaxed);
                }
            }
            TreeOp::WvFinished { wv } => {
                self.finished_acked.insert(wv);
            }
            TreeOp::WvRolledBack { wv, revoked } => {
                // The version restarted; a previous finish ack is void.
                self.finished_acked.remove(&wv);
                if let Some(version) = self.tree.version(wv) {
                    let window_id = version.window().id;
                    // Completions surviving the rollback (the restored
                    // checkpoint's, if one was restored; empty otherwise)
                    // stay facts for the rebuilt dependents.
                    let carried = version.lock().completed_cells.clone();
                    let newer: Vec<Arc<WindowInfo>> = self
                        .live
                        .iter()
                        .filter(|w| w.id > window_id)
                        .cloned()
                        .collect();
                    let dropped = self.tree.rollback_rebuild(wv, &newer, carried, factory) as u64;
                    if dropped > 0 {
                        global
                            .versions_dropped
                            .fetch_add(dropped, Ordering::Relaxed);
                        self.metrics
                            .versions_dropped
                            .fetch_add(dropped, Ordering::Relaxed);
                    }
                }
                // Even when the version itself is already gone (stale op),
                // its discarded completions may survive in state copies
                // under other branches; revoke them.
                self.revoke(global, &revoked, factory);
            }
        }
    }

    /// Revokes void consumption-group completions across this query's tree
    /// (see [`DependencyTree::revoke_completions`]). Completions of already-
    /// retired windows are confirmed by the final validation and are never
    /// revoked.
    fn revoke(&mut self, global: &Metrics, revoked: &[Arc<CgCell>], factory: &mut SplitterFactory) {
        if revoked.is_empty() {
            return;
        }
        let Some(oldest_live) = self.live.front().map(|w| w.id) else {
            return;
        };
        let revocable: Vec<Arc<CgCell>> = revoked
            .iter()
            .filter(|c| c.window_id() >= oldest_live)
            .cloned()
            .collect();
        if revocable.is_empty() {
            return;
        }
        let live = &self.live;
        let newer = |window_id: u64| -> Vec<Arc<WindowInfo>> {
            live.iter().filter(|w| w.id > window_id).cloned().collect()
        };
        let dropped = self.tree.revoke_completions(&revocable, &newer, factory) as u64;
        if dropped > 0 {
            global
                .versions_dropped
                .fetch_add(dropped, Ordering::Relaxed);
            self.metrics
                .versions_dropped
                .fetch_add(dropped, Ordering::Relaxed);
            // Acks of replaced versions are dead.
            let tree = &self.tree;
            self.finished_acked.retain(|id| tree.version(*id).is_some());
        }
    }
}

/// Why [`Splitter::fill_batch`] stopped collecting events.
enum FillOutcome {
    /// The batch reached its size cap.
    Full,
    /// Speculative back-pressure: some query's dependency tree is oversized
    /// and its root window is fully ingested; stop ingesting for this cycle.
    BackPressure,
    /// The feed queue is empty but end-of-stream has not been signalled;
    /// stop ingesting until the session feeds more events.
    SourceDry,
    /// The feed queue is empty and [`Splitter::end_of_stream`] was called.
    SourceExhausted,
}

/// The splitter's state; driven by [`cycle`](Splitter::cycle).
///
/// The splitter is *feed-driven*: it owns no input iterator. A session
/// (normally [`SpectreEngine`](crate::SpectreEngine)) pushes events into
/// the feed queue with [`feed`](Self::feed) and signals the end of the
/// stream explicitly with [`end_of_stream`](Self::end_of_stream); each
/// [`cycle`](Self::cycle) then ingests from the queue under the usual
/// per-cycle budget and speculative back-pressure. A queue that runs dry
/// mid-stream simply pauses ingestion — maintenance, retirement and
/// scheduling keep running — until more events arrive.
///
/// Queries are deployed and retired through
/// [`deploy_query`](Self::deploy_query) / [`retire_query`](Self::retire_query)
/// (see the [module docs](self) for the state split).
pub struct Splitter {
    config: SpectreConfig,
    shared: Arc<SharedState>,
    /// Events fed by the session, not yet ingested.
    feed: VecDeque<Event>,
    /// `true` once the session signalled end-of-stream.
    eos: bool,
    /// Window-spec equivalence classes (shared assigners + store buffers).
    groups: Vec<SpecGroup>,
    /// The query registry, ascending by id (commit order is id order).
    queries: Vec<QueryState>,
    /// Registry index: query id → position in [`queries`](Self::queries).
    /// Keeps the hot paths (op routing, window open/close, stats) O(1)
    /// instead of scanning the registry per touch.
    query_index: HashMap<QueryId, usize>,
    /// Tenant registry, in first-deploy order.
    tenants: Vec<TenantState>,
    /// Tenant id → position in [`tenants`](Self::tenants).
    tenant_index: HashMap<TenantId, usize>,
    next_query: u32,
    /// Next shared store-buffer id (engine-global, never reused).
    next_store_id: u64,
    /// The in-flight hand-off batch (sealed into an `Arc` at flush).
    batch: EventBatch,
    /// Store buffers whose window closed while the current batch was
    /// filling, with the batch-relative ranges they own (distributed at
    /// flush).
    batch_closed: Vec<(u64, std::ops::Range<usize>)>,
    /// Reusable buffer for per-event window closes.
    closed_buf: Vec<WindowBounds>,
    /// Reusable buffer for draining the shared op queue.
    ops_scratch: Vec<(QueryId, TreeOp)>,
    /// Next stream position to assign (= events ingested so far).
    next_pos: u64,
    /// `true` when a reorder stage feeds this splitter: the feed is then
    /// contractually timestamp-monotone (the window assigners and the
    /// warm-up window sizing assume it), and [`feed`](Self::feed) verifies
    /// the contract in debug builds. Admitted late events enter through
    /// [`feed_late`](Self::feed_late), which bypasses the check.
    expect_monotone: bool,
    /// Timestamp of the last regularly fed event (tracked only under
    /// `expect_monotone`).
    last_fed_ts: Option<u64>,
    /// Committed complex events, tagged with their query, in commit order.
    outputs: Vec<(QueryId, ComplexEvent)>,
    ingest_done: bool,
    progress: bool,
    /// Splitter-local mirror of the instance scheduling slots. The splitter
    /// is the only publisher, so this shadow is authoritative: the kept-set
    /// check in [`schedule`](Self::schedule) and the slot sweep in
    /// [`retire_query`](Self::retire_query) read it instead of locking the
    /// shared [`SlotCell`](crate::shared::SlotCell)s, and a slot is only
    /// published (and its watchers woken) when its assignment changes.
    sched_shadow: Vec<Option<Arc<VersionState>>>,
}

/// Spec-derived warm-up window-size estimate, used by the prediction input
/// `events_left` until the query's first window closes: exact for count
/// windows; for time windows the duration in ticks stands in for the event
/// count (the generators emit ~1 event per tick).
fn warmup_window_size(query: &Query) -> f64 {
    match query.window().close() {
        WindowClose::Count(ws) => (ws as f64).max(1.0),
        WindowClose::Time(duration) => (duration as f64).max(1.0),
    }
}

impl Splitter {
    /// Creates a splitter hosting no queries yet, with an empty feed queue.
    /// Deploy queries with [`deploy_query`](Self::deploy_query).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn multi(config: SpectreConfig, shared: Arc<SharedState>) -> Self {
        config.validate();
        let batch = EventBatch::with_capacity(0, config.batch_size);
        let sched_shadow = (0..shared.instance_count()).map(|_| None).collect();
        Splitter {
            config,
            shared,
            feed: VecDeque::new(),
            eos: false,
            groups: Vec::new(),
            queries: Vec::new(),
            query_index: HashMap::new(),
            tenants: Vec::new(),
            tenant_index: HashMap::new(),
            next_query: 0,
            next_store_id: 0,
            batch,
            batch_closed: Vec::new(),
            closed_buf: Vec::new(),
            ops_scratch: Vec::new(),
            next_pos: 0,
            expect_monotone: false,
            last_fed_ts: None,
            outputs: Vec::new(),
            ingest_done: false,
            progress: false,
            sched_shadow,
        }
    }

    /// Creates a splitter hosting exactly `query` (the legacy single-query
    /// constructor — [`multi`](Self::multi) plus one deploy).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the query allows more than
    /// one concurrently active partial match. The speculative runtime keeps
    /// one open consumption group per window version at a time (the paper's
    /// evaluation setting, §4.2); a version's groups resolve strictly in
    /// creation order, which the dependency-tree chain construction relies
    /// on. Queries with `max_active > 1` run on the sequential engines.
    pub fn new(query: Arc<Query>, config: SpectreConfig, shared: Arc<SharedState>) -> Self {
        let mut splitter = Self::multi(config, shared);
        if let Err(e) = splitter.deploy_query(query) {
            panic!("{e}");
        }
        splitter
    }

    /// Deploys a query for the default tenant — see
    /// [`deploy_query_for`](Self::deploy_query_for).
    pub fn deploy_query(&mut self, query: Arc<Query>) -> Result<QueryId, EngineError> {
        self.deploy_query_for(TenantId::DEFAULT, query)
    }

    /// Index of `tenant`'s registry entry, creating one (default quota)
    /// on first sight.
    fn tenant_entry(&mut self, tenant: TenantId) -> usize {
        match self.tenant_index.get(&tenant) {
            Some(&ti) => ti,
            None => {
                let ti = self.tenants.len();
                self.tenants.push(TenantState {
                    id: tenant,
                    quota: TenantQuota::default(),
                    queries: Vec::new(),
                    credit: 0.0,
                    retired: MetricsSnapshot::default(),
                });
                self.tenant_index.insert(tenant, ti);
                ti
            }
        }
    }

    /// Sets (or replaces) `tenant`'s quota, registering the tenant if it
    /// has no queries yet.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] if the quota is degenerate or
    /// exceeds the session configuration's global caps (see
    /// [`TenantQuota::try_validate`]).
    pub fn set_tenant_quota(
        &mut self,
        tenant: TenantId,
        quota: TenantQuota,
    ) -> Result<(), EngineError> {
        if let Err(msg) = quota.try_validate(&self.config) {
            return Err(EngineError::InvalidConfig(msg));
        }
        let ti = self.tenant_entry(tenant);
        self.tenants[ti].quota = quota;
        Ok(())
    }

    /// Deploys a query owned by `tenant`: registers its `QueryState` and
    /// subscribes it to the spec group matching its window spec (creating
    /// one if no deployed query shares the spec). The query starts
    /// matching from the next window its group opens — windows already
    /// open at deploy time are not its.
    ///
    /// # Errors
    ///
    /// [`EngineError::QueryNotRunnable`] if the query allows more than one
    /// concurrently active partial match (see [`new`](Self::new));
    /// [`EngineError::QuotaExceeded`] if the tenant is at its
    /// [`TenantQuota::max_queries`] cap.
    pub fn deploy_query_for(
        &mut self,
        tenant: TenantId,
        query: Arc<Query>,
    ) -> Result<QueryId, EngineError> {
        if query.max_active() != 1 {
            return Err(EngineError::QueryNotRunnable {
                query: query.name().to_string(),
                reason: "the speculative runtime requires max_active = 1".to_string(),
            });
        }
        let ti = self.tenant_entry(tenant);
        if let Some(cap) = self.tenants[ti].quota.max_queries {
            if self.tenants[ti].queries.len() >= cap {
                return Err(EngineError::QuotaExceeded {
                    tenant,
                    max_queries: cap,
                });
            }
        }
        let id = QueryId(self.next_query);
        self.next_query += 1;
        let spec = query.window();
        let group = match self.groups.iter().position(|g| g.assigner.spec() == spec) {
            Some(gi) => gi,
            None => {
                self.groups.push(SpecGroup {
                    assigner: WindowAssigner::new(spec.clone()),
                    base_pos: self.next_pos,
                    members: Vec::new(),
                    open: Vec::new(),
                    refs: HashMap::new(),
                });
                self.groups.len() - 1
            }
        };
        let g = &mut self.groups[group];
        g.members.push(id);
        let offset = g.assigner.windows_opened();
        let predictor: Box<dyn CompletionPredictor> = match &self.config.predictor {
            PredictorKind::Markov(mc) => Box::new(MarkovPredictor::new(
                query.pattern().max_delta(),
                mc.clone(),
            )),
            PredictorKind::Fixed(p) => Box::new(FixedPredictor::new(*p)),
        };
        let avg_window_size = warmup_window_size(&query);
        let filter = EventFilter::for_query(&query);
        self.query_index.insert(id, self.queries.len());
        self.tenants[ti].queries.push(id);
        self.queries.push(QueryState {
            id,
            tenant,
            query,
            group,
            offset,
            tree: DependencyTree::with_modes(
                self.config.lazy_materialization,
                self.config.lazy_attach,
            ),
            predictor,
            filter,
            live: VecDeque::new(),
            deferred: VecDeque::new(),
            finished_acked: HashSet::new(),
            avg_window_size,
            closed_windows: 0,
            // Per-query views get worker blocks too: instances flush their
            // run counters into them, so without the split the per-query
            // lines would ping-pong between cores just like the aggregate.
            metrics: Arc::new(Metrics::with_workers(self.shared.instance_count())),
        });
        Ok(id)
    }

    /// Retires a deployed query mid-session: drops its in-flight versions
    /// (instances abort them at the next run boundary), clears its
    /// scheduling slots, releases its window references (shared store
    /// buffers are freed when their last subscriber goes) and removes its
    /// registry entry. Returns the query's committed-but-undrained outputs,
    /// or `None` for an unknown (never deployed or already retired) id.
    /// The other queries are untouched.
    pub fn retire_query(&mut self, qid: QueryId) -> Option<Vec<ComplexEvent>> {
        let idx = self.query_index.remove(&qid)?;
        let qs = self.queries.remove(idx);
        // `Vec::remove` shifted everything behind the gap down one slot.
        for (i, q) in self.queries.iter().enumerate().skip(idx) {
            self.query_index.insert(q.id, i);
        }
        // The tenant keeps the retired query's counters as a residual so
        // its rollup stays exact across the retire.
        let ti = self.tenant_index[&qs.tenant];
        let tenant = &mut self.tenants[ti];
        tenant.queries.retain(|m| *m != qid);
        tenant.retired.accumulate(&qs.metrics.snapshot());
        // Speculative work in flight is discarded: instances observe the
        // dropped flag at the next step/run boundary and go idle.
        for v in qs.tree.versions() {
            v.mark_dropped();
        }
        for (i, cur) in self.sched_shadow.iter_mut().enumerate() {
            if cur.as_ref().is_some_and(|v| v.query_id() == qid) {
                *cur = None;
                self.shared.slots[i].publish(None);
            }
        }
        // Unsubscribe from the spec group; the group itself stays (it may
        // have other members, and an empty one is reusable).
        let g = &mut self.groups[qs.group];
        g.members.retain(|m| *m != qid);
        for ow in &mut g.open {
            ow.infos.retain(|(m, _)| *m != qid);
        }
        for w in qs.live.iter().chain(qs.deferred.iter()) {
            if let Some(r) = g.refs.get_mut(&w.store_id) {
                *r -= 1;
                if *r == 0 {
                    g.refs.remove(&w.store_id);
                    self.shared.store.remove_window(w.store_id);
                }
            }
        }
        // Queued ops/stats still tagged with this id are dropped as stale
        // when drained. Hand back the outputs the session has not drained.
        let mut mine = Vec::new();
        let mut rest = Vec::with_capacity(self.outputs.len());
        for (q, ce) in self.outputs.drain(..) {
            if q == qid {
                mine.push(ce);
            } else {
                rest.push((q, ce));
            }
        }
        self.outputs = rest;
        Some(mine)
    }

    /// Queues one event for ingestion. The event is not touched until a
    /// [`cycle`](Self::cycle) ingests it under the per-cycle budget and the
    /// speculative back-pressure bound.
    ///
    /// # Panics
    ///
    /// Panics if [`end_of_stream`](Self::end_of_stream) was already called.
    pub fn feed(&mut self, event: Event) {
        assert!(!self.eos, "event fed after end_of_stream");
        if self.expect_monotone {
            debug_assert!(
                self.last_fed_ts.is_none_or(|last| event.ts() >= last),
                "post-reorder stream must be timestamp-monotone: ts {} after ts {}",
                event.ts(),
                self.last_fed_ts.unwrap_or(0),
            );
            self.last_fed_ts = Some(event.ts());
        }
        self.feed.push_back(event);
    }

    /// Queues an *admitted late* event — one the reorder stage's
    /// `LatePolicy::Admit` routed past the watermark. It enters the feed
    /// like any other event (reaching exactly the windows still open when
    /// it is ingested) but is exempt from the timestamp-monotonicity
    /// contract of [`feed`](Self::feed).
    ///
    /// # Panics
    ///
    /// Panics if [`end_of_stream`](Self::end_of_stream) was already called.
    pub fn feed_late(&mut self, event: Event) {
        assert!(!self.eos, "event fed after end_of_stream");
        self.feed.push_back(event);
    }

    /// Declares whether the feed is expected to be timestamp-monotone
    /// (set by the engine when a reorder stage is configured). In debug
    /// builds, [`feed`](Self::feed) then asserts the contract so a policy
    /// bug fails loudly instead of silently corrupting time windows.
    pub fn expect_monotone(&mut self, on: bool) {
        self.expect_monotone = on;
    }

    /// Adds a reorder-stage counter delta to the metrics. Attribution
    /// follows the `windows_retired` model: the stage is shared by the
    /// whole session, every deployed query's view of the stream saw the
    /// reordering, so each query's share grows by the delta and the
    /// aggregate grows by the sum of the shares — the aggregate still
    /// decomposes exactly. With no deployed queries there is no view to
    /// attribute and the delta is discarded.
    pub fn record_reorder(&mut self, stats: &ReorderStats) {
        if stats.is_empty() || self.queries.is_empty() {
            return;
        }
        let n = self.queries.len() as u64;
        let global = &self.shared.metrics;
        global
            .events_reordered
            .fetch_add(stats.reordered * n, Ordering::Relaxed);
        global
            .late_events_dropped
            .fetch_add(stats.late_dropped * n, Ordering::Relaxed);
        global
            .late_events_admitted
            .fetch_add(stats.late_admitted * n, Ordering::Relaxed);
        global
            .watermarks_advanced
            .fetch_add(stats.watermarks * n, Ordering::Relaxed);
        for qs in &self.queries {
            qs.metrics
                .events_reordered
                .fetch_add(stats.reordered, Ordering::Relaxed);
            qs.metrics
                .late_events_dropped
                .fetch_add(stats.late_dropped, Ordering::Relaxed);
            qs.metrics
                .late_events_admitted
                .fetch_add(stats.late_admitted, Ordering::Relaxed);
            qs.metrics
                .watermarks_advanced
                .fetch_add(stats.watermarks, Ordering::Relaxed);
        }
    }

    /// Signals that no further events will be fed. Idempotent. Once the
    /// feed queue drains, the next cycle closes the remaining windows and
    /// the run winds down to completion.
    pub fn end_of_stream(&mut self) {
        self.eos = true;
    }

    /// Number of fed events not yet ingested.
    pub fn feed_len(&self) -> usize {
        self.feed.len()
    }

    /// Number of events ingested from the feed so far (the stream position
    /// of the next event). This is the authoritative input count: under
    /// streaming the total length is unknown up front, so reports take it
    /// from here at end of run.
    pub fn events_ingested(&self) -> u64 {
        self.next_pos
    }

    /// Complex events committed so far and not yet taken, tagged with their
    /// query (commit order; within one query: window order, detection order
    /// within a window).
    pub fn outputs(&self) -> &[(QueryId, ComplexEvent)] {
        &self.outputs
    }

    /// Takes the complex events committed since the last call, tagged with
    /// their query — the incremental output path of the engine session.
    /// Each query's subsequence is in its window order (detection order
    /// within a window).
    pub fn take_outputs(&mut self) -> Vec<(QueryId, ComplexEvent)> {
        std::mem::take(&mut self.outputs)
    }

    /// Consumes the splitter, returning all committed (undrained) complex
    /// events, tagged with their query.
    pub fn into_outputs(self) -> Vec<(QueryId, ComplexEvent)> {
        self.outputs
    }

    /// `true` if the last [`cycle`](Self::cycle) applied an op, ingested an
    /// event or retired a window. Threaded drivers yield when a cycle made
    /// no progress so operator instances are not starved of CPU time.
    pub fn made_progress(&self) -> bool {
        self.progress
    }

    /// Current dependency-tree size in window versions, summed over all
    /// deployed queries.
    pub fn tree_versions(&self) -> usize {
        self.queries.iter().map(|q| q.tree.version_count()).sum()
    }

    /// Ids of the currently deployed queries, in deployment order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.iter().map(|q| q.id).collect()
    }

    /// `true` while `qid` is deployed.
    pub fn has_query(&self, qid: QueryId) -> bool {
        self.query_index.contains_key(&qid)
    }

    /// Owning tenant of `qid`, or `None` for an unknown (retired) id.
    pub fn query_tenant(&self, qid: QueryId) -> Option<TenantId> {
        let &qi = self.query_index.get(&qid)?;
        Some(self.queries[qi].tenant)
    }

    /// Per-tenant metric rollups, in first-deploy order: each tenant's
    /// retired-query residual plus its live queries' snapshots, combined
    /// with [`MetricsSnapshot::accumulate`]. Every summable counter
    /// decomposes exactly over these rollups the same way it decomposes
    /// over [`per_query_metrics`](Self::per_query_metrics).
    pub fn tenant_metrics(&self) -> Vec<(TenantId, MetricsSnapshot)> {
        self.tenants
            .iter()
            .map(|t| {
                let mut acc = t.retired;
                for qid in &t.queries {
                    if let Some(&qi) = self.query_index.get(qid) {
                        acc.accumulate(&self.queries[qi].metrics.snapshot());
                    }
                }
                (t.id, acc)
            })
            .collect()
    }

    /// Per-query metric snapshots (deployment order). Engine-scoped
    /// counters (`sched_cycles`, `idle_steps`, `stalled_steps`,
    /// `store_windows_opened`) are zero here — they have no per-query
    /// attribution; `max_tree_versions` is each query's own tree high-water
    /// mark, not a share of the aggregate.
    pub fn per_query_metrics(&self) -> Vec<(QueryId, MetricsSnapshot)> {
        self.queries
            .iter()
            .map(|q| (q.id, q.metrics.snapshot()))
            .collect()
    }

    /// One maintenance + scheduling cycle. Returns `true` once all input is
    /// ingested and every deployed query's windows retired (the shared
    /// `done` flag is set).
    pub fn cycle(&mut self) -> bool {
        self.progress = false;
        self.apply_ops();
        self.apply_stats();
        self.ingest();
        self.retire();
        self.schedule();
        let metrics = &self.shared.metrics;
        let mut total_versions = 0u64;
        for qs in &mut self.queries {
            let (materialized, lazy_dropped) = qs.tree.take_lazy_stats();
            if materialized > 0 {
                metrics
                    .versions_materialized
                    .fetch_add(materialized, Ordering::Relaxed);
                qs.metrics
                    .versions_materialized
                    .fetch_add(materialized, Ordering::Relaxed);
            }
            if lazy_dropped > 0 {
                metrics
                    .lazy_versions_dropped
                    .fetch_add(lazy_dropped, Ordering::Relaxed);
                qs.metrics
                    .lazy_versions_dropped
                    .fetch_add(lazy_dropped, Ordering::Relaxed);
            }
            let size = qs.tree.version_count() as u64;
            qs.metrics.observe_tree_size(size);
            total_versions += size;
        }
        metrics.sched_cycles.fetch_add(1, Ordering::Relaxed);
        metrics.observe_tree_size(total_versions);
        let finished = if self.ingest_done && self.queries.iter().all(|q| q.tree.is_empty()) {
            self.shared.done.store(true, Ordering::Release);
            true
        } else {
            false
        };
        // Wake parked workers: this cycle may have published slots, flushed
        // fresh events into the store, or set the done flag. Free when
        // nobody is parked (one atomic load).
        self.shared.unpark_workers();
        finished
    }

    fn apply_ops(&mut self) {
        // One lock acquisition drains everything queued up to this point;
        // ops pushed while we process land in the next cycle's drain. The
        // drain order preserves each instance's FIFO — and therefore each
        // query's subsequence order, which retirement acks rely on.
        let mut ops = std::mem::take(&mut self.ops_scratch);
        self.shared.ops.pop_many(&mut ops, usize::MAX);
        let shared = Arc::clone(&self.shared);
        for (qid, op) in ops.drain(..) {
            self.progress = true;
            let Some(&qi) = self.query_index.get(&qid) else {
                // Retired query: the op is stale, its tree is gone.
                continue;
            };
            let qs = &mut self.queries[qi];
            let mut factory = SplitterFactory::for_query(&shared, qs);
            qs.apply_op(&shared.metrics, op, &mut factory);
            qs.finished_acked.extend(factory.acked_clones);
        }
        self.ops_scratch = ops;
    }

    fn apply_stats(&mut self) {
        while let Some((qid, batch)) = self.shared.stats.pop() {
            if let Some(&qi) = self.query_index.get(&qid) {
                self.queries[qi].predictor.observe_batch(&batch.transitions);
            }
        }
        for qs in &mut self.queries {
            let started = std::time::Instant::now();
            if qs.predictor.refresh() {
                let nanos = started.elapsed().as_nanos() as u64;
                let metrics = &self.shared.metrics;
                metrics.predictor_refreshes.fetch_add(1, Ordering::Relaxed);
                metrics
                    .predictor_refresh_nanos
                    .fetch_add(nanos, Ordering::Relaxed);
                qs.metrics
                    .predictor_refreshes
                    .fetch_add(1, Ordering::Relaxed);
                qs.metrics
                    .predictor_refresh_nanos
                    .fetch_add(nanos, Ordering::Relaxed);
            }
        }
    }

    fn ingest(&mut self) {
        if self.ingest_done {
            return;
        }
        let mut budget = self.config.ingest_per_cycle;
        while budget > 0 {
            let cap = budget.min(self.config.batch_size);
            let outcome = self.fill_batch(cap);
            budget -= self.batch.len();
            self.flush_batch();
            match outcome {
                FillOutcome::Full => {}
                FillOutcome::BackPressure | FillOutcome::SourceDry => return,
                FillOutcome::SourceExhausted => {
                    self.finish_ingest();
                    return;
                }
            }
        }
    }

    /// Speculative back-pressure (paper §3.2.2): stall ingestion while any
    /// query's tree is oversized — but never starve a root window of its
    /// remaining events (it must be able to finish so the tree can shrink).
    /// One slow query therefore throttles the whole shared feed; that is
    /// the deliberate semantics of a shared-stream session (all queries see
    /// the same prefix).
    fn backpressured(&self) -> bool {
        self.queries.iter().any(|q| {
            q.tree.speculative_load() >= self.config.max_tree_versions
                && q.live.front().is_none_or(|w| w.end_pos().is_some())
        })
    }

    /// Collects up to `cap` source events into the hand-off batch, applying
    /// window opens/closes of every spec group as they are discovered. The
    /// batch's event slices are distributed to their store buffers by
    /// [`flush_batch`](Self::flush_batch).
    fn fill_batch(&mut self, cap: usize) -> FillOutcome {
        debug_assert_eq!(
            self.batch.first_pos() + self.batch.len() as u64,
            self.next_pos,
            "batch continues the stream"
        );
        while self.batch.len() < cap {
            // The load counts windows pending on attach markers alongside
            // live versions: lazy attach keeps the version count low while
            // windows accumulate, and every completion-driven rebuild
            // spans all of them, so unbounded pending windows would blow
            // the cycle cost up exactly like unbounded versions.
            if self.backpressured() {
                return FillOutcome::BackPressure;
            }
            let Some(event) = self.feed.pop_front() else {
                return if self.eos {
                    FillOutcome::SourceExhausted
                } else {
                    FillOutcome::SourceDry
                };
            };
            self.progress = true;
            let pos = self.next_pos;
            self.next_pos += 1;
            for gi in 0..self.groups.len() {
                let mut closed = std::mem::take(&mut self.closed_buf);
                let opened = self.groups[gi].assigner.ingest(&event, &mut closed);
                // Closes exclude the current event, which is not yet in
                // the batch, so the closing window's slice is exactly the
                // batch tail so far.
                for bounds in closed.drain(..) {
                    self.close_group_window(gi, bounds.id, pos);
                }
                self.closed_buf = closed;
                // The current event proves relevance for the group's
                // deferred windows — all still open (a window closing
                // while deferred was just skipped above), so all of them
                // contain it. Attach before any window opening *on* this
                // event so each tree's window sequence stays ascending.
                self.flush_deferred(gi, &event);
                if let Some(opened) = opened {
                    // The window contains its start event — the one about
                    // to be pushed, at batch-relative index `batch.len()`.
                    self.open_group_window(gi, opened, &event);
                }
            }
            self.batch.push(event);
        }
        FillOutcome::Full
    }

    /// Attaches every deferred window of group `gi`'s members for which
    /// `event` is relevant. Deferral is all-or-nothing per query: the
    /// event is in every open window, so one relevant event attaches the
    /// query's whole deferred suffix (oldest first, keeping the tree's
    /// window ids ascending). The per-query fast path is one
    /// `VecDeque::is_empty` check.
    fn flush_deferred(&mut self, gi: usize, event: &Event) {
        let shared = Arc::clone(&self.shared);
        for mi in 0..self.groups[gi].members.len() {
            let qid = self.groups[gi].members[mi];
            let qi = *self
                .query_index
                .get(&qid)
                .expect("group member is registered");
            let qs = &mut self.queries[qi];
            if qs.deferred.is_empty() {
                continue;
            }
            if qs.filter.as_ref().is_some_and(|f| !f.relevant(event)) {
                continue;
            }
            let mut factory = SplitterFactory::for_query(&shared, qs);
            while let Some(info) = qs.deferred.pop_front() {
                qs.live.push_back(Arc::clone(&info));
                qs.tree.new_window(&info, &mut factory);
            }
            qs.finished_acked.extend(factory.acked_clones);
        }
    }

    /// Opens group `gi`'s next window: allocates the shared store buffer
    /// (once) and subscribes every current member with its own
    /// query-local [`WindowInfo`] cell. A group without members opens
    /// nothing — no buffer, no subscriptions. `event` is the window's
    /// start event: a member whose filter rejects it defers the attach
    /// (the buffer and close bookkeeping are shared and unaffected).
    fn open_group_window(&mut self, gi: usize, bounds: WindowBounds, event: &Event) {
        let g = &mut self.groups[gi];
        if g.members.is_empty() {
            return;
        }
        let store_id = self.next_store_id;
        self.next_store_id += 1;
        let start_pos = g.base_pos + bounds.start_pos;
        let members = g.members.clone();
        g.refs.insert(store_id, members.len());
        g.open.push(GroupOpenWindow {
            group_id: bounds.id,
            store_id,
            pending: self.batch.len(),
            infos: Vec::with_capacity(members.len()),
        });
        let ow = g.open.len() - 1;
        self.shared.store.open_window(store_id, start_pos);
        self.shared
            .metrics
            .store_windows_opened
            .fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&self.shared);
        for qid in members {
            let qi = *self
                .query_index
                .get(&qid)
                .expect("group member is registered");
            let qs = &mut self.queries[qi];
            let info = Arc::new(WindowInfo::with_store(
                bounds.id - qs.offset,
                store_id,
                start_pos,
                bounds.start_seq,
                bounds.start_ts,
            ));
            if qs.filter.as_ref().is_some_and(|f| !f.relevant(event)) {
                // The start event is irrelevant to this member: defer the
                // attach until a relevant event arrives (or skip the
                // window outright if none does before it closes).
                qs.deferred.push_back(Arc::clone(&info));
            } else {
                qs.live.push_back(Arc::clone(&info));
                let mut factory = SplitterFactory::for_query(&shared, qs);
                qs.tree.new_window(&info, &mut factory);
                qs.finished_acked.extend(factory.acked_clones);
            }
            self.groups[gi].open[ow].infos.push((qid, info));
        }
    }

    /// Closes group `gi`'s window `group_id` at exclusive end `end_pos`:
    /// records the buffer's final batch slice (distributed at the next
    /// flush), publishes the end position to every subscriber's cell and
    /// feeds each subscriber's running window-size average (paper Fig. 5:
    /// `Splitter.avgWindowSize`).
    fn close_group_window(&mut self, gi: usize, group_id: u64, end_pos: u64) {
        let batch_len = self.batch.len();
        let g = &mut self.groups[gi];
        let Some(i) = g.open.iter().position(|ow| ow.group_id == group_id) else {
            return;
        };
        let ow = g.open.remove(i);
        if ow.pending < batch_len {
            self.batch_closed.push((ow.store_id, ow.pending..batch_len));
        }
        let mut skips = 0u64;
        for (qid, info) in &ow.infos {
            info.set_end_pos(end_pos);
            let len = (end_pos - info.start_pos) as f64;
            let Some(&qi) = self.query_index.get(qid) else {
                continue;
            };
            let qs = &mut self.queries[qi];
            qs.closed_windows += 1;
            let n = qs.closed_windows as f64;
            qs.avg_window_size += (len - qs.avg_window_size) / n;
            // Still deferred at close: no event of the window passed the
            // filter, so the query can never match in it — skip it
            // entirely (no versions, no retirement, buffer ref released).
            if let Some(di) = qs.deferred.iter().position(|w| Arc::ptr_eq(w, info)) {
                qs.deferred.remove(di);
                qs.metrics.windows_skipped.fetch_add(1, Ordering::Relaxed);
                skips += 1;
            }
        }
        if skips > 0 {
            self.shared
                .metrics
                .windows_skipped
                .fetch_add(skips, Ordering::Relaxed);
            let g = &mut self.groups[gi];
            for _ in 0..skips {
                if let Some(r) = g.refs.get_mut(&ow.store_id) {
                    *r -= 1;
                    if *r == 0 {
                        g.refs.remove(&ow.store_id);
                        // A batch slice may still be queued for this
                        // buffer; `WindowStore::extend` drops slices for
                        // removed windows, so the flush stays correct.
                        self.shared.store.remove_window(ow.store_id);
                    }
                }
            }
        }
    }

    /// Seals the batch into one shared `Arc`, hands every touched store
    /// buffer its slice (one store write and one `Arc` clone per buffer —
    /// not per subscribing query), and publishes the ingestion watermark
    /// once.
    fn flush_batch(&mut self) {
        let len = self.batch.len();
        if len == 0 {
            debug_assert!(self.batch_closed.is_empty());
            return;
        }
        let next = EventBatch::with_capacity(self.next_pos, self.config.batch_size);
        let sealed = Arc::new(std::mem::replace(&mut self.batch, next));
        for (store_id, range) in self.batch_closed.drain(..) {
            self.shared.store.extend(store_id, &sealed, range);
        }
        for g in &mut self.groups {
            for ow in &mut g.open {
                self.shared
                    .store
                    .extend(ow.store_id, &sealed, ow.pending..len);
                ow.pending = 0; // relative to the next batch
            }
        }
        self.shared.ingested.store(self.next_pos, Ordering::Release);
    }

    fn finish_ingest(&mut self) {
        let total = self.next_pos;
        for gi in 0..self.groups.len() {
            let closed = self.groups[gi].assigner.finish();
            for bounds in closed {
                self.close_group_window(gi, bounds.id, total);
            }
        }
        self.ingest_done = true;
        self.shared.ingest_done.store(true, Ordering::Release);
    }

    /// Retires finished, confirmed root windows of every query, in query-id
    /// order (the deterministic commit order of one cycle).
    fn retire(&mut self) {
        for qi in 0..self.queries.len() {
            while self.retire_root_of(qi) {}
        }
    }

    /// Tries to retire query `qi`'s root window. Returns `true` when a
    /// window retired (there may be more behind it), `false` when the root
    /// is not ready — or was rolled back by the final validation.
    fn retire_root_of(&mut self, qi: usize) -> bool {
        let shared = Arc::clone(&self.shared);
        let qs = &mut self.queries[qi];
        let Some(root) = qs.tree.root_version() else {
            return false;
        };
        if !root.is_finished()
            || !qs.finished_acked.contains(&root.id())
            || qs.tree.root_blocked_by_cg()
        {
            return false;
        }
        let root = Arc::clone(root);
        // Final validation: the surviving version must never have processed
        // an event a suppressed (now final) group consumed.
        if !root.is_consistent() {
            shared.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
            qs.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
            qs.finished_acked.remove(&root.id());
            let outcome = root.rollback_state();
            if outcome.restored_checkpoint {
                shared
                    .metrics
                    .checkpoint_restores
                    .fetch_add(1, Ordering::Relaxed);
                qs.metrics
                    .checkpoint_restores
                    .fetch_add(1, Ordering::Relaxed);
            }
            let carried = root.lock().completed_cells.clone();
            let newer: Vec<Arc<WindowInfo>> = qs
                .live
                .iter()
                .filter(|w| w.id > root.window().id)
                .cloned()
                .collect();
            let mut factory = SplitterFactory::for_query(&shared, qs);
            let dropped = qs
                .tree
                .rollback_rebuild(root.id(), &newer, carried, &mut factory)
                as u64;
            qs.revoke(&shared.metrics, &outcome.revoked, &mut factory);
            qs.finished_acked.extend(factory.acked_clones);
            if dropped > 0 {
                shared
                    .metrics
                    .versions_dropped
                    .fetch_add(dropped, Ordering::Relaxed);
                qs.metrics
                    .versions_dropped
                    .fetch_add(dropped, Ordering::Relaxed);
            }
            return false;
        }
        // Emit buffered complex events in detection order (paper §3.3).
        let emitted = {
            let mut inner = root.lock();
            std::mem::take(&mut inner.outputs)
        };
        self.progress = true;
        // Retirement materializes a pending-attach child, so it takes the
        // factory too.
        let mut factory = SplitterFactory::for_query(&shared, qs);
        let retired = qs.tree.retire_root(&mut factory);
        qs.finished_acked.extend(factory.acked_clones);
        qs.finished_acked.remove(&retired.id());
        // Acks of versions dropped from the tree are dead; prune them here
        // (retirement is rare relative to cycles).
        let tree = &qs.tree;
        qs.finished_acked.retain(|id| tree.version(*id).is_some());
        debug_assert_eq!(
            qs.live.front().map(|w| w.id),
            Some(retired.window().id),
            "windows retire in id order"
        );
        qs.live.pop_front();
        shared
            .metrics
            .windows_retired
            .fetch_add(1, Ordering::Relaxed);
        qs.metrics.windows_retired.fetch_add(1, Ordering::Relaxed);
        let emitted_n = emitted.len() as u64;
        if emitted_n > 0 {
            shared
                .metrics
                .outputs_emitted
                .fetch_add(emitted_n, Ordering::Relaxed);
            qs.metrics
                .outputs_emitted
                .fetch_add(emitted_n, Ordering::Relaxed);
        }
        let qid = qs.id;
        let group = qs.group;
        let store_id = retired.window().store_id;
        self.outputs.extend(emitted.into_iter().map(|ce| (qid, ce)));
        // Release the window's shared buffer reference; the buffer dies
        // with its last subscriber (payloads shared with younger windows
        // stay alive through their own buffers).
        let g = &mut self.groups[group];
        if let Some(r) = g.refs.get_mut(&store_id) {
            *r -= 1;
            if *r == 0 {
                g.refs.remove(&store_id);
                self.shared.store.remove_window(store_id);
            }
        }
        true
    }

    /// Running average window length in events of the first deployed query
    /// (`0.0` with no queries) — the prediction input's window-size term
    /// (paper Fig. 5: `Splitter.avgWindowSize`). Seeded from the query's
    /// window spec until its first window closes.
    pub fn avg_window_size(&self) -> f64 {
        self.queries.first().map_or(0.0, |q| q.avg_window_size)
    }

    /// Prediction input `n` for a consumption group at `pos_in_window`:
    /// the expected further events in its window under the running average
    /// window size, clamped to ≥ 1 — a stale or short estimate (e.g. a
    /// group already past the average) must never feed the predictor a
    /// non-positive horizon.
    fn events_left(avg_window_size: f64, pos_in_window: u64) -> i64 {
        (avg_window_size as i64 - pos_in_window as i64).max(1)
    }

    /// Query `qi`'s tree nominates its top `k` versions with survival
    /// probabilities (materializing lazy branches on first schedule) into
    /// `out`, decrementing `budget` by every version the nomination
    /// materialized — the per-tenant speculation budget's enforcement
    /// point (an exhausted budget leaves lazy branches unmaterialized
    /// instead of creating version state).
    fn nominate(
        &mut self,
        qi: usize,
        k: usize,
        budget: &mut usize,
        out: &mut Vec<(f64, Arc<VersionState>)>,
        shared: &Arc<SharedState>,
    ) {
        let qs = &mut self.queries[qi];
        let mut factory = SplitterFactory::for_query(shared, qs);
        let avg = qs.avg_window_size;
        let predictor = &*qs.predictor;
        let prob = move |cell: &CgCell| -> f64 {
            let events_left = Self::events_left(avg, cell.pos_in_window());
            predictor.predict(cell.delta(), events_left)
        };
        out.extend(
            qs.tree
                .top_k_scored_budgeted(k, &prob, &mut factory, budget),
        );
        qs.finished_acked.extend(factory.acked_clones);
    }

    /// Remaining per-cycle speculation budget of tenant `ti`: its
    /// [`TenantQuota::max_versions`] cap minus the versions its queries'
    /// trees already hold (`usize::MAX` when uncapped).
    fn tenant_budget(&self, ti: usize) -> usize {
        let t = &self.tenants[ti];
        let Some(cap) = t.quota.max_versions else {
            return usize::MAX;
        };
        let used: usize = t
            .queries
            .iter()
            .filter_map(|qid| self.query_index.get(qid))
            .map(|&qi| self.queries[qi].tree.version_count())
            .sum();
        cap.saturating_sub(used)
    }

    /// Selects and schedules the top-k window versions across all deployed
    /// queries.
    ///
    /// With at most one active tenant (the untenanted and single-tenant
    /// cases): each query's tree nominates its own top k, the nominations
    /// merge on probability (stable, so each tree's internal order — and
    /// query order on exact ties — is preserved), and the best k overall
    /// take the instance slots via the usual two-pass assignment (paper
    /// Fig. 7). With one deployed query this reduces exactly to the
    /// single-query schedule.
    ///
    /// With several active tenants, the k slots are split by weighted
    /// fair share with deficit-round-robin carryover: each tenant merges
    /// its own nominations into a ranked list (of at most k, under its
    /// speculation budget), tenants with work accrue
    /// `k · weight / Σ weights` credit per cycle (clamped to k; reset
    /// when idle, so the share is work-conserving), and slots go one at a
    /// time to the highest-credit tenant with nominations left — lowest
    /// tenant id on ties. The chosen versions are then ranked on
    /// probability again so slot assignment stays probability-ordered.
    fn schedule(&mut self) {
        let k = self.config.instances;
        let shared = Arc::clone(&self.shared);
        let mut active: Vec<usize> = (0..self.tenants.len())
            .filter(|&ti| !self.tenants[ti].queries.is_empty())
            .collect();
        active.sort_by_key(|&ti| self.tenants[ti].id);
        let mut cands: Vec<(f64, Arc<VersionState>)> = Vec::new();
        if active.len() <= 1 {
            let mut budget = active
                .first()
                .map_or(usize::MAX, |&ti| self.tenant_budget(ti));
            for qi in 0..self.queries.len() {
                self.nominate(qi, k, &mut budget, &mut cands, &shared);
            }
            cands.sort_by(|a, b| b.0.total_cmp(&a.0));
            cands.truncate(k);
        } else {
            // Per-tenant ranked nomination lists, each under its own
            // speculation budget.
            let mut lists: Vec<(usize, RankedNominations)> = Vec::new();
            for &ti in &active {
                let mut budget = self.tenant_budget(ti);
                let mut list = Vec::new();
                let members = self.tenants[ti].queries.clone();
                for qid in members {
                    let qi = *self
                        .query_index
                        .get(&qid)
                        .expect("tenant member is registered");
                    self.nominate(qi, k, &mut budget, &mut list, &shared);
                }
                list.sort_by(|a, b| b.0.total_cmp(&a.0));
                list.truncate(k);
                lists.push((ti, list));
            }
            // Credit accrual: only tenants with nominations share the
            // cycle (work-conserving); everyone else resets to zero so
            // idle stretches cannot bank scheduling debt.
            let total_weight: f64 = lists
                .iter()
                .filter(|(_, l)| !l.is_empty())
                .map(|&(ti, _)| f64::from(self.tenants[ti].quota.weight))
                .sum();
            let mut has_work = vec![false; self.tenants.len()];
            for (ti, list) in &lists {
                has_work[*ti] = !list.is_empty();
            }
            for (ti, t) in self.tenants.iter_mut().enumerate() {
                if has_work[ti] {
                    let share = k as f64 * f64::from(t.quota.weight) / total_weight;
                    t.credit = (t.credit + share).min(k as f64);
                } else {
                    t.credit = 0.0;
                }
            }
            // Grant loop: one slot at a time to the highest-credit tenant
            // with nominations left (lists are in ascending tenant-id
            // order, and strict comparison keeps the earliest on ties).
            let mut taken = vec![0usize; lists.len()];
            while cands.len() < k {
                let mut best: Option<(usize, f64)> = None;
                for (li, (ti, list)) in lists.iter().enumerate() {
                    if taken[li] >= list.len() {
                        continue;
                    }
                    let credit = self.tenants[*ti].credit;
                    if best.is_none_or(|(_, c)| credit > c) {
                        best = Some((li, credit));
                    }
                }
                let Some((li, _)) = best else {
                    break;
                };
                let (ti, list) = &lists[li];
                cands.push(list[taken[li]].clone());
                taken[li] += 1;
                self.tenants[*ti].credit -= 1.0;
            }
            cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        }

        // Two-pass assignment (paper Fig. 7): keep already-placed versions,
        // hand the rest to free instances. Both passes run against the
        // splitter-local shadow — no slot locks — and only slots whose
        // assignment actually changes are published.
        let mut to_place: Vec<Arc<VersionState>> = Vec::new();
        let mut kept: Vec<bool> = vec![false; self.sched_shadow.len()];
        'version: for (_, v) in &cands {
            for (i, cur) in self.sched_shadow.iter().enumerate() {
                if kept[i] {
                    continue;
                }
                if cur.as_ref().is_some_and(|s| Arc::ptr_eq(s, v)) {
                    kept[i] = true;
                    continue 'version;
                }
            }
            to_place.push(Arc::clone(v));
        }
        let mut to_place = to_place.into_iter();
        for (i, kept) in kept.iter().enumerate() {
            if *kept {
                continue;
            }
            let next = to_place.next();
            let unchanged = match (&self.sched_shadow[i], &next) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            };
            if !unchanged {
                self.shared.slots[i].publish(next.clone());
                self.sched_shadow[i] = next;
            }
        }
    }
}

/// The splitter's [`VersionFactory`] for one query: allocates ids from the
/// shared counters, keeps the `versions_created` metrics (aggregate and
/// per-query), stamps new versions with the owning query, and records
/// clones of already-finished versions so they can retire without a fresh
/// `WvFinished` op.
struct SplitterFactory {
    shared: Arc<SharedState>,
    query: Arc<Query>,
    query_id: QueryId,
    qmetrics: Arc<Metrics>,
    acked_clones: Vec<WvId>,
}

impl SplitterFactory {
    fn for_query(shared: &Arc<SharedState>, qs: &QueryState) -> Self {
        SplitterFactory {
            shared: Arc::clone(shared),
            query: Arc::clone(&qs.query),
            query_id: qs.id,
            qmetrics: Arc::clone(&qs.metrics),
            acked_clones: Vec::new(),
        }
    }
}

impl VersionFactory for SplitterFactory {
    fn fresh(
        &mut self,
        window: &Arc<WindowInfo>,
        suppressed: Vec<Arc<CgCell>>,
    ) -> Arc<VersionState> {
        self.shared
            .metrics
            .versions_created
            .fetch_add(1, Ordering::Relaxed);
        self.qmetrics
            .versions_created
            .fetch_add(1, Ordering::Relaxed);
        VersionState::for_query(
            self.shared.alloc_wv_id(),
            Arc::clone(window),
            Arc::clone(&self.query),
            suppressed,
            self.query_id,
            Arc::clone(&self.qmetrics),
        )
    }

    fn clone_of(
        &mut self,
        source: &Arc<VersionState>,
        suppressed: Vec<Arc<CgCell>>,
        expected_open: &[CgId],
    ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)> {
        let shared = Arc::clone(&self.shared);
        let mut mk_twin = |cell: &CgCell| Arc::new(cell.twin(shared.alloc_cg_id()));
        let (version, twins) = VersionState::clone_speculative(
            source,
            self.shared.alloc_wv_id(),
            suppressed,
            expected_open,
            &mut mk_twin,
        )?;
        self.shared
            .metrics
            .versions_created
            .fetch_add(1, Ordering::Relaxed);
        self.qmetrics
            .versions_created
            .fetch_add(1, Ordering::Relaxed);
        if version.is_finished() {
            self.acked_clones.push(version.id());
        }
        Some((version, twins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceCore, StepOutcome};
    use spectre_events::{AttrKey, EventType, Schema};
    use spectre_query::{ConsumptionPolicy, Expr, Pattern, WindowSpec};

    fn ev(seq: u64, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(seq)
            .attr(AttrKey::new(0), x)
            .build()
    }

    fn ab_query() -> Arc<Query> {
        let x = AttrKey::new(0);
        Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", Expr::current(x).eq_(Expr::value(1.0)))
                        .one("B", Expr::current(x).eq_(Expr::value(2.0)))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::count_sliding(4, 2).unwrap())
                .consumption(ConsumptionPolicy::All)
                .build()
                .unwrap(),
        )
    }

    fn untag(tagged: Vec<(QueryId, ComplexEvent)>) -> Vec<ComplexEvent> {
        tagged.into_iter().map(|(_, ce)| ce).collect()
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "timestamp-monotone")]
    fn non_monotone_feed_is_caught_behind_a_reorder_stage() {
        let config = SpectreConfig::with_instances(1);
        let shared = SharedState::for_config(&config);
        let mut splitter = Splitter::new(ab_query(), config, shared);
        splitter.expect_monotone(true);
        splitter.feed(ev(0, 1.0)); // ts 0
        splitter.feed(ev(5, 2.0)); // ts 5
        splitter.feed(ev(3, 1.0)); // ts 3 regresses — contract violation
    }

    #[test]
    fn feed_late_bypasses_the_monotone_contract() {
        let config = SpectreConfig::with_instances(1);
        let shared = SharedState::for_config(&config);
        let mut splitter = Splitter::new(ab_query(), config, shared);
        splitter.expect_monotone(true);
        splitter.feed(ev(5, 1.0));
        splitter.feed_late(ev(3, 2.0)); // admitted late: exempt
        splitter.feed(ev(5, 1.0)); // equal ts is fine
    }

    #[test]
    fn reorder_stats_decompose_over_deployed_queries() {
        let config = SpectreConfig::with_instances(1);
        let shared = SharedState::for_config(&config);
        let mut splitter = Splitter::multi(config, Arc::clone(&shared));
        let stats = crate::reorder::ReorderStats {
            reordered: 3,
            late_dropped: 2,
            late_admitted: 1,
            watermarks: 7,
        };
        // No queries deployed: nothing to attribute the delta to.
        splitter.record_reorder(&stats);
        assert_eq!(shared.metrics.snapshot().events_reordered, 0);
        splitter.deploy_query(ab_query()).unwrap();
        splitter.deploy_query(ab_query()).unwrap();
        splitter.record_reorder(&stats);
        let global = shared.metrics.snapshot();
        assert_eq!(global.events_reordered, 6);
        assert_eq!(global.late_events_dropped, 4);
        assert_eq!(global.late_events_admitted, 2);
        assert_eq!(global.watermarks_advanced, 14);
        for (_, per) in splitter.per_query_metrics() {
            assert_eq!(per.events_reordered, 3);
            assert_eq!(per.late_events_dropped, 2);
            assert_eq!(per.late_events_admitted, 1);
            assert_eq!(per.watermarks_advanced, 7);
        }
    }

    /// Drives splitter + instances single-threadedly until done.
    fn drive_config(
        query: Arc<Query>,
        events: Vec<Event>,
        config: SpectreConfig,
    ) -> Vec<ComplexEvent> {
        let shared = SharedState::for_config(&config);
        let k = config.instances;
        let check_freq = config.consistency_check_freq;
        let batch = config.batch_size;
        let mut splitter = Splitter::new(query, config, Arc::clone(&shared));
        for event in events {
            splitter.feed(event);
        }
        splitter.end_of_stream();
        let mut instances: Vec<_> = (0..k)
            .map(|i| InstanceCore::new(i, check_freq).with_batch(batch))
            .collect();
        for round in 0..1_000_000u64 {
            if splitter.cycle() {
                return untag(splitter.into_outputs());
            }
            for inst in &mut instances {
                let _ = inst.step(&shared);
            }
            let _ = round;
        }
        panic!("did not converge");
    }

    fn drive(query: Arc<Query>, events: Vec<Event>, k: usize) -> Vec<ComplexEvent> {
        drive_config(query, events, SpectreConfig::with_instances(k))
    }

    #[test]
    fn small_stream_matches_sequential_reference() {
        let _ = Schema::new();
        let query = ab_query();
        let events: Vec<Event> = vec![
            ev(0, 1.0),
            ev(1, 2.0),
            ev(2, 1.0),
            ev(3, 9.0),
            ev(4, 2.0),
            ev(5, 1.0),
            ev(6, 2.0),
            ev(7, 9.0),
        ];
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
        for k in [1usize, 2, 4] {
            let got = drive(Arc::clone(&query), events.clone(), k);
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn empty_stream_terminates() {
        let query = ab_query();
        let got = drive(query, vec![], 2);
        assert!(got.is_empty());
    }

    #[test]
    fn stream_without_matches_terminates() {
        let query = ab_query();
        let events: Vec<Event> = (0..50).map(|i| ev(i, 9.0)).collect();
        let got = drive(query, events, 3);
        assert!(got.is_empty());
    }

    #[test]
    fn outputs_identical_across_batch_sizes_and_shard_counts() {
        // The batched hand-off and store sharding are pure mechanics: for
        // any batch size (including the degenerate 1 = the original
        // event-at-a-time path) and any shard count, the emitted complex
        // events are identical.
        let query = ab_query();
        let events: Vec<Event> = (0..200)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 1.0, 2.0, 9.0][i as usize % 6]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
        assert!(!expected.is_empty());
        for batch in [1usize, 7, 64, 1024] {
            for shards in [1usize, 8] {
                let config = SpectreConfig::with_batching(3, batch, shards);
                let got = drive_config(Arc::clone(&query), events.clone(), config);
                assert_eq!(got, expected, "batch = {batch}, shards = {shards}");
            }
        }
    }

    #[test]
    fn single_instance_behaves_like_sequential() {
        let query = ab_query();
        let events: Vec<Event> = (0..100)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 9.0][i as usize % 4]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
        let got = drive(query, events, 1);
        assert_eq!(got, expected);
    }

    #[test]
    fn two_same_spec_queries_share_store_buffers() {
        // Two queries with equal window specs: every window is stored once
        // (one store buffer per group window), each query still gets its
        // own outputs with its own local window ids.
        let query_a = ab_query();
        let query_b = ab_query();
        let events: Vec<Event> = (0..60)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 1.0, 2.0, 9.0][i as usize % 6]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query_a, &events).complex_events;
        assert!(!expected.is_empty());

        let config = SpectreConfig::with_instances(2);
        let shared = SharedState::for_config(&config);
        let mut splitter = Splitter::multi(config.clone(), Arc::clone(&shared));
        let qa = splitter.deploy_query(Arc::clone(&query_a)).unwrap();
        let qb = splitter.deploy_query(Arc::clone(&query_b)).unwrap();
        assert_ne!(qa, qb);
        for event in &events {
            splitter.feed(event.clone());
        }
        splitter.end_of_stream();
        let mut instances: Vec<_> = (0..2)
            .map(|i| InstanceCore::new(i, config.consistency_check_freq))
            .collect();
        for _ in 0..1_000_000u64 {
            if splitter.cycle() {
                let outputs = splitter.into_outputs();
                let a: Vec<ComplexEvent> = outputs
                    .iter()
                    .filter(|(q, _)| *q == qa)
                    .map(|(_, ce)| ce.clone())
                    .collect();
                let b: Vec<ComplexEvent> = outputs
                    .iter()
                    .filter(|(q, _)| *q == qb)
                    .map(|(_, ce)| ce.clone())
                    .collect();
                assert_eq!(a, expected, "query A");
                assert_eq!(b, expected, "query B");
                // Dedup: the session opened exactly as many store buffers
                // as one query alone would have (windows stored once).
                let snap = shared.metrics.snapshot();
                assert_eq!(snap.store_windows_opened * 2, snap.windows_retired);
                return;
            }
            for inst in &mut instances {
                let _ = inst.step(&shared);
            }
        }
        panic!("did not converge");
    }

    #[test]
    fn retire_unknown_query_is_none() {
        let mut splitter = Splitter::multi(SpectreConfig::with_instances(1), SharedState::new(1));
        assert!(splitter.retire_query(QueryId(3)).is_none());
        let qid = splitter.deploy_query(ab_query()).unwrap();
        assert!(splitter.has_query(qid));
        assert!(splitter.retire_query(qid).is_some());
        assert!(!splitter.has_query(qid));
        assert!(splitter.retire_query(qid).is_none(), "ids are not reused");
    }

    #[test]
    fn warmup_window_size_estimate_derives_from_spec() {
        use spectre_query::window::{WindowClose, WindowOpen};

        // Count windows: the estimate is exact before the first close.
        let shared = SharedState::new(1);
        let splitter = Splitter::new(
            ab_query(), // ws = 4
            SpectreConfig::with_instances(1),
            shared,
        );
        assert_eq!(splitter.avg_window_size(), 4.0);

        // Time windows: the duration in ticks stands in for the event
        // count — derived from the spec, not a hardcoded constant.
        let x = AttrKey::new(0);
        let time_query = Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", Expr::current(x).eq_(Expr::value(1.0)))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::new(WindowOpen::EverySlide(5), WindowClose::Time(250)).unwrap())
                .build()
                .unwrap(),
        );
        let shared = SharedState::new(1);
        let mut splitter = Splitter::new(time_query, SpectreConfig::with_instances(1), shared);
        for i in 0..4 {
            splitter.feed(ev(i, 9.0));
        }
        splitter.end_of_stream();
        assert_eq!(splitter.avg_window_size(), 250.0);
        // The first cycle ingests the whole (short) stream and the final
        // flush closes the only window at 4 events: the measured length
        // replaces the warm-up estimate.
        splitter.cycle();
        assert_eq!(splitter.avg_window_size(), 4.0);
    }

    #[test]
    fn prediction_events_left_clamps_to_at_least_one() {
        assert_eq!(Splitter::events_left(200.0, 10), 190);
        // At or past the average the horizon floors at one expected
        // event, matching the model's own clamp.
        assert_eq!(Splitter::events_left(200.0, 200), 1);
        assert_eq!(Splitter::events_left(200.0, 5000), 1);
        // A degenerate (zero) average must not produce a zero horizon.
        assert_eq!(Splitter::events_left(0.0, 0), 1);
    }

    #[test]
    fn dry_feed_pauses_ingestion_until_end_of_stream() {
        // A feed that runs dry mid-stream pauses ingestion — cycles keep
        // doing maintenance without terminating — and ingestion resumes
        // seamlessly when more events arrive; explicit end-of-stream is
        // what lets the run wind down.
        let query = ab_query();
        let events: Vec<Event> = (0..40)
            .map(|i| ev(i, [1.0, 9.0, 2.0, 1.0, 2.0, 9.0][i as usize % 6]))
            .collect();
        let expected = spectre_baselines::run_sequential(&query, &events).complex_events;

        let shared = SharedState::new(1);
        let mut splitter = Splitter::new(
            Arc::clone(&query),
            SpectreConfig::with_instances(1),
            Arc::clone(&shared),
        );
        let mut inst = InstanceCore::new(0, 64);
        let (head, tail) = events.split_at(7);
        for event in head {
            splitter.feed(event.clone());
        }
        for _ in 0..20 {
            assert!(!splitter.cycle(), "dry feed must not terminate the run");
            let _ = inst.step(&shared);
        }
        assert_eq!(splitter.events_ingested(), 7);
        for event in tail {
            splitter.feed(event.clone());
        }
        splitter.end_of_stream();
        for _ in 0..1_000_000u64 {
            if splitter.cycle() {
                assert_eq!(splitter.events_ingested(), 40);
                assert_eq!(untag(splitter.into_outputs()), expected);
                return;
            }
            let _ = inst.step(&shared);
        }
        panic!("did not converge");
    }

    #[test]
    fn instance_outcomes_cover_stall() {
        // A splitter that ingests slowly: instances must stall, not skip.
        let query = ab_query();
        let shared = SharedState::new(1);
        let config = SpectreConfig {
            instances: 1,
            ingest_per_cycle: 1,
            ..Default::default()
        };
        let events: Vec<Event> = vec![ev(0, 1.0), ev(1, 2.0), ev(2, 9.0), ev(3, 9.0)];
        let mut splitter = Splitter::new(query, config, Arc::clone(&shared));
        for event in events {
            splitter.feed(event);
        }
        splitter.end_of_stream();
        let mut inst = InstanceCore::new(0, 64);
        splitter.cycle();
        // one event ingested; process it, then stall
        assert_eq!(inst.step(&shared), StepOutcome::Worked);
        assert_eq!(inst.step(&shared), StepOutcome::Stalled);
        for _ in 0..100 {
            if splitter.cycle() {
                break;
            }
            let _ = inst.step(&shared);
        }
        assert!(shared.is_done());
    }
}
