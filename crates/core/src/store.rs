//! Sharded window store and window bookkeeping.
//!
//! The splitter hands each sealed [`EventBatch`] to every window that
//! overlaps it — one `Arc` clone and one shard-lock acquisition per
//! (window, batch), never per event — and operator instances read their
//! scheduled window's events back by *window-relative index* as
//! [`EventRun`] slices of those shared batches. Window boundaries are
//! described by [`WindowInfo`] cells shared between the splitter (which
//! discovers the end position during ingestion) and all versions of the
//! window (paper §2.2: window boundaries are kept in shared memory).
//!
//! # Sharding and per-window locking
//!
//! Buffers live in [`WindowStore`], which is sharded by window-id hash:
//! window `w` belongs to shard `w mod shards`. Window ids are allocated
//! sequentially, so consecutive — and therefore concurrently live — windows
//! land on *different* shards. The shard lock guards only the window *map*
//! (open/remove take it for writing; lookups read it); each buffer carries
//! its own lock ([`WindowBuf`]), so the splitter appending to one window
//! never blocks instances reading any other window — not even one on the
//! same shard — and instances cache the buffer `Arc` across steps
//! ([`WindowStore::window_buf`]) to skip the map lookup entirely. With
//! `shards = 1` the store degenerates to a single map lock; the output is
//! identical for every shard count (the shard map is pure placement, never
//! ordering).
//!
//! # Batching
//!
//! A window's buffer is a list of *segments*, each a sub-range of one
//! shared hand-off batch. Writers ([`WindowStore::extend`]) append one
//! segment per (window, batch); readers ([`WindowStore::read_run`]) fetch
//! up to a whole batch of events under a single buffer-lock acquisition.
//! Event payloads live inside the batches and are shared by every
//! overlapping window — per-event allocation and reference counting are
//! gone from the hot path entirely.
//!
//! Because every window's buffer references exactly the window's own
//! events, pruning is trivial: retiring a window removes its buffer
//! ([`WindowStore::remove_window`]), and a batch is freed when the last
//! window referencing it retires.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spectre_events::{Event, Seq, Timestamp};

use crate::splitter::EventBatch;

/// Sentinel for "window end not yet known".
pub const END_UNKNOWN: u64 = u64::MAX;

/// Shared, immutable-except-end description of one window.
#[derive(Debug)]
pub struct WindowInfo {
    /// Query-local window id (a query's windows are totally ordered by id,
    /// paper §3.1). Dependency-tree ordering, revocation filtering and
    /// retirement order all compare these, so they restart at 0 for each
    /// deployed query.
    pub id: u64,
    /// Id of the event buffer in the shared [`WindowStore`]. Engine-global:
    /// same-spec windows of different queries carry *distinct* `WindowInfo`
    /// cells (their local `id`s differ) but the *same* `store_id`, so the
    /// events are buffered once. In a single-query session `store_id == id`.
    pub store_id: u64,
    /// Position of the window's start event.
    pub start_pos: u64,
    /// Sequence number of the start event.
    pub start_seq: Seq,
    /// Timestamp of the start event.
    pub start_ts: Timestamp,
    /// Exclusive end position; [`END_UNKNOWN`] until the splitter observes
    /// the close condition.
    end_pos: AtomicU64,
}

impl WindowInfo {
    /// Creates a window whose end is not yet known, with `store_id == id`
    /// (the single-query layout).
    pub fn new(id: u64, start_pos: u64, start_seq: Seq, start_ts: Timestamp) -> Self {
        Self::with_store(id, id, start_pos, start_seq, start_ts)
    }

    /// Creates a window whose end is not yet known, reading its events from
    /// the shared buffer `store_id` (which other queries' windows may share).
    pub fn with_store(
        id: u64,
        store_id: u64,
        start_pos: u64,
        start_seq: Seq,
        start_ts: Timestamp,
    ) -> Self {
        WindowInfo {
            id,
            store_id,
            start_pos,
            start_seq,
            start_ts,
            end_pos: AtomicU64::new(END_UNKNOWN),
        }
    }

    /// The exclusive end position, if known.
    pub fn end_pos(&self) -> Option<u64> {
        match self.end_pos.load(Ordering::Acquire) {
            END_UNKNOWN => None,
            v => Some(v),
        }
    }

    /// Publishes the end position (idempotent; called by the splitter).
    pub fn set_end_pos(&self, end: u64) {
        self.end_pos.store(end, Ordering::Release);
    }

    /// `true` if `pos` lies inside the window (given current knowledge).
    pub fn contains_pos(&self, pos: u64) -> bool {
        pos >= self.start_pos && self.end_pos().is_none_or(|e| pos < e)
    }
}

/// A contiguous run of window events handed to an operator instance: one
/// shared hand-off batch plus the sub-range of it that belongs to the
/// reading window. Holding the run keeps the batch alive; the events are
/// read in place, with no per-event copies or reference counts.
#[derive(Debug, Clone)]
pub struct EventRun {
    batch: Arc<EventBatch>,
    range: Range<usize>,
}

impl EventRun {
    /// The run's events, in stream order.
    pub fn events(&self) -> &[Event] {
        &self.batch.events()[self.range.clone()]
    }

    /// Number of events in the run.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` for an empty run (the store never produces one).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// One segment of a window's buffer: a sub-range of one shared batch.
#[derive(Debug)]
struct Seg {
    /// Window-relative index of the segment's first event.
    first: u64,
    batch: Arc<EventBatch>,
    range: Range<usize>,
}

/// The mutable part of a window's buffer, behind the per-window lock.
#[derive(Debug, Default)]
struct BufState {
    len: u64,
    segs: Vec<Seg>,
}

/// One window's event buffer: the segments covering window-relative
/// indices `[0, len)`, ascending, behind a *per-window* lock.
///
/// Shard locks only guard the window map (open/remove); appends and reads
/// synchronize here, per window. The splitter extending window `w` therefore
/// never blocks an instance reading window `w'` on the same shard — shard
/// traffic is read-mostly, and the write path of one window contends only
/// with its own readers. Instances hold a clone of the buffer's `Arc`
/// (via [`WindowStore::window_buf`]) across steps of the same window, so
/// the per-step shard-map lookup disappears from the run-read hot path.
#[derive(Debug)]
pub struct WindowBuf {
    start_pos: u64,
    state: RwLock<BufState>,
}

impl WindowBuf {
    fn new(start_pos: u64) -> Self {
        WindowBuf {
            start_pos,
            state: RwLock::new(BufState::default()),
        }
    }

    /// The stream position of the window's first event.
    pub fn start_pos(&self) -> u64 {
        self.start_pos
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> u64 {
        self.state.read().len
    }

    /// `true` while nothing has been ingested into the buffer.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn extend(&self, batch: &Arc<EventBatch>, range: Range<usize>) {
        let mut st = self.state.write();
        let first = st.len;
        st.len += range.len() as u64;
        st.segs.push(Seg {
            first,
            batch: Arc::clone(batch),
            range,
        });
    }

    /// Collects up to `max` events starting at window-relative index `from`
    /// into `out` as [`EventRun`] slices (appended; `out` is *not*
    /// cleared). Returns the number of events covered — `0` when the events
    /// are not yet ingested.
    pub fn read_run(&self, from: u64, max: usize, out: &mut Vec<EventRun>) -> usize {
        let st = self.state.read();
        if from >= st.len {
            return 0;
        }
        let mut idx = st
            .segs
            .partition_point(|s| s.first + s.range.len() as u64 <= from);
        let mut remaining = max;
        let mut covered = 0usize;
        while remaining > 0 {
            let Some(seg) = st.segs.get(idx) else { break };
            let skip = (from.max(seg.first) - seg.first) as usize;
            let take = (seg.range.len() - skip).min(remaining);
            if take == 0 {
                break;
            }
            let start = seg.range.start + skip;
            out.push(EventRun {
                batch: Arc::clone(&seg.batch),
                range: start..start + take,
            });
            covered += take;
            remaining -= take;
            idx += 1;
        }
        covered
    }

    fn get(&self, idx: u64) -> Option<Event> {
        let st = self.state.read();
        let si = st
            .segs
            .partition_point(|s| s.first + s.range.len() as u64 <= idx);
        let seg = st.segs.get(si)?;
        let off = idx.checked_sub(seg.first)? as usize;
        seg.batch.events().get(seg.range.start + off).cloned()
    }
}

/// One shard: the buffers of all live windows hashing to it. The map holds
/// `Arc`s so lookups can hand the buffer out and drop the shard lock
/// immediately.
#[derive(Debug, Default)]
struct Shard {
    windows: HashMap<u64, Arc<WindowBuf>>,
}

/// Sharded per-window event store (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_core::splitter::EventBatch;
/// use spectre_core::store::WindowStore;
/// use spectre_events::{Event, EventType};
///
/// let store = WindowStore::new(8);
/// store.open_window(0, 0);
/// let mut batch = EventBatch::with_capacity(0, 3);
/// for seq in 0..3 {
///     batch.push(Event::builder(EventType::new(0)).seq(seq).ts(seq).build());
/// }
/// let batch = Arc::new(batch);
/// store.extend(0, &batch, 0..3); // one lock + one Arc clone for the run
///
/// let mut runs = Vec::new();
/// assert_eq!(store.read_run(0, 1, 16, &mut runs), 2); // events 1 and 2
/// assert_eq!(runs[0].events()[0].seq(), 1);
///
/// store.remove_window(0); // retirement frees the buffer
/// runs.clear();
/// assert_eq!(store.read_run(0, 0, 16, &mut runs), 0);
/// ```
#[derive(Debug)]
pub struct WindowStore {
    shards: Box<[RwLock<Shard>]>,
}

impl WindowStore {
    /// Creates a store with the given number of shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "store shard count must be positive");
        WindowStore {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, window_id: u64) -> &RwLock<Shard> {
        // Window ids are dense and sequential, so modulo is a perfect hash
        // here: consecutive (concurrently live) windows map to distinct
        // shards.
        &self.shards[(window_id % self.shards.len() as u64) as usize]
    }

    /// Registers a window that starts at stream position `start_pos`; its
    /// buffer starts empty. Idempotent: re-opening an existing window is a
    /// no-op.
    pub fn open_window(&self, window_id: u64, start_pos: u64) {
        let mut shard = self.shard(window_id).write();
        shard
            .windows
            .entry(window_id)
            .or_insert_with(|| Arc::new(WindowBuf::new(start_pos)));
    }

    /// Hands out `window_id`'s buffer, or `None` for an unknown (already
    /// retired) window. Instances cache the `Arc` across the steps of one
    /// scheduled window, skipping the shard-map lookup on every subsequent
    /// run read.
    pub fn window_buf(&self, window_id: u64) -> Option<Arc<WindowBuf>> {
        let shard = self.shard(window_id).read();
        shard.windows.get(&window_id).cloned()
    }

    /// Appends `batch[range]` to `window_id`'s buffer as one segment, under
    /// the window's own lock and one `Arc` clone (the shard lock is only
    /// read to find the buffer). The segment continues the window's event
    /// sequence. Appending to an unknown (already retired) window or an
    /// empty range is a no-op.
    pub fn extend(&self, window_id: u64, batch: &Arc<EventBatch>, range: Range<usize>) {
        if range.is_empty() {
            return;
        }
        debug_assert!(range.end <= batch.len(), "segment range out of batch");
        let buf = self.window_buf(window_id);
        if let Some(buf) = buf {
            buf.extend(batch, range);
        }
    }

    /// Collects up to `max` events of `window_id` starting at
    /// window-relative index `from` into `out` as [`EventRun`] slices
    /// (appended; `out` is *not* cleared). Returns the number of events
    /// covered — `0` when the events are not yet ingested or the window is
    /// unknown. (Map lookup + [`WindowBuf::read_run`]; hot-path callers
    /// cache the buffer via [`window_buf`](Self::window_buf) instead.)
    pub fn read_run(
        &self,
        window_id: u64,
        from: u64,
        max: usize,
        out: &mut Vec<EventRun>,
    ) -> usize {
        match self.window_buf(window_id) {
            Some(buf) => buf.read_run(from, max, out),
            None => 0,
        }
    }

    /// Fetches a copy of the event at window-relative index `idx` of
    /// `window_id` (test/diagnostic convenience; the hot path uses
    /// [`read_run`](Self::read_run)).
    pub fn get(&self, window_id: u64, idx: u64) -> Option<Event> {
        self.window_buf(window_id)?.get(idx)
    }

    /// Number of events currently buffered for `window_id`, or `None` if
    /// the window is unknown.
    pub fn window_len(&self, window_id: u64) -> Option<u64> {
        self.window_buf(window_id).map(|b| b.len())
    }

    /// The stream position of `window_id`'s first event, or `None` if the
    /// window is unknown.
    pub fn window_start(&self, window_id: u64) -> Option<u64> {
        self.window_buf(window_id).map(|b| b.start_pos())
    }

    /// Drops `window_id`'s buffer (called at retirement; hand-off batches
    /// shared with other live windows stay alive through their segments).
    pub fn remove_window(&self, window_id: u64) {
        let mut shard = self.shard(window_id).write();
        shard.windows.remove(&window_id);
    }

    /// Number of live window buffers.
    pub fn live_windows(&self) -> usize {
        self.shards.iter().map(|s| s.read().windows.len()).sum()
    }

    /// Total buffered events across all windows. Overlapping windows each
    /// count the events of their own segments (the payloads behind them
    /// live once, inside the shared batches).
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .windows
                    .values()
                    .map(|b| b.len() as usize)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::EventType;

    fn batch(first_pos: u64, seqs: Range<u64>) -> Arc<EventBatch> {
        let mut b = EventBatch::with_capacity(first_pos, (seqs.end - seqs.start) as usize);
        for seq in seqs {
            b.push(Event::builder(EventType::new(0)).seq(seq).ts(seq).build());
        }
        Arc::new(b)
    }

    fn read_seqs(store: &WindowStore, w: u64, from: u64, max: usize) -> Vec<Seq> {
        let mut runs = Vec::new();
        store.read_run(w, from, max, &mut runs);
        runs.iter()
            .flat_map(|r| r.events().iter().map(|e| e.seq()))
            .collect()
    }

    #[test]
    fn extend_and_read_runs() {
        let store = WindowStore::new(4);
        store.open_window(7, 10);
        assert_eq!(store.window_start(7), Some(10));
        store.extend(7, &batch(10, 10..14), 0..4);
        store.extend(7, &batch(14, 14..20), 0..6);
        assert_eq!(store.window_len(7), Some(10));
        assert_eq!(store.get(7, 3).unwrap().seq(), 13);
        assert!(store.get(7, 10).is_none());

        // Runs can start inside a segment and span segment boundaries.
        assert_eq!(read_seqs(&store, 7, 0, 3), vec![10, 11, 12]);
        assert_eq!(
            read_seqs(&store, 7, 3, usize::MAX),
            (13..20).collect::<Vec<_>>()
        );
        assert_eq!(read_seqs(&store, 7, 5, 3), vec![15, 16, 17]);
        let mut out = Vec::new();
        assert_eq!(store.read_run(7, 10, 16, &mut out), 0, "past the buffer");
    }

    #[test]
    fn partial_batch_ranges_are_respected() {
        // A window that opened mid-batch owns only its slice.
        let store = WindowStore::new(2);
        store.open_window(3, 12);
        let b = batch(10, 10..16);
        store.extend(3, &b, 2..6); // events 12..16
        assert_eq!(store.window_len(3), Some(4));
        assert_eq!(read_seqs(&store, 3, 0, 16), vec![12, 13, 14, 15]);
        assert_eq!(store.get(3, 1).unwrap().seq(), 13);
    }

    #[test]
    fn unknown_windows_are_inert() {
        let store = WindowStore::new(2);
        let mut out = Vec::new();
        assert_eq!(store.read_run(5, 0, 8, &mut out), 0);
        assert!(store.get(5, 0).is_none());
        assert_eq!(store.window_len(5), None);
        store.extend(5, &batch(0, 0..1), 0..1); // no-op, not a panic
        store.remove_window(5); // idempotent
        assert_eq!(store.resident(), 0);
    }

    #[test]
    fn overlapping_windows_share_batches() {
        let store = WindowStore::new(3);
        store.open_window(0, 0);
        store.open_window(1, 2);
        let b = batch(0, 0..4);
        store.extend(0, &b, 0..4);
        store.extend(1, &b, 2..4); // w1 starts at event 2
        assert_eq!(store.resident(), 6, "six referenced slots, one batch");
        assert_eq!(
            Arc::strong_count(&b),
            3,
            "one Arc per window, not per event"
        );
        store.remove_window(0);
        assert_eq!(store.live_windows(), 1);
        assert_eq!(store.get(1, 0).unwrap().seq(), 2, "still alive via w1");
        store.remove_window(1);
        assert_eq!(Arc::strong_count(&b), 1, "batch freed with its windows");
    }

    #[test]
    fn single_shard_behaves_identically() {
        // The shard count is pure placement: the same call sequence gives
        // the same observable state for 1 and many shards.
        for shards in [1usize, 2, 8] {
            let store = WindowStore::new(shards);
            assert_eq!(store.shard_count(), shards);
            for w in 0..10u64 {
                store.open_window(w, w * 2);
                store.extend(w, &batch(w * 2, w * 2..w * 2 + 4), 0..4);
            }
            for w in 0..10u64 {
                assert_eq!(
                    read_seqs(&store, w, 1, 2),
                    vec![w * 2 + 1, w * 2 + 2],
                    "shards = {shards}"
                );
            }
            assert_eq!(store.resident(), 40);
            store.remove_window(3);
            assert_eq!(store.live_windows(), 9);
        }
    }

    #[test]
    #[should_panic(expected = "store shard count must be positive")]
    fn zero_shards_rejected() {
        let _ = WindowStore::new(0);
    }

    #[test]
    fn open_window_is_idempotent() {
        let store = WindowStore::new(2);
        store.open_window(1, 5);
        store.extend(1, &batch(5, 5..6), 0..1);
        store.open_window(1, 5); // must not clear the buffer
        assert_eq!(store.window_len(1), Some(1));
    }

    #[test]
    fn window_info_end_publishing() {
        let w = WindowInfo::new(3, 10, 10, 1000);
        assert_eq!(w.end_pos(), None);
        assert!(w.contains_pos(10));
        assert!(w.contains_pos(1_000_000)); // end unknown: optimistic
        assert!(!w.contains_pos(9));
        w.set_end_pos(20);
        assert_eq!(w.end_pos(), Some(20));
        assert!(w.contains_pos(19));
        assert!(!w.contains_pos(20));
    }
}
