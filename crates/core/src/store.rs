//! Shared event store and window bookkeeping.
//!
//! The splitter appends incoming events to the store; operator instances
//! read them by *position* (ingestion order). Windows are described by
//! [`WindowInfo`] cells shared between the splitter (which discovers the end
//! position during ingestion) and all versions of the window (paper §2.2:
//! window boundaries are kept in shared memory).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spectre_events::{Event, Seq, Timestamp};

/// Sentinel for "window end not yet known".
pub const END_UNKNOWN: u64 = u64::MAX;

/// Shared, immutable-except-end description of one window.
#[derive(Debug)]
pub struct WindowInfo {
    /// Window id (windows are totally ordered by id, paper §3.1).
    pub id: u64,
    /// Position of the window's start event.
    pub start_pos: u64,
    /// Sequence number of the start event.
    pub start_seq: Seq,
    /// Timestamp of the start event.
    pub start_ts: Timestamp,
    /// Exclusive end position; [`END_UNKNOWN`] until the splitter observes
    /// the close condition.
    end_pos: AtomicU64,
}

impl WindowInfo {
    /// Creates a window whose end is not yet known.
    pub fn new(id: u64, start_pos: u64, start_seq: Seq, start_ts: Timestamp) -> Self {
        WindowInfo {
            id,
            start_pos,
            start_seq,
            start_ts,
            end_pos: AtomicU64::new(END_UNKNOWN),
        }
    }

    /// The exclusive end position, if known.
    pub fn end_pos(&self) -> Option<u64> {
        match self.end_pos.load(Ordering::Acquire) {
            END_UNKNOWN => None,
            v => Some(v),
        }
    }

    /// Publishes the end position (idempotent; called by the splitter).
    pub fn set_end_pos(&self, end: u64) {
        self.end_pos.store(end, Ordering::Release);
    }

    /// `true` if `pos` lies inside the window (given current knowledge).
    pub fn contains_pos(&self, pos: u64) -> bool {
        pos >= self.start_pos && self.end_pos().is_none_or(|e| pos < e)
    }
}

/// Append-only shared event buffer with prefix pruning.
///
/// Events are stored behind `Arc` so instances can hold a reference without
/// cloning payloads. `prune_before` drops events no longer needed by any
/// live window.
#[derive(Debug, Default)]
pub struct EventStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    base: u64,
    events: VecDeque<Arc<Event>>,
}

impl EventStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next event; returns its position.
    pub fn append(&self, event: Event) -> u64 {
        let mut inner = self.inner.write();
        let pos = inner.base + inner.events.len() as u64;
        inner.events.push_back(Arc::new(event));
        pos
    }

    /// Fetches the event at `pos`, if ingested and not pruned.
    pub fn get(&self, pos: u64) -> Option<Arc<Event>> {
        let inner = self.inner.read();
        if pos < inner.base {
            return None;
        }
        inner.events.get((pos - inner.base) as usize).cloned()
    }

    /// Number of events ever appended.
    pub fn len(&self) -> u64 {
        let inner = self.inner.read();
        inner.base + inner.events.len() as u64
    }

    /// `true` if nothing was appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all events before `pos` (they must no longer be referenced by
    /// any live window).
    pub fn prune_before(&self, pos: u64) {
        let mut inner = self.inner.write();
        while inner.base < pos && !inner.events.is_empty() {
            inner.events.pop_front();
            inner.base += 1;
        }
    }

    /// Number of events currently held in memory.
    pub fn resident(&self) -> usize {
        self.inner.read().events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::EventType;

    fn ev(seq: Seq) -> Event {
        Event::builder(EventType::new(0)).seq(seq).ts(seq).build()
    }

    #[test]
    fn append_and_get() {
        let store = EventStore::new();
        assert!(store.is_empty());
        for i in 0..10 {
            assert_eq!(store.append(ev(i)), i);
        }
        assert_eq!(store.len(), 10);
        assert_eq!(store.get(3).unwrap().seq(), 3);
        assert!(store.get(10).is_none());
    }

    #[test]
    fn prune_drops_prefix_only() {
        let store = EventStore::new();
        for i in 0..10 {
            store.append(ev(i));
        }
        store.prune_before(4);
        assert!(store.get(3).is_none());
        assert_eq!(store.get(4).unwrap().seq(), 4);
        assert_eq!(store.len(), 10);
        assert_eq!(store.resident(), 6);
        // appending continues at the right position
        assert_eq!(store.append(ev(10)), 10);
        assert_eq!(store.get(10).unwrap().seq(), 10);
    }

    #[test]
    fn prune_beyond_len_empties() {
        let store = EventStore::new();
        for i in 0..5 {
            store.append(ev(i));
        }
        store.prune_before(100);
        assert_eq!(store.resident(), 0);
        assert_eq!(store.len(), 5);
        assert_eq!(store.append(ev(5)), 5);
    }

    #[test]
    fn window_info_end_publishing() {
        let w = WindowInfo::new(3, 10, 10, 1000);
        assert_eq!(w.end_pos(), None);
        assert!(w.contains_pos(10));
        assert!(w.contains_pos(1_000_000)); // end unknown: optimistic
        assert!(!w.contains_pos(9));
        w.set_end_pos(20);
        assert_eq!(w.end_pos(), Some(20));
        assert!(w.contains_pos(19));
        assert!(!w.contains_pos(20));
    }
}
