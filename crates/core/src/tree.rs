//! The dependency tree of window versions and consumption groups
//! (paper §3.1, Figs. 3, 4 and 6).
//!
//! Vertices are either *window versions* (with at most one child) or
//! *consumption groups* (with a *completion* edge and an *abandon* edge).
//! The invariants from the paper:
//!
//! * the root is the only version of the oldest unretired window,
//! * all versions reachable via a CG's completion edge suppress that CG's
//!   events; versions on the abandon edge are unaffected,
//! * creating a CG doubles the creator's dependent subtree (the old subtree
//!   becomes the abandon branch, a suppressing copy the completion branch),
//! * resolving a CG drops the losing branch and splices the winner up,
//! * new windows attach fresh versions at every leaf.
//!
//! Additions needed for a working system (the paper describes these
//! operationally): rollback teardown (a rolled-back version's dependent
//! subtree is rebuilt from scratch, since its consumption groups were
//! produced by invalid processing) and root retirement (emitting a finished,
//! confirmed root version and promoting its child).

use std::collections::HashMap;
use std::sync::Arc;

use crate::cg::{CgCell, CgId};
use crate::store::WindowInfo;
use crate::version::{VersionState, WvId};

/// Vertex handle inside the arena.
type NodeId = usize;

#[derive(Debug)]
enum Node {
    Version {
        parent: Option<NodeId>,
        state: Arc<VersionState>,
        child: Option<NodeId>,
        /// Completed consumption groups owned by this version whose splice
        /// found *no* dependent versions to carry the suppression (the
        /// completion edge was empty). Dependent versions created later —
        /// by window attach or chain building — must still suppress these
        /// consumed events, so the facts are inherited into every new
        /// suppressed set derived from this vertex.
        facts: Vec<Arc<CgCell>>,
    },
    Cg {
        parent: Option<NodeId>,
        cell: Arc<CgCell>,
        completion: Option<NodeId>,
        abandon: Option<NodeId>,
    },
}

/// Materializes window versions and twin cells for the tree. The splitter
/// implements this to allocate ids and keep metrics; test fixtures provide
/// counters.
pub trait VersionFactory {
    /// Creates a fresh version of `window` (processing starts at the window
    /// start) with the given suppressed set.
    fn fresh(
        &mut self,
        window: &Arc<WindowInfo>,
        suppressed: Vec<Arc<CgCell>>,
    ) -> Arc<VersionState>;

    /// Clones `source`'s processing state into a new version with the given
    /// suppressed set. Every open consumption group of the clone is
    /// replaced, atomically under the source's state lock, by an
    /// independent *twin* cell; the created `(original id, twin)` pairs are
    /// returned so the tree can key the copied group vertices to them.
    ///
    /// Returns `None` when the clone holds an open group outside
    /// `expected_open` — the tree state predates that group (its `CgCreated`
    /// op is still in flight), so the copy must fall back to fresh versions.
    #[allow(clippy::type_complexity)]
    fn clone_of(
        &mut self,
        source: &Arc<VersionState>,
        suppressed: Vec<Arc<CgCell>>,
        expected_open: &[CgId],
    ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)>;
}

/// The dependency tree.
///
/// All mutating operations are driven by the splitter during its maintenance
/// cycle; the tree is not shared across threads.
#[derive(Debug, Default)]
pub struct DependencyTree {
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    root: Option<NodeId>,
    version_vertex: HashMap<u64, NodeId>,
    cg_vertices: HashMap<CgId, Vec<NodeId>>,
    version_count: usize,
}

impl DependencyTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live window versions — the paper's "tree size" metric
    /// (Fig. 10(f)).
    pub fn version_count(&self) -> usize {
        self.version_count
    }

    /// `true` when no window is live.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The root version (of the oldest unretired window).
    pub fn root_version(&self) -> Option<&Arc<VersionState>> {
        let id = self.root?;
        match self.node(id) {
            Node::Version { state, .. } => Some(state),
            Node::Cg { .. } => unreachable!("root is always a version"),
        }
    }

    /// `true` if the root version still has an unspliced consumption-group
    /// vertex as child (retirement must wait for its resolution ops).
    pub fn root_blocked_by_cg(&self) -> bool {
        let Some(root) = self.root else { return false };
        let Node::Version { child, .. } = self.node(root) else {
            unreachable!("root is always a version")
        };
        matches!(child.map(|c| self.node(c)), Some(Node::Cg { .. }))
    }

    /// Looks up the version state registered for `wv`.
    pub fn version(&self, wv: WvId) -> Option<&Arc<VersionState>> {
        let &node = self.version_vertex.get(&wv.0)?;
        match self.node(node) {
            Node::Version { state, .. } => Some(state),
            Node::Cg { .. } => None,
        }
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn register_version(&mut self, id: NodeId, state: &Arc<VersionState>) {
        self.version_vertex.insert(state.id().0, id);
        self.version_count += 1;
    }

    fn alloc_version(&mut self, parent: Option<NodeId>, state: Arc<VersionState>) -> NodeId {
        let id = self.alloc(Node::Version {
            parent,
            state: Arc::clone(&state),
            child: None,
            facts: Vec::new(),
        });
        self.register_version(id, &state);
        id
    }

    /// Attaches versions of a newly opened window at every leaf
    /// (paper Fig. 4, `newWindow`). Returns the created versions.
    pub fn new_window(
        &mut self,
        window: &Arc<WindowInfo>,
        f: &mut dyn VersionFactory,
    ) -> Vec<Arc<VersionState>> {
        let mut created = Vec::new();
        match self.root {
            None => {
                // Independent window: single version, no suppression (an
                // empty tree implies no live overlapping window; see the
                // retirement argument in DESIGN.md).
                let state = f.fresh(window, Vec::new());
                let id = self.alloc_version(None, Arc::clone(&state));
                self.root = Some(id);
                created.push(state);
            }
            Some(root) => {
                self.attach_recursive(root, window, f, &mut created);
            }
        }
        created
    }

    fn attach_recursive(
        &mut self,
        node: NodeId,
        window: &Arc<WindowInfo>,
        f: &mut dyn VersionFactory,
        created: &mut Vec<Arc<VersionState>>,
    ) {
        match self.node(node) {
            Node::Version {
                child,
                state,
                facts,
                ..
            } => match child {
                Some(c) => {
                    let c = *c;
                    self.attach_recursive(c, window, f, created);
                }
                None => {
                    let mut suppressed = state.suppressed().to_vec();
                    suppressed.extend(facts.iter().cloned());
                    let state = f.fresh(window, suppressed);
                    let id = self.alloc_version(Some(node), Arc::clone(&state));
                    let Node::Version { child, .. } = self.node_mut(node) else {
                        unreachable!()
                    };
                    *child = Some(id);
                    created.push(state);
                }
            },
            Node::Cg {
                completion,
                abandon,
                cell,
                ..
            } => {
                let (completion, abandon, cell) = (*completion, *abandon, Arc::clone(cell));
                match completion {
                    Some(c) => self.attach_recursive(c, window, f, created),
                    None => {
                        let mut supp = self.suppression_above(node);
                        supp.push(Arc::clone(&cell));
                        let state = f.fresh(window, supp);
                        let id = self.alloc_version(Some(node), Arc::clone(&state));
                        let Node::Cg { completion, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *completion = Some(id);
                        created.push(state);
                    }
                }
                match abandon {
                    Some(a) => self.attach_recursive(a, window, f, created),
                    None => {
                        let supp = self.suppression_above(node);
                        let state = f.fresh(window, supp);
                        let id = self.alloc_version(Some(node), Arc::clone(&state));
                        let Node::Cg { abandon, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *abandon = Some(id);
                        created.push(state);
                    }
                }
            }
        }
    }

    /// Suppression set that applies *above* a CG vertex: the nearest
    /// ancestor version's suppressed set (plus its recorded facts) plus
    /// every completion edge between it and `node` (exclusive of `node`'s
    /// own cell).
    fn suppression_above(&self, node: NodeId) -> Vec<Arc<CgCell>> {
        let mut extra: Vec<Arc<CgCell>> = Vec::new();
        let mut cur = node;
        loop {
            let parent = match self.node(cur) {
                Node::Version { parent, .. } | Node::Cg { parent, .. } => *parent,
            };
            let Some(p) = parent else {
                unreachable!("CG vertices always have a version ancestor")
            };
            match self.node(p) {
                Node::Version { state, facts, .. } => {
                    let mut supp = state.suppressed().to_vec();
                    supp.extend(facts.iter().cloned());
                    extra.reverse();
                    supp.extend(extra);
                    return supp;
                }
                Node::Cg {
                    cell, completion, ..
                } => {
                    if *completion == Some(cur) {
                        extra.push(Arc::clone(cell));
                    }
                    cur = p;
                }
            }
        }
    }

    /// Inserts a new consumption group under its creator version
    /// (paper Fig. 4, `consumptionGroupCreated`): the old dependent subtree
    /// becomes the abandon branch; a *modified copy* that suppresses the
    /// group's events becomes the completion branch.
    ///
    /// The copy clones each dependent version's processing state — the
    /// paper's intent, since reprocessing every dependent window on each
    /// group creation would erase the speculation win — with one essential
    /// correction: a copied consumption-group vertex cannot share its
    /// original's identity. The copied versions continue the same partial
    /// matches in an *alternative world*, and the two worlds may resolve a
    /// match differently; sharing identity would apply one branch's outcome
    /// to the other (unsound), or leave the copy unresolved forever when the
    /// original's branch is dropped first (deadlock). Every open group
    /// vertex in the copy therefore gets an independent **twin cell** (same
    /// events and completion distance, fresh id), owned and resolved by the
    /// cloned version that continues the match. Retroactive conflicts with
    /// the new group's events are caught by the copies' consistency checks,
    /// exactly as for any late group update (paper Fig. 8).
    ///
    /// Returns `false` (no-op) if the creator version is no longer in the
    /// tree — its subtree was dropped by a concurrent resolution or
    /// rollback, making the operation stale.
    pub fn cg_created(
        &mut self,
        creator: WvId,
        cell: Arc<CgCell>,
        f: &mut dyn VersionFactory,
    ) -> bool {
        let Some(&vnode) = self.version_vertex.get(&creator.0) else {
            return false;
        };
        let Node::Version { child, .. } = self.node(vnode) else {
            unreachable!()
        };
        let old_child = *child;

        let copy = old_child.and_then(|c| {
            let mut twins = HashMap::new();
            let mut stray_facts = Vec::new();
            let copied = self.copy_stateful(c, &cell, &mut twins, f, &mut stray_facts, &[]);
            debug_assert!(
                stray_facts.is_empty(),
                "the copy root is a version vertex and collects its own facts"
            );
            copied
        });
        let cg_node = self.alloc(Node::Cg {
            parent: Some(vnode),
            cell: Arc::clone(&cell),
            completion: copy,
            abandon: old_child,
        });
        if let Some(c) = copy {
            self.set_parent(c, cg_node);
        }
        if let Some(c) = old_child {
            self.set_parent(c, cg_node);
        }
        let Node::Version { child, .. } = self.node_mut(vnode) else {
            unreachable!()
        };
        *child = Some(cg_node);
        self.cg_vertices.entry(cell.id()).or_default().push(cg_node);
        true
    }

    /// Distinct windows of the versions in `src`'s subtree, ascending by id.
    fn subtree_windows(&self, src: NodeId) -> Vec<Arc<WindowInfo>> {
        let mut windows: Vec<Arc<WindowInfo>> = Vec::new();
        let mut stack = vec![src];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                Node::Version { state, child, .. } => {
                    if !windows.iter().any(|w| w.id == state.window().id) {
                        windows.push(Arc::clone(state.window()));
                    }
                    if let Some(c) = child {
                        stack.push(*c);
                    }
                }
                Node::Cg {
                    completion,
                    abandon,
                    ..
                } => {
                    if let Some(c) = completion {
                        stack.push(*c);
                    }
                    if let Some(a) = abandon {
                        stack.push(*a);
                    }
                }
            }
        }
        windows.sort_by_key(|w| w.id);
        windows
    }

    /// Builds a parentless chain of fresh versions (one per window, in the
    /// given order), all suppressing `suppression`. Returns the chain head.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty.
    fn fresh_chain(
        &mut self,
        windows: &[Arc<WindowInfo>],
        suppression: &[Arc<CgCell>],
        f: &mut dyn VersionFactory,
    ) -> NodeId {
        let mut head: Option<NodeId> = None;
        let mut cur: Option<NodeId> = None;
        for window in windows {
            let state = f.fresh(window, suppression.to_vec());
            let id = self.alloc_version(cur, state);
            if let Some(p) = cur {
                let Node::Version { child, .. } = self.node_mut(p) else {
                    unreachable!("chain links versions only")
                };
                *child = Some(id);
            } else {
                head = Some(id);
            }
            cur = Some(id);
        }
        head.expect("chain must cover at least one window")
    }

    /// Copies `src`'s subtree for the completion branch of `extra`
    /// (see [`cg_created`](Self::cg_created)). Version state is cloned;
    /// open consumption-group vertices get twin cells (recorded in
    /// `twins`); vertices of groups that already resolved (their splice op
    /// still in flight) are pre-spliced in the copy. A completed-and-empty
    /// vertex pushes its cell into `facts_out`, to be recorded on the
    /// nearest copied ancestor version.
    ///
    /// Returns the copied subtree root, or `None` if nothing remains (the
    /// subtree was a single pre-spliced vertex with an empty winner edge).
    fn copy_stateful(
        &mut self,
        src: NodeId,
        extra: &Arc<CgCell>,
        twins: &mut HashMap<CgId, Arc<CgCell>>,
        f: &mut dyn VersionFactory,
        facts_out: &mut Vec<Arc<CgCell>>,
        inherited: &[Arc<CgCell>],
    ) -> Option<NodeId> {
        match self.node(src) {
            Node::Version {
                state,
                child,
                facts,
                ..
            } => {
                let (state, child, mut new_facts) = (Arc::clone(state), *child, facts.clone());
                // Rewrite the suppressed set: twins replace open groups
                // whose vertices lie inside the copy (recorded by ancestor
                // recursion steps); resolved cells and groups above the
                // creator stay shared. Append the new group last.
                let mut suppressed: Vec<Arc<CgCell>> = state
                    .suppressed()
                    .iter()
                    .map(|c| twins.get(&c.id()).cloned().unwrap_or_else(|| Arc::clone(c)))
                    .collect();
                // Completions inherited from cloned ancestors whose splice
                // ops were lost (the ancestor was dropped with its
                // CgCreated op still in flight; the clone carries the
                // consumed events) must be suppressed here too.
                for cell in inherited {
                    if !suppressed.iter().any(|c| c.id() == cell.id()) {
                        suppressed.push(Arc::clone(cell));
                    }
                }
                suppressed.push(Arc::clone(extra));

                // Groups this version may legitimately hold open: the CG
                // vertex directly below it, if any (its own speculation
                // point).
                let expected_open: Vec<CgId> = match child.map(|c| self.node(c)) {
                    Some(Node::Cg { cell, .. }) => vec![cell.id()],
                    _ => Vec::new(),
                };
                let Some((new_state, new_twins)) =
                    f.clone_of(&state, suppressed.clone(), &expected_open)
                else {
                    // An open group of `state` has no vertex yet (its
                    // CgCreated op is still in flight): the clone would
                    // share ownership of that group. Fall back to fresh
                    // versions for this whole subtree; the speculation
                    // below re-emerges as they reprocess.
                    let windows = self.subtree_windows(src);
                    return Some(self.fresh_chain(&windows, &suppressed, f));
                };
                twins.extend(new_twins);
                // The clone's completed groups stand in its world whether
                // or not the tree ever saw their vertices (the original may
                // be dropped with the CgCreated op still in flight, which
                // stale-drops it). Dependent copies below must suppress
                // them, and windows attached below the clone later must
                // inherit them as facts.
                let clone_completed: Vec<Arc<CgCell>> = new_state.lock().completed_cells.clone();
                let mut inherited_next: Vec<Arc<CgCell>> = inherited.to_vec();
                for cell in &clone_completed {
                    if !inherited_next.iter().any(|c| c.id() == cell.id()) {
                        inherited_next.push(Arc::clone(cell));
                    }
                }
                for cell in &clone_completed {
                    if !new_facts.iter().any(|c| c.id() == cell.id()) {
                        new_facts.push(Arc::clone(cell));
                    }
                }
                let new_id = self.alloc_version(None, new_state);
                if let Some(c) = child {
                    let mut child_facts = Vec::new();
                    if let Some(cc) =
                        self.copy_stateful(c, extra, twins, f, &mut child_facts, &inherited_next)
                    {
                        self.set_parent(cc, new_id);
                        let Node::Version { child, .. } = self.node_mut(new_id) else {
                            unreachable!()
                        };
                        *child = Some(cc);
                    }
                    new_facts.extend(child_facts);
                }
                let Node::Version { facts, .. } = self.node_mut(new_id) else {
                    unreachable!()
                };
                *facts = new_facts;
                Some(new_id)
            }
            Node::Cg {
                cell,
                completion,
                abandon,
                ..
            } => {
                let (cell, completion, abandon) = (Arc::clone(cell), *completion, *abandon);
                let Some(twin) = twins.get(&cell.id()).cloned() else {
                    // The owner's clone (made just above in the recursion)
                    // no longer holds this group open: the owner resolved
                    // it and the splice op is in flight. Pre-apply the
                    // splice in the copy. The status was published under
                    // the owner's state lock before the clone was taken,
                    // so it is visible here.
                    let completed = cell.status() == crate::cg::CgStatus::Completed;
                    debug_assert!(
                        cell.is_resolved(),
                        "un-twinned group vertices are resolved-pending"
                    );
                    let winner = if completed { completion } else { abandon };
                    return match winner {
                        Some(w) => self.copy_stateful(w, extra, twins, f, facts_out, inherited),
                        None => {
                            if completed {
                                facts_out.push(cell);
                            }
                            None
                        }
                    };
                };
                let new_id = self.alloc(Node::Cg {
                    parent: None,
                    cell: Arc::clone(&twin),
                    completion: None,
                    abandon: None,
                });
                self.cg_vertices.entry(twin.id()).or_default().push(new_id);
                if let Some(c) = completion {
                    let mut sub_facts = Vec::new();
                    let cc = self.copy_stateful(c, extra, twins, f, &mut sub_facts, inherited);
                    debug_assert!(
                        sub_facts.is_empty(),
                        "edge children are version vertices which keep their own facts"
                    );
                    if let Some(cc) = cc {
                        self.set_parent(cc, new_id);
                        let Node::Cg { completion, .. } = self.node_mut(new_id) else {
                            unreachable!()
                        };
                        *completion = Some(cc);
                    }
                }
                if let Some(a) = abandon {
                    let mut sub_facts = Vec::new();
                    let ac = self.copy_stateful(a, extra, twins, f, &mut sub_facts, inherited);
                    debug_assert!(sub_facts.is_empty());
                    if let Some(ac) = ac {
                        self.set_parent(ac, new_id);
                        let Node::Cg { abandon, .. } = self.node_mut(new_id) else {
                            unreachable!()
                        };
                        *abandon = Some(ac);
                    }
                }
                Some(new_id)
            }
        }
    }

    fn set_parent(&mut self, node: NodeId, parent: NodeId) {
        match self.node_mut(node) {
            Node::Version { parent: p, .. } | Node::Cg { parent: p, .. } => *p = Some(parent),
        }
    }

    /// Resolves a consumption group (paper Fig. 4,
    /// `consumptionGroupCompleted` / `Abandoned`): at every vertex of the
    /// group, the losing branch is dropped and the winning branch spliced to
    /// the parent. Returns the number of versions dropped.
    pub fn cg_resolved(&mut self, cg: CgId, completed: bool) -> usize {
        let Some(vertices) = self.cg_vertices.remove(&cg) else {
            return 0;
        };
        let mut dropped = 0;
        for vertex in vertices {
            // The vertex may already be gone: it sat inside the losing
            // branch of another vertex of the same group (or a rollback
            // teardown). Verify it is still this group's vertex.
            let Some(Some(Node::Cg { cell, .. })) = self.nodes.get(vertex) else {
                continue;
            };
            if cell.id() != cg {
                continue;
            }
            let Node::Cg {
                parent,
                completion,
                abandon,
                cell,
            } = self.node(vertex)
            else {
                unreachable!()
            };
            let (parent, completion, abandon, cell) =
                (*parent, *completion, *abandon, Arc::clone(cell));
            let (winner, loser) = if completed {
                (completion, abandon)
            } else {
                (abandon, completion)
            };
            if let Some(l) = loser {
                dropped += self.drop_subtree(l);
            }
            // Splice winner up.
            self.nodes[vertex] = None;
            self.free.push(vertex);
            if let Some(w) = winner {
                match parent {
                    Some(p) => {
                        self.replace_child(p, vertex, w);
                        self.set_parent(w, p);
                    }
                    None => {
                        debug_assert_eq!(self.root, Some(vertex));
                        self.set_root(w);
                    }
                }
            } else {
                match parent {
                    Some(p) => {
                        self.replace_child(p, vertex, usize::MAX);
                        // A completion with no dependent versions to carry
                        // the suppression: record the consumed events as a
                        // fact on the owner so later-created dependents
                        // still suppress them.
                        if completed {
                            // Walk up to the nearest version vertex (the
                            // parent may itself be a CG vertex when several
                            // groups of one version are open at once).
                            let mut owner = p;
                            loop {
                                match self.node_mut(owner) {
                                    Node::Version { facts, .. } => {
                                        facts.push(cell);
                                        break;
                                    }
                                    Node::Cg { parent, .. } => {
                                        owner = parent.expect("CG vertices have version ancestors");
                                    }
                                }
                            }
                        }
                    }
                    None => self.root = None,
                }
            }
        }
        dropped
    }

    fn set_root(&mut self, node: NodeId) {
        match self.node_mut(node) {
            Node::Version { parent, .. } | Node::Cg { parent, .. } => *parent = None,
        }
        self.root = Some(node);
    }

    /// Replaces `old` in `parent`'s child slots with `new`
    /// (`new == usize::MAX` clears the slot).
    fn replace_child(&mut self, parent: NodeId, old: NodeId, new: NodeId) {
        let new = if new == usize::MAX { None } else { Some(new) };
        match self.node_mut(parent) {
            Node::Version { child, .. } => {
                if *child == Some(old) {
                    *child = new;
                }
            }
            Node::Cg {
                completion,
                abandon,
                ..
            } => {
                if *completion == Some(old) {
                    *completion = new;
                } else if *abandon == Some(old) {
                    *abandon = new;
                }
            }
        }
    }

    /// Drops a whole subtree, marking all contained versions dropped.
    /// Returns the number of versions dropped.
    fn drop_subtree(&mut self, node: NodeId) -> usize {
        let mut dropped = 0;
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let Some(n) = self.nodes[id].take() else {
                continue;
            };
            self.free.push(id);
            match n {
                Node::Version { state, child, .. } => {
                    state.mark_dropped();
                    self.version_vertex.remove(&state.id().0);
                    self.version_count -= 1;
                    dropped += 1;
                    if let Some(c) = child {
                        stack.push(c);
                    }
                }
                Node::Cg {
                    cell,
                    completion,
                    abandon,
                    ..
                } => {
                    if let Some(v) = self.cg_vertices.get_mut(&cell.id()) {
                        v.retain(|&x| x != id);
                        if v.is_empty() {
                            self.cg_vertices.remove(&cell.id());
                        }
                    }
                    if let Some(c) = completion {
                        stack.push(c);
                    }
                    if let Some(a) = abandon {
                        stack.push(a);
                    }
                }
            }
        }
        dropped
    }

    /// Tears down and rebuilds the dependent subtree of a rolled-back
    /// version: all consumption groups the invalid processing produced (and
    /// every version speculating on them) are discarded, and one fresh
    /// version per newer live window is chained below (see DESIGN.md §6).
    ///
    /// `newer_windows` must be the live windows with id greater than the
    /// rolled-back version's window, in ascending id order. Returns the
    /// number of versions dropped.
    /// `carried_facts` are completions that *survive* the rollback — empty
    /// for a reset to the window start, or the completions preceding the
    /// restored checkpoint (their events stay consumed in the restarted
    /// world, so the rebuilt dependents must suppress them).
    pub fn rollback_rebuild(
        &mut self,
        wv: WvId,
        newer_windows: &[Arc<WindowInfo>],
        carried_facts: Vec<Arc<CgCell>>,
        f: &mut dyn VersionFactory,
    ) -> usize {
        let Some(&vnode) = self.version_vertex.get(&wv.0) else {
            return 0;
        };
        let Node::Version { child, state, .. } = self.node(vnode) else {
            unreachable!()
        };
        let old_child = *child;
        let mut suppressed = state.suppressed().to_vec();
        suppressed.extend(carried_facts.iter().cloned());
        let mut dropped = 0;
        if let Some(c) = old_child {
            dropped += self.drop_subtree(c);
        }
        {
            // The version restarts: its previous completions (and any facts
            // they recorded) came from processing that is now invalid —
            // except the carried ones, which the restored state keeps.
            let Node::Version { child, facts, .. } = self.node_mut(vnode) else {
                unreachable!()
            };
            *child = None;
            *facts = carried_facts;
        }
        if !newer_windows.is_empty() {
            let head = self.fresh_chain(newer_windows, &suppressed, f);
            self.set_parent(head, vnode);
            match self.node_mut(vnode) {
                Node::Version { child, .. } => *child = Some(head),
                Node::Cg { .. } => unreachable!("rollback roots are versions"),
            }
        }
        dropped
    }

    /// `true` if, on `from`'s ancestor chain, the version of `cell`'s
    /// window still *vouches* for the completion: its processing state
    /// holds the completed group. A version whose chain ancestor no longer
    /// vouches assumes a completion that never happened in the surviving
    /// timeline.
    fn completion_vouched(&self, from: NodeId, cell: &CgCell) -> bool {
        let mut cur = Some(from);
        while let Some(id) = cur {
            match self.node(id) {
                Node::Version { state, parent, .. } => {
                    if state.window().id == cell.window_id() {
                        return state
                            .lock()
                            .completed_cells
                            .iter()
                            .any(|c| c.id() == cell.id());
                    }
                    if state.window().id < cell.window_id() {
                        return false;
                    }
                    cur = *parent;
                }
                Node::Cg { parent, .. } => cur = *parent,
            }
        }
        false
    }

    /// Revokes consumption-group completions discarded by a rollback.
    ///
    /// A version that completes a group and *then* rolls back voids the
    /// completion — but the tree may already have spliced the group's
    /// resolution, and state copies made under other branches (see
    /// [`cg_created`](Self::cg_created)) may carry the completion onward as
    /// suppressed sets or recorded facts even though the processing that
    /// produced it never happens in the restarted timeline. The rolled-back
    /// version's own dependent subtree is handled by
    /// [`rollback_rebuild`](Self::rollback_rebuild); this sweep finds the
    /// escapees: every version that still assumes one of the `revoked`
    /// completions (suppressed set or vertex facts) *without* a chain
    /// ancestor that still vouches for it is replaced by a fresh version
    /// with the void groups removed, and its dependents are rebuilt.
    ///
    /// `newer_of` must return the live windows with id greater than the
    /// given window id, ascending. Returns the number of versions dropped.
    pub fn revoke_completions(
        &mut self,
        revoked: &[Arc<CgCell>],
        newer_of: &dyn Fn(u64) -> Vec<Arc<WindowInfo>>,
        f: &mut dyn VersionFactory,
    ) -> usize {
        if revoked.is_empty() {
            return 0;
        }
        // Candidates oldest-window first: replacing an owner rebuilds (and
        // thereby cleans) its dependents, so deeper candidates drop out.
        let mut candidates: Vec<(u64, WvId)> = self
            .version_vertex
            .values()
            .filter_map(|&node| {
                let Some(Some(Node::Version { state, facts, .. })) = self.nodes.get(node) else {
                    return None;
                };
                let involved = state
                    .suppressed()
                    .iter()
                    .chain(facts.iter())
                    .any(|s| revoked.iter().any(|r| r.id() == s.id()));
                involved.then(|| (state.window().id, state.id()))
            })
            .collect();
        candidates.sort_unstable_by_key(|&(w, v)| (w, v.0));

        let mut dropped = 0;
        for (window_id, wv) in candidates {
            let Some(&vnode) = self.version_vertex.get(&wv.0) else {
                continue; // already cleaned by an ancestor's replacement
            };
            let Node::Version { state, facts, .. } = self.node(vnode) else {
                unreachable!()
            };
            let assumed: Vec<Arc<CgCell>> = revoked
                .iter()
                .filter(|r| {
                    state
                        .suppressed()
                        .iter()
                        .chain(facts.iter())
                        .any(|s| s.id() == r.id())
                })
                .cloned()
                .collect();
            let unvouched: Vec<CgId> = assumed
                .iter()
                .filter(|cell| !self.completion_vouched(vnode, cell))
                .map(|cell| cell.id())
                .collect();
            if unvouched.is_empty() {
                continue; // a live ancestor still stands by the completion
            }
            dropped += self.replace_poisoned(wv, &unvouched, &newer_of(window_id), f);
        }
        dropped
    }

    /// Replaces a version that assumes void completions: the version is
    /// dropped and a fresh version of the same window — with the `void`
    /// groups removed from its suppressed set and vertex facts — takes its
    /// place in the tree; its dependent subtree is rebuilt from scratch.
    /// Returns the number of versions dropped (including the replaced one).
    fn replace_poisoned(
        &mut self,
        wv: WvId,
        void: &[CgId],
        newer_windows: &[Arc<WindowInfo>],
        f: &mut dyn VersionFactory,
    ) -> usize {
        let Some(&vnode) = self.version_vertex.get(&wv.0) else {
            return 0;
        };
        let (old_state, old_facts, old_child) = match self.node(vnode) {
            Node::Version {
                state,
                facts,
                child,
                ..
            } => (Arc::clone(state), facts.clone(), *child),
            Node::Cg { .. } => unreachable!(),
        };
        let keep = |cells: &[Arc<CgCell>]| -> Vec<Arc<CgCell>> {
            cells
                .iter()
                .filter(|c| !void.contains(&c.id()))
                .cloned()
                .collect()
        };
        let new_suppressed = keep(old_state.suppressed());
        let new_facts = keep(&old_facts);
        let mut dropped = 1; // the replaced version itself
        if let Some(c) = old_child {
            dropped += self.drop_subtree(c);
        }
        old_state.mark_dropped();
        let new_state = f.fresh(old_state.window(), new_suppressed.clone());
        self.version_vertex.remove(&wv.0);
        self.version_vertex.insert(new_state.id().0, vnode);
        {
            let Node::Version {
                state,
                facts,
                child,
                ..
            } = self.node_mut(vnode)
            else {
                unreachable!()
            };
            *state = Arc::clone(&new_state);
            *facts = new_facts.clone();
            *child = None;
        }
        if !newer_windows.is_empty() {
            let mut suppression = new_suppressed;
            suppression.extend(new_facts);
            let head = self.fresh_chain(newer_windows, &suppression, f);
            self.set_parent(head, vnode);
            let Node::Version { child, .. } = self.node_mut(vnode) else {
                unreachable!()
            };
            *child = Some(head);
        }
        dropped
    }

    /// Removes the root version after it was emitted; its child becomes the
    /// new root.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or the root's child is an unresolved CG
    /// vertex (callers must check [`root_blocked_by_cg`](Self::root_blocked_by_cg)).
    pub fn retire_root(&mut self) -> Arc<VersionState> {
        let root = self.root.expect("tree not empty");
        let Some(Node::Version { state, child, .. }) = self.nodes[root].take() else {
            unreachable!("root is always a version")
        };
        self.free.push(root);
        self.version_vertex.remove(&state.id().0);
        self.version_count -= 1;
        match child {
            Some(c) => {
                assert!(
                    matches!(self.node(c), Node::Version { .. }),
                    "root child must be a version at retirement"
                );
                self.set_root(c);
            }
            None => self.root = None,
        }
        state
    }

    /// Selects the k window versions with the highest survival probability
    /// (paper Fig. 6). `prob_of` supplies the completion probability of an
    /// open consumption group.
    ///
    /// Finished versions are traversed but not returned (they need no
    /// instance). The returned list is ordered by decreasing survival
    /// probability.
    pub fn top_k(&self, k: usize, prob_of: &dyn Fn(&CgCell) -> f64) -> Vec<Arc<VersionState>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Ordering: survival probability first; ties go to the *earlier
        // window* (it retires first, so finishing it unblocks emission),
        // then to the older vertex for determinism.
        #[derive(PartialEq)]
        struct Cand(f64, Reverse<u64>, Reverse<usize>, NodeId);
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then_with(|| self.1.cmp(&other.1))
                    .then_with(|| self.2.cmp(&other.2))
            }
        }

        let mut result = Vec::with_capacity(k);
        let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
        let push_version = |heap: &mut BinaryHeap<Cand>, prob: f64, node: NodeId| {
            let Node::Version { state, .. } = self.node(node) else {
                unreachable!("only version vertices are heap candidates")
            };
            heap.push(Cand(prob, Reverse(state.window().id), Reverse(node), node));
        };
        if let Some(root) = self.root {
            push_version(&mut heap, 1.0, root);
        }
        while result.len() < k {
            let Some(Cand(prob, _, _, node)) = heap.pop() else {
                break;
            };
            let Node::Version { state, child, .. } = self.node(node) else {
                unreachable!("heap contains version vertices only")
            };
            if !state.is_finished() {
                result.push(Arc::clone(state));
            }
            // Expand the child, resolving CG vertices into their two
            // version branches weighted by completion probability.
            let mut stack: Vec<(f64, NodeId)> = Vec::new();
            if let Some(c) = child {
                stack.push((prob, *c));
            }
            while let Some((p, n)) = stack.pop() {
                match self.node(n) {
                    Node::Version { .. } => push_version(&mut heap, p, n),
                    Node::Cg {
                        cell,
                        completion,
                        abandon,
                        ..
                    } => {
                        let pc = prob_of(cell).clamp(0.0, 1.0);
                        if let Some(c) = completion {
                            stack.push((p * pc, *c));
                        }
                        if let Some(a) = abandon {
                            stack.push((p * (1.0 - pc), *a));
                        }
                    }
                }
            }
        }
        result
    }

    /// Iterates over all live versions (diagnostics and tests).
    pub fn versions(&self) -> Vec<Arc<VersionState>> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Some(Node::Version { state, .. }) => Some(Arc::clone(state)),
                _ => None,
            })
            .collect()
    }

    /// Structural self-check for tests: parent/child links are mutual, the
    /// registry matches the arena, and every version's suppressed set equals
    /// the completion edges on its root path.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let mut seen_versions = 0;
        for (id, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            match node {
                Node::Version {
                    parent,
                    state,
                    child,
                    ..
                } => {
                    seen_versions += 1;
                    assert_eq!(self.version_vertex.get(&state.id().0), Some(&id));
                    if let Some(c) = child {
                        self.assert_child_link(id, *c);
                    }
                    if parent.is_none() {
                        assert_eq!(self.root, Some(id));
                    }
                    // suppressed set == completion edges on root path
                    let mut expected: Vec<CgId> = Vec::new();
                    let mut cur = id;
                    while let Some(p) = self.parent_of(cur) {
                        if let Node::Cg {
                            cell, completion, ..
                        } = self.node(p)
                        {
                            if *completion == Some(cur) {
                                expected.push(cell.id());
                            }
                        }
                        cur = p;
                    }
                    let mut actual: Vec<CgId> = state.suppressed().iter().map(|c| c.id()).collect();
                    // the root path may omit suppression inherited from
                    // retired windows: every expected edge must be present.
                    actual.sort();
                    expected.sort();
                    for e in &expected {
                        assert!(
                            actual.contains(e),
                            "version {} missing suppression {e}",
                            state.id()
                        );
                    }
                }
                Node::Cg {
                    parent,
                    cell,
                    completion,
                    abandon,
                } => {
                    assert!(parent.is_some(), "CG vertex cannot be root");
                    assert!(self
                        .cg_vertices
                        .get(&cell.id())
                        .is_some_and(|v| v.contains(&id)));
                    if let Some(c) = completion {
                        self.assert_child_link(id, *c);
                    }
                    if let Some(a) = abandon {
                        self.assert_child_link(id, *a);
                    }
                }
            }
        }
        assert_eq!(seen_versions, self.version_count);
    }

    fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        match self.node(node) {
            Node::Version { parent, .. } | Node::Cg { parent, .. } => *parent,
        }
    }

    fn assert_child_link(&self, parent: NodeId, child: NodeId) {
        assert_eq!(self.parent_of(child), Some(parent), "broken parent link");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::CgStatus;
    use spectre_query::{Expr, Pattern, Query, WindowSpec};

    /// Test factory: sequential ids, no metrics.
    struct TestFactory {
        query: Arc<Query>,
        next_wv: u64,
        next_cg: u64,
    }

    impl VersionFactory for TestFactory {
        fn fresh(
            &mut self,
            window: &Arc<WindowInfo>,
            suppressed: Vec<Arc<CgCell>>,
        ) -> Arc<VersionState> {
            let v = VersionState::new(
                WvId(self.next_wv),
                Arc::clone(window),
                Arc::clone(&self.query),
                suppressed,
            );
            self.next_wv += 1;
            v
        }

        fn clone_of(
            &mut self,
            source: &Arc<VersionState>,
            suppressed: Vec<Arc<CgCell>>,
            expected_open: &[CgId],
        ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)> {
            let id = WvId(self.next_wv);
            self.next_wv += 1;
            let next_cg = &mut self.next_cg;
            let mut mk_twin = |cell: &CgCell| {
                let t = Arc::new(cell.twin(CgId(*next_cg)));
                *next_cg += 1;
                t
            };
            VersionState::clone_speculative(source, id, suppressed, expected_open, &mut mk_twin)
        }
    }

    struct Fixture {
        tree: DependencyTree,
        factory: TestFactory,
    }

    impl Fixture {
        fn new() -> Self {
            let query = Arc::new(
                Query::builder("t")
                    .pattern(Pattern::builder().one("A", Expr::truth()).build().unwrap())
                    .window(WindowSpec::count_sliding(4, 2).unwrap())
                    .build()
                    .unwrap(),
            );
            Fixture {
                tree: DependencyTree::new(),
                factory: TestFactory {
                    query,
                    next_wv: 0,
                    next_cg: 0,
                },
            }
        }

        fn open_window(&mut self, id: u64) -> Vec<Arc<VersionState>> {
            let window = Arc::new(WindowInfo::new(id, id * 2, id * 2, id * 2));
            let out = self.tree.new_window(&window, &mut self.factory);
            self.tree.assert_invariants();
            out
        }

        fn create_cg(&mut self, creator: &Arc<VersionState>) -> Arc<CgCell> {
            let cell = Arc::new(CgCell::new(
                CgId(self.factory.next_cg),
                creator.window().id,
                1,
            ));
            self.factory.next_cg += 1;
            assert!(self
                .tree
                .cg_created(creator.id(), Arc::clone(&cell), &mut self.factory));
            self.tree.assert_invariants();
            cell
        }
    }

    #[test]
    fn independent_window_becomes_root() {
        let mut f = Fixture::new();
        let created = f.open_window(0);
        assert_eq!(created.len(), 1);
        assert_eq!(f.tree.version_count(), 1);
        assert_eq!(f.tree.root_version().unwrap().id(), created[0].id());
        assert!(created[0].suppressed().is_empty());
    }

    #[test]
    fn cg_creation_doubles_dependent_versions() {
        // Paper Fig. 3: w1 with CG, w2 depends.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 1);
        let cg = f.create_cg(&w1);
        // w2 now has two versions: original (abandon) + copy (completion).
        assert_eq!(f.tree.version_count(), 3);
        let versions = f.tree.versions();
        let w2_versions: Vec<_> = versions.iter().filter(|v| v.window().id == 1).collect();
        assert_eq!(w2_versions.len(), 2);
        let suppressing = w2_versions
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg.id()))
            .count();
        assert_eq!(suppressing, 1);
    }

    #[test]
    fn revoked_completion_replaces_unvouched_suppressors() {
        // A version completes a group, the tree splices the resolution,
        // and then the version rolls back: the completion is void, and
        // dependents still suppressing it must be replaced — unless the
        // completing version still vouches for it.
        let mut f = Fixture::new();
        let v0 = f.open_window(0).remove(0);
        let _ = f.open_window(1);
        let cell = f.create_cg(&v0);
        // The owning instance completes the group.
        cell.complete();
        v0.lock().completed_cells.push(Arc::clone(&cell));
        let dropped = f.tree.cg_resolved(cell.id(), true);
        assert_eq!(dropped, 1, "abandon branch dropped");
        f.tree.assert_invariants();
        let suppressor = |tree: &DependencyTree| {
            tree.versions()
                .into_iter()
                .find(|v| v.window().id == 1)
                .expect("a w1 version exists")
        };
        let w1 = suppressor(&f.tree);
        assert!(w1.suppressed().iter().any(|c| c.id() == cell.id()));

        // While v0's state still holds the completion, it is vouched for:
        // the sweep must not touch anything.
        let newer_of = |_: u64| Vec::new();
        let revoked = vec![Arc::clone(&cell)];
        assert_eq!(
            f.tree
                .revoke_completions(&revoked, &newer_of, &mut f.factory),
            0
        );
        assert_eq!(suppressor(&f.tree).id(), w1.id());

        // v0 rolls back: the completion is discarded and reported revoked.
        let outcome = v0.rollback_state();
        assert!(!outcome.restored_checkpoint);
        assert!(outcome.revoked.iter().any(|c| c.id() == cell.id()));
        let dropped = f
            .tree
            .revoke_completions(&outcome.revoked, &newer_of, &mut f.factory);
        assert_eq!(dropped, 1, "the poisoned w1 version is replaced");
        f.tree.assert_invariants();
        assert!(w1.is_dropped());
        let replacement = suppressor(&f.tree);
        assert_ne!(replacement.id(), w1.id());
        assert!(
            replacement.suppressed().is_empty(),
            "the void group is gone from the replacement's world"
        );
    }

    #[test]
    fn new_window_attaches_at_all_leaves() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let _cg = f.create_cg(&w1);
        // leaves: two w2 versions → two w3 versions.
        let w3 = f.open_window(2);
        assert_eq!(w3.len(), 2);
        assert_eq!(f.tree.version_count(), 5);
    }

    #[test]
    fn new_window_under_leaf_cg_creates_both_branches() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        // CG before any dependent window exists: CG vertex is a leaf.
        let cg = f.create_cg(&w1);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 2);
        let suppressing = w2
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg.id()))
            .count();
        assert_eq!(suppressing, 1);
    }

    #[test]
    fn completion_keeps_suppressing_branch() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg = f.create_cg(&w1);
        cg.complete();
        let dropped = f.tree.cg_resolved(cg.id(), true);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1);
        assert_eq!(f.tree.version_count(), 2);
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert!(survivor.suppressed().iter().any(|c| c.id() == cg.id()));
    }

    #[test]
    fn abandonment_keeps_original_branch() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2_orig = f.open_window(1).remove(0);
        let cg = f.create_cg(&w1);
        cg.abandon();
        let dropped = f.tree.cg_resolved(cg.id(), false);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1);
        // The surviving version is the *original* (it kept its state).
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert_eq!(survivor.id(), w2_orig.id());
        assert!(survivor.suppressed().is_empty());
    }

    #[test]
    fn sequential_cgs_accumulate_suppression() {
        // The runtime's actual lifecycle (max_active = 1): a version's
        // groups are created and resolved one after another; completed
        // suppression accumulates in the surviving dependent versions.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg1 = f.create_cg(&w1);
        assert_eq!(f.tree.version_count(), 3);
        cg1.complete();
        f.tree.cg_resolved(cg1.id(), true);
        f.tree.assert_invariants();

        let cg2 = f.create_cg(&w1);
        // Completion chain inherits the cg1 fact from the old child.
        let suppressing_both = f
            .tree
            .versions()
            .iter()
            .filter(|v| v.window().id == 1)
            .filter(|v| {
                let ids: Vec<CgId> = v.suppressed().iter().map(|c| c.id()).collect();
                ids.contains(&cg1.id()) && ids.contains(&cg2.id())
            })
            .count();
        assert_eq!(suppressing_both, 1, "completion branch carries both groups");

        cg2.complete();
        f.tree.cg_resolved(cg2.id(), true);
        f.tree.assert_invariants();
        assert_eq!(f.tree.version_count(), 2);
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        let mut ids: Vec<CgId> = survivor.suppressed().iter().map(|c| c.id()).collect();
        ids.sort();
        assert_eq!(ids, vec![cg1.id(), cg2.id()]);
    }

    #[test]
    fn abandoned_then_completed_keeps_only_completed() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg1 = f.create_cg(&w1);
        cg1.abandon();
        f.tree.cg_resolved(cg1.id(), false);
        f.tree.assert_invariants();
        let cg2 = f.create_cg(&w1);
        cg2.complete();
        f.tree.cg_resolved(cg2.id(), true);
        f.tree.assert_invariants();
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        let ids: Vec<CgId> = survivor.suppressed().iter().map(|c| c.id()).collect();
        assert_eq!(ids, vec![cg2.id()]);
    }

    #[test]
    fn completion_without_dependents_is_recorded_as_fact() {
        // A group completes while no dependent window exists; a window
        // opening afterwards must still suppress the consumed events.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        cg.complete();
        f.tree.cg_resolved(cg.id(), true);
        f.tree.assert_invariants();
        assert_eq!(f.tree.version_count(), 1);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 1);
        assert!(
            w2[0].suppressed().iter().any(|c| c.id() == cg.id()),
            "later window inherits the completed-group fact"
        );
    }

    #[test]
    fn facts_chain_through_later_groups() {
        // cg1 completes with no dependents (fact on w1); cg2 opens; a new
        // window attaching below cg2 must suppress cg1 on *both* edges and
        // cg2 only on the completion edge.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let cg1 = f.create_cg(&w1);
        cg1.complete();
        f.tree.cg_resolved(cg1.id(), true);
        let cg2 = f.create_cg(&w1);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 2);
        for v in &w2 {
            assert!(
                v.suppressed().iter().any(|c| c.id() == cg1.id()),
                "fact cg1 applies to every branch"
            );
        }
        let with_cg2 = w2
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg2.id()))
            .count();
        assert_eq!(with_cg2, 1);
    }

    #[test]
    fn dropped_versions_are_flagged() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2_orig = f.open_window(1).remove(0);
        let cg = f.create_cg(&w1);
        cg.complete();
        f.tree.cg_resolved(cg.id(), true);
        assert!(w2_orig.is_dropped());
    }

    #[test]
    fn retirement_promotes_child() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        let retired = f.tree.retire_root();
        f.tree.assert_invariants();
        assert_eq!(retired.id(), w1.id());
        assert_eq!(f.tree.root_version().unwrap().id(), w2.id());
        let last = f.tree.retire_root();
        assert_eq!(last.id(), w2.id());
        assert!(f.tree.is_empty());
    }

    #[test]
    fn root_blocked_by_cg_detected() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        assert!(!f.tree.root_blocked_by_cg());
        let cg = f.create_cg(&w1);
        assert!(f.tree.root_blocked_by_cg());
        cg.abandon();
        f.tree.cg_resolved(cg.id(), false);
        assert!(!f.tree.root_blocked_by_cg());
    }

    #[test]
    fn top_k_prefers_likely_branches() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg = f.create_cg(&w1);
        // completion probability 0.9 → completion-branch version outranks
        // the abandon-branch version.
        let top = f.tree.top_k(2, &|_c| 0.9);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id(), w1.id()); // root first (prob 1.0)
        assert!(top[1].suppressed().iter().any(|c| c.id() == cg.id()));
        let top_low = f.tree.top_k(3, &|_c| 0.1);
        assert!(top_low[1].suppressed().is_empty());
        let _ = cg;
    }

    #[test]
    fn top_k_skips_finished_versions() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        w1.mark_finished();
        let top = f.tree.top_k(2, &|_c| 0.5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id(), w2.id());
    }

    #[test]
    fn top_k_visits_minimal_vertices_breadth_case() {
        // 50 % probability: SPECTRE explores in breadth (paper §4.2.1).
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let _w3 = f.open_window(2);
        let _cg = f.create_cg(&w1);
        let top = f.tree.top_k(3, &|_c| 0.5);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].id(), w1.id());
        // the two w2 versions (each 0.5) come before any w3 version
        assert_eq!(top[1].window().id, 1);
        assert_eq!(top[2].window().id, 1);
    }

    #[test]
    fn rollback_rebuild_resets_subtree() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2_windows: Vec<Arc<WindowInfo>> = vec![
            Arc::new(WindowInfo::new(1, 2, 2, 2)),
            Arc::new(WindowInfo::new(2, 4, 4, 4)),
        ];
        let _w2 = f.open_window(1);
        let _w3 = f.open_window(2);
        let _cg = f.create_cg(&w1);
        assert_eq!(f.tree.version_count(), 5);
        let dropped = f
            .tree
            .rollback_rebuild(w1.id(), &w2_windows, Vec::new(), &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 4);
        // fresh chain: w1 + one version each of w2, w3
        assert_eq!(f.tree.version_count(), 3);
        let top = f.tree.top_k(3, &|_c| 0.5);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn stale_cg_created_is_ignored() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        // Drop w2's subtree via rollback of w1 (no newer windows recreated).
        f.tree
            .rollback_rebuild(w1.id(), &[], Vec::new(), &mut f.factory);
        assert!(w2.is_dropped());
        // An op from the dropped version arrives late: ignored.
        let cell = Arc::new(CgCell::new(CgId(99), 1, 1));
        assert!(!f.tree.cg_created(w2.id(), cell, &mut f.factory));
        f.tree.assert_invariants();
    }

    #[test]
    fn resolved_cell_status_is_visible_to_predictor_paths() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        assert_eq!(cg.status(), CgStatus::Open);
        cg.complete();
        assert!(cg.is_resolved());
    }
}
