//! The dependency tree of window versions and consumption groups
//! (paper §3.1, Figs. 3, 4 and 6).
//!
//! Vertices are either *window versions* (with at most one child) or
//! *consumption groups* (with a *completion* edge and an *abandon* edge).
//! The invariants from the paper:
//!
//! * the root is the only version of the oldest unretired window,
//! * all versions reachable via a CG's completion edge suppress that CG's
//!   events; versions on the abandon edge are unaffected,
//! * creating a CG doubles the creator's dependent subtree (the old subtree
//!   becomes the abandon branch, a suppressing copy the completion branch),
//! * resolving a CG drops the losing branch and splices the winner up,
//! * new windows attach fresh versions at every leaf.
//!
//! Additions needed for a working system (the paper describes these
//! operationally): rollback teardown (a rolled-back version's dependent
//! subtree is rebuilt from scratch, since its consumption groups were
//! produced by invalid processing) and root retirement (emitting a finished,
//! confirmed root version and promoting its child).
//!
//! # Lazy completion branches
//!
//! Creating a CG nominally *doubles* the creator's dependent subtree —
//! O(tree) state cloning per group, which dominates consumption-heavy
//! workloads (most cloned branches are dropped before ever being
//! scheduled). When lazy materialization is on (the default,
//! [`SpectreConfig::lazy_materialization`](crate::SpectreConfig::lazy_materialization)),
//! [`cg_created`](DependencyTree::cg_created) instead installs a single
//! `Lazy` vertex on the completion edge: a thunk whose
//! materialization source is the sibling abandon edge and whose
//! suppressed-set delta is the owning CG's cell. The branch is
//! [materialized](DependencyTree::top_k) — cloned from the *current*
//! abandon-side state, twin cells and all — only when the top-k selection
//! actually schedules it or its group completes; a lazy branch dropped by
//! an abandonment, a rollback teardown or a losing outer branch costs
//! nothing. Cloning from a source that has advanced past the group's
//! events is sound for the same reason eager clones survive late group
//! updates: the consistency checks (and the final validation at
//! retirement) detect the overlap and roll the copy back.

use std::collections::HashMap;
use std::sync::Arc;

use crate::cg::{CgCell, CgId};
use crate::store::WindowInfo;
use crate::version::{VersionState, WvId};

/// Vertex handle inside the arena.
type NodeId = usize;

#[derive(Debug)]
enum Node {
    Version {
        parent: Option<NodeId>,
        state: Arc<VersionState>,
        child: Option<NodeId>,
        /// Completed consumption groups owned by this version whose splice
        /// found *no* dependent versions to carry the suppression (the
        /// completion edge was empty). Dependent versions created later —
        /// by window attach or chain building — must still suppress these
        /// consumed events, so the facts are inherited into every new
        /// suppressed set derived from this vertex.
        facts: Vec<Arc<CgCell>>,
    },
    Cg {
        parent: Option<NodeId>,
        cell: Arc<CgCell>,
        completion: Option<NodeId>,
        abandon: Option<NodeId>,
    },
    /// An unmaterialized completion branch: stands for "the parent CG's
    /// abandon-side subtree, re-suppressed under the parent's cell". It
    /// carries no state of its own — the materialization source (the
    /// abandon edge) and the suppressed-set delta (the cell) are both read
    /// from the parent CG vertex at materialization time, so creation and
    /// teardown are O(1). `stamp` is a unique id that lets queued top-k
    /// candidates detect arena-slot reuse (a thunk can be freed and its
    /// slot recycled for a *different* thunk while the walk is in
    /// progress — see [`top_k`](DependencyTree::top_k)).
    Lazy { parent: Option<NodeId>, stamp: u64 },
    /// A pending tail of fresh window versions: windows attached to this
    /// leaf lineage (ascending by id) whose versions have not been created
    /// yet. Like `Lazy`, the marker holds no version state — the
    /// suppression context is derived from the parent at materialization
    /// time — so attaching a window to a lineage is O(1) and a marker
    /// dropped with a losing branch costs nothing. Materialized into a
    /// [`fresh_chain`](DependencyTree::fresh_chain) when the top-k
    /// selection schedules the lineage or the root lineage retires into
    /// it. `stamp` is a unique id that lets queued top-k candidates detect
    /// arena-slot reuse.
    PendingAttach {
        parent: Option<NodeId>,
        windows: Vec<Arc<WindowInfo>>,
        stamp: u64,
    },
}

/// Materializes window versions and twin cells for the tree. The splitter
/// implements this to allocate ids and keep metrics; test fixtures provide
/// counters.
pub trait VersionFactory {
    /// Creates a fresh version of `window` (processing starts at the window
    /// start) with the given suppressed set.
    fn fresh(
        &mut self,
        window: &Arc<WindowInfo>,
        suppressed: Vec<Arc<CgCell>>,
    ) -> Arc<VersionState>;

    /// Clones `source`'s processing state into a new version with the given
    /// suppressed set. Every open consumption group of the clone is
    /// replaced, atomically under the source's state lock, by an
    /// independent *twin* cell; the created `(original id, twin)` pairs are
    /// returned so the tree can key the copied group vertices to them.
    ///
    /// Returns `None` when the clone holds an open group outside
    /// `expected_open` — the tree state predates that group (its `CgCreated`
    /// op is still in flight), so the copy must fall back to fresh versions.
    #[allow(clippy::type_complexity)]
    fn clone_of(
        &mut self,
        source: &Arc<VersionState>,
        suppressed: Vec<Arc<CgCell>>,
        expected_open: &[CgId],
    ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)>;
}

/// The dependency tree.
///
/// All mutating operations are driven by the splitter during its maintenance
/// cycle; the tree is not shared across threads.
#[derive(Debug)]
pub struct DependencyTree {
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    root: Option<NodeId>,
    version_vertex: HashMap<u64, NodeId>,
    cg_vertices: HashMap<CgId, Vec<NodeId>>,
    version_count: usize,
    /// When set (the default), completion branches are created as lazy
    /// vertices and cloned only on demand; when clear,
    /// [`cg_created`](Self::cg_created) copies the dependent subtree
    /// eagerly (the original behavior, kept for A/B comparison).
    lazy: bool,
    /// When set (the default), newly opened windows are recorded on
    /// pending-attach markers (one per leaf lineage) instead of eagerly
    /// creating one fresh version per leaf; when clear,
    /// [`new_window`](Self::new_window) attaches eagerly.
    lazy_attach: bool,
    /// Monotonic stamp source for thunk vertices (lazy branches and
    /// pending-attach markers).
    next_thunk_stamp: u64,
    /// Windows currently recorded on pending-attach markers, summed over
    /// all markers (kept incrementally: the back-pressure check reads it
    /// per ingested event).
    pending_window_count: usize,
    /// Versions created by materializing lazy branches since the last
    /// [`take_lazy_stats`](Self::take_lazy_stats).
    versions_materialized: u64,
    /// Lazy branches discarded unmaterialized since the last
    /// [`take_lazy_stats`](Self::take_lazy_stats) — speculation that cost
    /// nothing.
    lazy_versions_dropped: u64,
}

impl Default for DependencyTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DependencyTree {
    /// Creates an empty tree with lazy completion branches *and* lazy
    /// window attach (the defaults).
    pub fn new() -> Self {
        Self::with_modes(true, true)
    }

    /// Creates an empty tree that copies completion branches eagerly at
    /// [`cg_created`](Self::cg_created) and attaches windows eagerly (the
    /// fully pre-lazy behavior).
    pub fn eager() -> Self {
        Self::with_modes(false, false)
    }

    /// Creates an empty tree with the given completion-branch
    /// materialization mode and *eager* window attach (the PR-3
    /// configuration; the structural unit tests pin this shape).
    pub fn with_lazy(lazy: bool) -> Self {
        Self::with_modes(lazy, false)
    }

    /// Creates an empty tree with the given completion-branch and window-
    /// attach materialization modes.
    pub fn with_modes(lazy: bool, lazy_attach: bool) -> Self {
        DependencyTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            version_vertex: HashMap::new(),
            cg_vertices: HashMap::new(),
            version_count: 0,
            lazy,
            lazy_attach,
            next_thunk_stamp: 0,
            pending_window_count: 0,
            versions_materialized: 0,
            lazy_versions_dropped: 0,
        }
    }

    /// Drains the lazy-materialization counters accumulated since the last
    /// call: `(versions materialized, lazy branches dropped unmaterialized)`.
    /// The splitter flushes these into the shared
    /// [`Metrics`](crate::metrics::Metrics) once per maintenance cycle.
    pub fn take_lazy_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.versions_materialized),
            std::mem::take(&mut self.lazy_versions_dropped),
        )
    }

    /// Number of live window versions — the paper's "tree size" metric
    /// (Fig. 10(f)).
    pub fn version_count(&self) -> usize {
        self.version_count
    }

    /// `true` when no window is live.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The root version (of the oldest unretired window).
    pub fn root_version(&self) -> Option<&Arc<VersionState>> {
        let id = self.root?;
        match self.node(id) {
            Node::Version { state, .. } => Some(state),
            _ => unreachable!("root is always a version"),
        }
    }

    /// `true` if the root version still has an unspliced consumption-group
    /// vertex as child (retirement must wait for its resolution ops).
    pub fn root_blocked_by_cg(&self) -> bool {
        let Some(root) = self.root else { return false };
        let Node::Version { child, .. } = self.node(root) else {
            unreachable!("root is always a version")
        };
        matches!(child.map(|c| self.node(c)), Some(Node::Cg { .. }))
    }

    /// Looks up the version state registered for `wv`.
    pub fn version(&self, wv: WvId) -> Option<&Arc<VersionState>> {
        let &node = self.version_vertex.get(&wv.0)?;
        match self.node(node) {
            Node::Version { state, .. } => Some(state),
            _ => None,
        }
    }

    /// `true` if `id` is an unmaterialized completion branch.
    fn is_lazy(&self, id: NodeId) -> bool {
        matches!(self.node(id), Node::Lazy { .. })
    }

    /// `true` if `id` is a pending-attach marker.
    fn is_pending_attach(&self, id: NodeId) -> bool {
        matches!(self.node(id), Node::PendingAttach { .. })
    }

    /// Number of unmaterialized completion branches (diagnostics/tests).
    pub fn lazy_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Some(Node::Lazy { .. })))
            .count()
    }

    /// Number of pending-attach markers (diagnostics/tests).
    pub fn pending_attach_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Some(Node::PendingAttach { .. })))
            .count()
    }

    /// Total windows recorded on pending-attach markers — fresh versions
    /// the lazy attach has not had to create yet (diagnostics/tests).
    pub fn pending_attach_windows(&self) -> usize {
        self.pending_window_count
    }

    /// Speculative load the tree represents: live versions plus the
    /// deferred versions pending-attach markers stand for. This — not
    /// [`version_count`](Self::version_count) alone — is what ingestion
    /// back-pressure must bound: lazy attach keeps the version count
    /// artificially low while windows pile up, and every
    /// completion-driven rebuild spans all of them.
    pub fn speculative_load(&self) -> usize {
        self.version_count + self.pending_window_count
    }

    /// Allocates a fresh lazy completion-branch thunk.
    fn alloc_lazy(&mut self, parent: Option<NodeId>) -> NodeId {
        let stamp = self.next_thunk_stamp;
        self.next_thunk_stamp += 1;
        self.alloc(Node::Lazy { parent, stamp })
    }

    /// Allocates a fresh pending-attach marker holding `windows`.
    fn alloc_attach_marker(
        &mut self,
        parent: Option<NodeId>,
        windows: Vec<Arc<WindowInfo>>,
    ) -> NodeId {
        let stamp = self.next_thunk_stamp;
        self.next_thunk_stamp += 1;
        self.pending_window_count += windows.len();
        self.alloc(Node::PendingAttach {
            parent,
            windows,
            stamp,
        })
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn register_version(&mut self, id: NodeId, state: &Arc<VersionState>) {
        self.version_vertex.insert(state.id().0, id);
        self.version_count += 1;
    }

    fn alloc_version(&mut self, parent: Option<NodeId>, state: Arc<VersionState>) -> NodeId {
        let id = self.alloc(Node::Version {
            parent,
            state: Arc::clone(&state),
            child: None,
            facts: Vec::new(),
        });
        self.register_version(id, &state);
        id
    }

    /// Attaches versions of a newly opened window at every leaf
    /// (paper Fig. 4, `newWindow`). Returns the created versions.
    pub fn new_window(
        &mut self,
        window: &Arc<WindowInfo>,
        f: &mut dyn VersionFactory,
    ) -> Vec<Arc<VersionState>> {
        let mut created = Vec::new();
        match self.root {
            None => {
                // Independent window: single version, no suppression (an
                // empty tree implies no live overlapping window; see the
                // retirement argument in DESIGN.md).
                let state = f.fresh(window, Vec::new());
                let id = self.alloc_version(None, Arc::clone(&state));
                self.root = Some(id);
                created.push(state);
            }
            Some(root) => {
                self.attach_recursive(root, window, f, &mut created);
            }
        }
        created
    }

    fn attach_recursive(
        &mut self,
        node: NodeId,
        window: &Arc<WindowInfo>,
        f: &mut dyn VersionFactory,
        created: &mut Vec<Arc<VersionState>>,
    ) {
        // A lineage that already ends in a pending-attach marker absorbs
        // the window with one push — this is what makes per-window attach
        // O(lineages) pointer work instead of O(leaves) version creation.
        if let Node::PendingAttach { windows, .. } = self.node_mut(node) {
            debug_assert!(windows.last().is_none_or(|w| w.id < window.id));
            windows.push(Arc::clone(window));
            self.pending_window_count += 1;
            return;
        }
        match self.node(node) {
            Node::Version {
                child,
                state,
                facts,
                ..
            } => match child {
                Some(c) => {
                    let c = *c;
                    self.attach_recursive(c, window, f, created);
                }
                None if self.lazy_attach => {
                    let id = self.alloc_attach_marker(Some(node), vec![Arc::clone(window)]);
                    let Node::Version { child, .. } = self.node_mut(node) else {
                        unreachable!()
                    };
                    *child = Some(id);
                }
                None => {
                    let mut suppressed = state.suppressed().to_vec();
                    suppressed.extend(facts.iter().cloned());
                    let state = f.fresh(window, suppressed);
                    let id = self.alloc_version(Some(node), Arc::clone(&state));
                    let Node::Version { child, .. } = self.node_mut(node) else {
                        unreachable!()
                    };
                    *child = Some(id);
                    created.push(state);
                }
            },
            Node::Cg {
                completion,
                abandon,
                cell,
                ..
            } => {
                let (completion, abandon, cell) = (*completion, *abandon, Arc::clone(cell));
                match completion {
                    // An unmaterialized branch needs no per-window work: its
                    // materialization clones the abandon side, which this
                    // attach extends below.
                    Some(c) if self.is_lazy(c) => {}
                    Some(c) => self.attach_recursive(c, window, f, created),
                    None if self.lazy => {
                        // Defer the completion-side version the same way
                        // cg_created defers the completion-side copy.
                        let id = self.alloc_lazy(Some(node));
                        let Node::Cg { completion, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *completion = Some(id);
                    }
                    None if self.lazy_attach => {
                        // A marker on a completion edge adds the group's
                        // cell to the suppression at materialization time.
                        let id = self.alloc_attach_marker(Some(node), vec![Arc::clone(window)]);
                        let Node::Cg { completion, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *completion = Some(id);
                    }
                    None => {
                        let mut supp = self.suppression_above(node);
                        supp.push(Arc::clone(&cell));
                        let state = f.fresh(window, supp);
                        let id = self.alloc_version(Some(node), Arc::clone(&state));
                        let Node::Cg { completion, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *completion = Some(id);
                        created.push(state);
                    }
                }
                match abandon {
                    Some(a) => self.attach_recursive(a, window, f, created),
                    None if self.lazy_attach => {
                        let id = self.alloc_attach_marker(Some(node), vec![Arc::clone(window)]);
                        let Node::Cg { abandon, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *abandon = Some(id);
                    }
                    None => {
                        let supp = self.suppression_above(node);
                        let state = f.fresh(window, supp);
                        let id = self.alloc_version(Some(node), Arc::clone(&state));
                        let Node::Cg { abandon, .. } = self.node_mut(node) else {
                            unreachable!()
                        };
                        *abandon = Some(id);
                        created.push(state);
                    }
                }
            }
            Node::Lazy { .. } => unreachable!("attach never descends into lazy vertices"),
            Node::PendingAttach { .. } => unreachable!("handled above"),
        }
    }

    /// Suppression set that applies *above* a CG vertex: the nearest
    /// ancestor version's suppressed set (plus its recorded facts) plus
    /// every completion edge between it and `node` (exclusive of `node`'s
    /// own cell).
    fn suppression_above(&self, node: NodeId) -> Vec<Arc<CgCell>> {
        let mut extra: Vec<Arc<CgCell>> = Vec::new();
        let mut cur = node;
        loop {
            let Some(p) = self.parent_of(cur) else {
                unreachable!("CG vertices always have a version ancestor")
            };
            match self.node(p) {
                Node::Version { state, facts, .. } => {
                    let mut supp = state.suppressed().to_vec();
                    supp.extend(facts.iter().cloned());
                    extra.reverse();
                    supp.extend(extra);
                    return supp;
                }
                Node::Cg {
                    cell, completion, ..
                } => {
                    if *completion == Some(cur) {
                        extra.push(Arc::clone(cell));
                    }
                    cur = p;
                }
                Node::Lazy { .. } | Node::PendingAttach { .. } => {
                    unreachable!("thunk vertices have no children")
                }
            }
        }
    }

    /// Inserts a new consumption group under its creator version
    /// (paper Fig. 4, `consumptionGroupCreated`): the old dependent subtree
    /// becomes the abandon branch; a *modified copy* that suppresses the
    /// group's events becomes the completion branch.
    ///
    /// The copy clones each dependent version's processing state — the
    /// paper's intent, since reprocessing every dependent window on each
    /// group creation would erase the speculation win — with one essential
    /// correction: a copied consumption-group vertex cannot share its
    /// original's identity. The copied versions continue the same partial
    /// matches in an *alternative world*, and the two worlds may resolve a
    /// match differently; sharing identity would apply one branch's outcome
    /// to the other (unsound), or leave the copy unresolved forever when the
    /// original's branch is dropped first (deadlock). Every open group
    /// vertex in the copy therefore gets an independent **twin cell** (same
    /// events and completion distance, fresh id), owned and resolved by the
    /// cloned version that continues the match. Retroactive conflicts with
    /// the new group's events are caught by the copies' consistency checks,
    /// exactly as for any late group update (paper Fig. 8).
    ///
    /// Returns `false` (no-op) if the creator version is no longer in the
    /// tree — its subtree was dropped by a concurrent resolution or
    /// rollback, making the operation stale.
    ///
    /// With lazy materialization on (the default), the completion branch is
    /// a single lazy thunk instead of a copy: creation is O(1) in
    /// tree size, and the clone happens only if the top-k selection
    /// schedules the branch or the group completes.
    pub fn cg_created(
        &mut self,
        creator: WvId,
        cell: Arc<CgCell>,
        f: &mut dyn VersionFactory,
    ) -> bool {
        let Some(&vnode) = self.version_vertex.get(&creator.0) else {
            return false;
        };
        let Node::Version { child, .. } = self.node(vnode) else {
            unreachable!()
        };
        let old_child = *child;

        let copy = if self.lazy {
            old_child.map(|_| self.alloc_lazy(None))
        } else {
            old_child.and_then(|c| {
                let mut twins = HashMap::new();
                let mut stray_facts = Vec::new();
                let copied = self.copy_stateful(c, &cell, &mut twins, f, &mut stray_facts, &[]);
                debug_assert!(
                    stray_facts.is_empty(),
                    "the copy root is a version vertex and collects its own facts"
                );
                copied
            })
        };
        let cg_node = self.alloc(Node::Cg {
            parent: Some(vnode),
            cell: Arc::clone(&cell),
            completion: copy,
            abandon: old_child,
        });
        if let Some(c) = copy {
            self.set_parent(c, cg_node);
        }
        if let Some(c) = old_child {
            self.set_parent(c, cg_node);
        }
        let Node::Version { child, .. } = self.node_mut(vnode) else {
            unreachable!()
        };
        *child = Some(cg_node);
        self.cg_vertices.entry(cell.id()).or_default().push(cg_node);
        true
    }

    /// Distinct windows of the versions in `src`'s subtree, ascending by id.
    fn subtree_windows(&self, src: NodeId) -> Vec<Arc<WindowInfo>> {
        let mut windows: Vec<Arc<WindowInfo>> = Vec::new();
        let mut stack = vec![src];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                Node::Version { state, child, .. } => {
                    if !windows.iter().any(|w| w.id == state.window().id) {
                        windows.push(Arc::clone(state.window()));
                    }
                    if let Some(c) = child {
                        stack.push(*c);
                    }
                }
                Node::Cg {
                    completion,
                    abandon,
                    ..
                } => {
                    if let Some(c) = completion {
                        stack.push(*c);
                    }
                    if let Some(a) = abandon {
                        stack.push(*a);
                    }
                }
                // A lazy branch mirrors the sibling abandon edge, whose
                // windows the traversal collects anyway.
                Node::Lazy { .. } => {}
                // Pending-attach windows count: their fresh versions have
                // not been created yet, but the lineage covers them.
                Node::PendingAttach { windows: w, .. } => {
                    for window in w {
                        if !windows.iter().any(|x| x.id == window.id) {
                            windows.push(Arc::clone(window));
                        }
                    }
                }
            }
        }
        windows.sort_by_key(|w| w.id);
        windows
    }

    /// Builds a parentless chain of fresh versions (one per window, in the
    /// given order), all suppressing `suppression`. Returns the chain head.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty.
    fn fresh_chain(
        &mut self,
        windows: &[Arc<WindowInfo>],
        suppression: &[Arc<CgCell>],
        f: &mut dyn VersionFactory,
    ) -> NodeId {
        let mut head: Option<NodeId> = None;
        let mut cur: Option<NodeId> = None;
        for window in windows {
            let state = f.fresh(window, suppression.to_vec());
            let id = self.alloc_version(cur, state);
            if let Some(p) = cur {
                let Node::Version { child, .. } = self.node_mut(p) else {
                    unreachable!("chain links versions only")
                };
                *child = Some(id);
            } else {
                head = Some(id);
            }
            cur = Some(id);
        }
        head.expect("chain must cover at least one window")
    }

    /// Copies `src`'s subtree for the completion branch of `extra`
    /// (see [`cg_created`](Self::cg_created)). Version state is cloned;
    /// open consumption-group vertices get twin cells (recorded in
    /// `twins`); vertices of groups that already resolved (their splice op
    /// still in flight) are pre-spliced in the copy. A completed-and-empty
    /// vertex pushes its cell into `facts_out`, to be recorded on the
    /// nearest copied ancestor version.
    ///
    /// Returns the copied subtree root, or `None` if nothing remains (the
    /// subtree was a single pre-spliced vertex with an empty winner edge).
    fn copy_stateful(
        &mut self,
        src: NodeId,
        extra: &Arc<CgCell>,
        twins: &mut HashMap<CgId, Arc<CgCell>>,
        f: &mut dyn VersionFactory,
        facts_out: &mut Vec<Arc<CgCell>>,
        inherited: &[Arc<CgCell>],
    ) -> Option<NodeId> {
        match self.node(src) {
            Node::Version {
                state,
                child,
                facts,
                ..
            } => {
                let (state, child, mut new_facts) = (Arc::clone(state), *child, facts.clone());
                // Rewrite the suppressed set: twins replace open groups
                // whose vertices lie inside the copy (recorded by ancestor
                // recursion steps); resolved cells and groups above the
                // creator stay shared. Append the new group last.
                let mut suppressed: Vec<Arc<CgCell>> = state
                    .suppressed()
                    .iter()
                    .map(|c| twins.get(&c.id()).cloned().unwrap_or_else(|| Arc::clone(c)))
                    .collect();
                // Completions inherited from cloned ancestors whose splice
                // ops were lost (the ancestor was dropped with its
                // CgCreated op still in flight; the clone carries the
                // consumed events) must be suppressed here too.
                for cell in inherited {
                    if !suppressed.iter().any(|c| c.id() == cell.id()) {
                        suppressed.push(Arc::clone(cell));
                    }
                }
                suppressed.push(Arc::clone(extra));

                // Groups this version may legitimately hold open: the CG
                // vertex directly below it, if any (its own speculation
                // point).
                let expected_open: Vec<CgId> = match child.map(|c| self.node(c)) {
                    Some(Node::Cg { cell, .. }) => vec![cell.id()],
                    _ => Vec::new(),
                };
                let Some((new_state, new_twins)) =
                    f.clone_of(&state, suppressed.clone(), &expected_open)
                else {
                    // An open group of `state` has no vertex yet (its
                    // CgCreated op is still in flight): the clone would
                    // share ownership of that group. Fall back to fresh
                    // versions for this whole subtree; the speculation
                    // below re-emerges as they reprocess.
                    let windows = self.subtree_windows(src);
                    return Some(self.fresh_chain(&windows, &suppressed, f));
                };
                twins.extend(new_twins);
                // The clone's completed groups stand in its world whether
                // or not the tree ever saw their vertices (the original may
                // be dropped with the CgCreated op still in flight, which
                // stale-drops it). Dependent copies below must suppress
                // them, and windows attached below the clone later must
                // inherit them as facts.
                let clone_completed: Vec<Arc<CgCell>> = new_state.lock().completed_cells.clone();
                let mut inherited_next: Vec<Arc<CgCell>> = inherited.to_vec();
                for cell in &clone_completed {
                    if !inherited_next.iter().any(|c| c.id() == cell.id()) {
                        inherited_next.push(Arc::clone(cell));
                    }
                }
                for cell in &clone_completed {
                    if !new_facts.iter().any(|c| c.id() == cell.id()) {
                        new_facts.push(Arc::clone(cell));
                    }
                }
                let new_id = self.alloc_version(None, new_state);
                if let Some(c) = child {
                    let mut child_facts = Vec::new();
                    if let Some(cc) =
                        self.copy_stateful(c, extra, twins, f, &mut child_facts, &inherited_next)
                    {
                        self.set_parent(cc, new_id);
                        let Node::Version { child, .. } = self.node_mut(new_id) else {
                            unreachable!()
                        };
                        *child = Some(cc);
                    }
                    new_facts.extend(child_facts);
                }
                let Node::Version { facts, .. } = self.node_mut(new_id) else {
                    unreachable!()
                };
                *facts = new_facts;
                Some(new_id)
            }
            Node::Cg {
                cell,
                completion,
                abandon,
                ..
            } => {
                let (cell, completion, abandon) = (Arc::clone(cell), *completion, *abandon);
                let Some(twin) = twins.get(&cell.id()).cloned() else {
                    // The owner's clone (made just above in the recursion)
                    // no longer holds this group open: the owner resolved
                    // it and the splice op is in flight. Pre-apply the
                    // splice in the copy. The status was published under
                    // the owner's state lock before the clone was taken,
                    // so it is visible here.
                    let completed = cell.status() == crate::cg::CgStatus::Completed;
                    debug_assert!(
                        cell.is_resolved(),
                        "un-twinned group vertices are resolved-pending"
                    );
                    let winner = if completed {
                        // A completed group whose own completion branch is
                        // still a thunk: realize it in the *source* tree
                        // first (fresh rebuild, exactly as cg_resolved
                        // will when the in-flight splice op arrives). A
                        // pending-attach marker on the edge materializes
                        // for the same reason — the splice is about to
                        // detach it from the vertex that carries the
                        // group's suppression.
                        match completion {
                            Some(c) if self.is_lazy(c) => self.rebuild_completion_fresh(src, c, f),
                            Some(c) if self.is_pending_attach(c) => {
                                Some(self.materialize_attach(c, f))
                            }
                            other => other,
                        }
                    } else {
                        abandon
                    };
                    return match winner {
                        Some(w) => self.copy_stateful(w, extra, twins, f, facts_out, inherited),
                        None => {
                            if completed {
                                facts_out.push(cell);
                            }
                            None
                        }
                    };
                };
                let new_id = self.alloc(Node::Cg {
                    parent: None,
                    cell: Arc::clone(&twin),
                    completion: None,
                    abandon: None,
                });
                self.cg_vertices.entry(twin.id()).or_default().push(new_id);
                if let Some(c) = completion {
                    // An unmaterialized branch copies as an unmaterialized
                    // branch: the copy's thunk re-suppresses the copy's own
                    // abandon edge under the twin cell — laziness survives
                    // nested group creation.
                    if self.is_lazy(c) {
                        let lz = self.alloc_lazy(Some(new_id));
                        let Node::Cg { completion, .. } = self.node_mut(new_id) else {
                            unreachable!()
                        };
                        *completion = Some(lz);
                    } else {
                        let mut sub_facts = Vec::new();
                        let cc = self.copy_stateful(c, extra, twins, f, &mut sub_facts, inherited);
                        debug_assert!(
                            sub_facts.is_empty(),
                            "edge children are version vertices which keep their own facts"
                        );
                        if let Some(cc) = cc {
                            self.set_parent(cc, new_id);
                            let Node::Cg { completion, .. } = self.node_mut(new_id) else {
                                unreachable!()
                            };
                            *completion = Some(cc);
                        }
                    }
                }
                if let Some(a) = abandon {
                    let mut sub_facts = Vec::new();
                    let ac = self.copy_stateful(a, extra, twins, f, &mut sub_facts, inherited);
                    debug_assert!(sub_facts.is_empty());
                    if let Some(ac) = ac {
                        self.set_parent(ac, new_id);
                        let Node::Cg { abandon, .. } = self.node_mut(new_id) else {
                            unreachable!()
                        };
                        *abandon = Some(ac);
                    }
                }
                Some(new_id)
            }
            Node::Lazy { .. } => unreachable!("lazy vertices are copied at their parent CG edge"),
            // A pending attach copies as a pending attach: the copy's
            // suppression context is derived from its *own* parent chain at
            // materialization time (which carries `extra` and the twins),
            // so nothing but the window list needs to move — laziness
            // survives subtree copies.
            Node::PendingAttach { windows, .. } => {
                let windows = windows.clone();
                Some(self.alloc_attach_marker(None, windows))
            }
        }
    }

    /// Materializes an unmaterialized completion branch: clones the parent
    /// CG's *current* abandon-side subtree — via the same
    /// [`copy_stateful`](Self::copy_stateful) machinery `cg_created` uses
    /// eagerly — with the parent's cell appended to every suppressed set,
    /// and installs the clone as the completion edge. Returns the new edge
    /// (`None` when the abandon side holds no versions: the branch
    /// materializes to the same emptiness an eager copy would have
    /// collapsed to).
    ///
    /// Cloning from the *live* abandon-side state (which may have advanced
    /// past, or even processed, events the group consumed) is sound: the
    /// clone's consistency bookkeeping restarts from scratch, so its first
    /// check — and at the latest the final validation before retirement —
    /// detects any overlap with the suppressed groups and rolls the clone
    /// back, exactly as an eager copy handles a late group update.
    fn materialize(&mut self, lazy: NodeId, f: &mut dyn VersionFactory) -> Option<NodeId> {
        let Node::Lazy { parent, .. } = self.node(lazy) else {
            unreachable!("materialize takes a lazy vertex")
        };
        let cg = parent.expect("lazy vertices hang off a CG vertex");
        let Node::Cg {
            cell,
            completion,
            abandon,
            ..
        } = self.node(cg)
        else {
            unreachable!("lazy parents are CG vertices")
        };
        debug_assert_eq!(*completion, Some(lazy));
        let (cell, source) = (Arc::clone(cell), *abandon);
        self.nodes[lazy] = None;
        self.free.push(lazy);
        let before = self.version_count;
        let copy = source.and_then(|src| {
            let mut twins = HashMap::new();
            let mut stray_facts = Vec::new();
            let copied = self.copy_stateful(src, &cell, &mut twins, f, &mut stray_facts, &[]);
            // A stray fact can only surface when the source root is itself
            // a resolved-pending CG vertex that pre-spliced to nothing;
            // record it on the nearest ancestor version (the group owner),
            // as cg_resolved does for an empty completion edge.
            if !stray_facts.is_empty() {
                let mut owner = cg;
                loop {
                    match self.node_mut(owner) {
                        Node::Version { facts, .. } => {
                            for cell in stray_facts.drain(..) {
                                if !facts.iter().any(|c| c.id() == cell.id()) {
                                    facts.push(cell);
                                }
                            }
                            break;
                        }
                        Node::Cg { parent, .. }
                        | Node::Lazy { parent, .. }
                        | Node::PendingAttach { parent, .. } => {
                            owner = parent.expect("CG vertices have version ancestors");
                        }
                    }
                }
            }
            copied
        });
        self.versions_materialized += (self.version_count - before) as u64;
        let Node::Cg { completion, .. } = self.node_mut(cg) else {
            unreachable!()
        };
        *completion = copy;
        if let Some(c) = copy {
            self.set_parent(c, cg);
        }
        copy
    }

    /// Replaces the unmaterialized completion branch of `cg_node` with a
    /// chain of *fresh* versions — one per window of the (doomed) abandon
    /// side — suppressing the group's cell on top of the suppression above
    /// the vertex. This is the completion path for branches the scheduler
    /// never chose (see [`cg_resolved`](Self::cg_resolved)): no state is
    /// worth cloning, so none is, and the fresh versions simply reprocess —
    /// the position every viable clone would have rolled back to. Returns
    /// the new completion edge.
    fn rebuild_completion_fresh(
        &mut self,
        cg_node: NodeId,
        lazy: NodeId,
        f: &mut dyn VersionFactory,
    ) -> Option<NodeId> {
        let Node::Cg {
            cell,
            completion,
            abandon,
            ..
        } = self.node(cg_node)
        else {
            unreachable!("rebuild takes a CG vertex")
        };
        debug_assert_eq!(*completion, Some(lazy));
        let (cell, source) = (Arc::clone(cell), *abandon);
        self.nodes[lazy] = None;
        self.free.push(lazy);
        let windows = source.map_or_else(Vec::new, |s| self.subtree_windows(s));
        let head = if windows.is_empty() {
            None
        } else {
            // The lineage suppression is the abandon-side root's own
            // suppressed set: it carries completions accumulated from
            // groups long since resolved (and retired), which the vertex
            // walk above this CG cannot see. Facts recorded *on* dropped
            // subtree versions are their own (now void) completions and
            // must not leak in; facts from live ancestors were folded into
            // the root's suppressed set when it was created.
            let mut suppression = match source.map(|s| self.node(s)) {
                Some(Node::Version { state, .. }) => state.suppressed().to_vec(),
                _ => self.suppression_above(cg_node),
            };
            if !suppression.iter().any(|c| c.id() == cell.id()) {
                suppression.push(cell);
            }
            Some(self.fresh_chain(&windows, &suppression, f))
        };
        let Node::Cg { completion, .. } = self.node_mut(cg_node) else {
            unreachable!()
        };
        *completion = head;
        if let Some(h) = head {
            self.set_parent(h, cg_node);
        }
        head
    }

    /// Materializes the *front* window of a pending-attach marker: creates
    /// one fresh version — suppression derived from the parent at *this*
    /// moment (a parent version's suppressed set plus recorded facts, or
    /// the suppression above a parent CG vertex plus its cell on the
    /// completion edge), exactly what an eager attach would have
    /// accumulated — splices the version into the marker's slot, and keeps
    /// any remaining windows pending *below* the new version. One top-k
    /// pop therefore creates exactly one version; the rest of the lineage
    /// stays thunked until it ranks itself. Returns the new version's
    /// vertex.
    ///
    /// Deriving the suppression at materialization rather than attach time
    /// is equivalent: facts can only be recorded on a version while it has
    /// no dependent subtree (see [`cg_resolved`](Self::cg_resolved)), and a
    /// marker *is* a dependent subtree, so no fact can appear between the
    /// attach and the materialization on the same lineage — and the
    /// remaining windows re-derive from the freshly created version, whose
    /// suppressed set is precisely their eager-attach context.
    fn materialize_attach(&mut self, marker: NodeId, f: &mut dyn VersionFactory) -> NodeId {
        let (parent, window, remaining) = match self.node_mut(marker) {
            Node::PendingAttach {
                parent, windows, ..
            } => {
                let window = windows.remove(0);
                (
                    parent.expect("pending-attach markers always have a parent"),
                    window,
                    !windows.is_empty(),
                )
            }
            _ => unreachable!("materialize_attach takes a pending-attach marker"),
        };
        self.pending_window_count -= 1;
        let suppression = match self.node(parent) {
            Node::Version { state, facts, .. } => {
                let mut s = state.suppressed().to_vec();
                s.extend(facts.iter().cloned());
                s
            }
            Node::Cg {
                cell, completion, ..
            } => {
                let on_completion_edge = *completion == Some(marker);
                let cell = Arc::clone(cell);
                let mut s = self.suppression_above(parent);
                if on_completion_edge {
                    s.push(cell);
                }
                s
            }
            Node::Lazy { .. } | Node::PendingAttach { .. } => {
                unreachable!("thunk vertices have no children")
            }
        };
        let state = f.fresh(&window, suppression);
        let vid = self.alloc_version(Some(parent), state);
        if remaining {
            // The marker survives as the new version's child, holding the
            // still-pending tail.
            self.replace_child(parent, marker, vid);
            self.set_parent(marker, vid);
            let Node::Version { child, .. } = self.node_mut(vid) else {
                unreachable!()
            };
            *child = Some(marker);
        } else {
            self.nodes[marker] = None;
            self.free.push(marker);
            self.replace_child(parent, marker, vid);
        }
        vid
    }

    fn set_parent(&mut self, node: NodeId, parent: NodeId) {
        match self.node_mut(node) {
            Node::Version { parent: p, .. }
            | Node::Cg { parent: p, .. }
            | Node::Lazy { parent: p, .. }
            | Node::PendingAttach { parent: p, .. } => *p = Some(parent),
        }
    }

    /// Resolves a consumption group (paper Fig. 4,
    /// `consumptionGroupCompleted` / `Abandoned`): at every vertex of the
    /// group, the losing branch is dropped and the winning branch spliced to
    /// the parent. Returns the number of versions dropped.
    ///
    /// A *completed* group whose completion branch is still a lazy
    /// thunk *rebuilds* it as a chain of fresh versions (one per dependent
    /// window, suppressing the group) instead of cloning the doomed abandon
    /// side: an unscheduled source sits at position 0 (nothing to inherit),
    /// and a scheduled one has processed the very events the completion
    /// just consumed, so its clone would fail the first consistency check
    /// and reset to the window start anyway — the rebuild goes straight to
    /// that state, the same §3.3 reprocess-from-start argument behind
    /// [`rollback_rebuild`](Self::rollback_rebuild). An *abandoned* group's
    /// unmaterialized completion branch is discarded without ever having
    /// cost anything.
    pub fn cg_resolved(&mut self, cg: CgId, completed: bool, f: &mut dyn VersionFactory) -> usize {
        let Some(vertices) = self.cg_vertices.remove(&cg) else {
            return 0;
        };
        let mut dropped = 0;
        for vertex in vertices {
            // The vertex may already be gone: it sat inside the losing
            // branch of another vertex of the same group (or a rollback
            // teardown). Verify it is still this group's vertex.
            let Some(Some(Node::Cg { cell, .. })) = self.nodes.get(vertex) else {
                continue;
            };
            if cell.id() != cg {
                continue;
            }
            if completed {
                let Node::Cg { completion, .. } = self.node(vertex) else {
                    unreachable!()
                };
                if let Some(c) = *completion {
                    if self.is_lazy(c) {
                        self.rebuild_completion_fresh(vertex, c, f);
                    } else if self.is_pending_attach(c) {
                        // The splice is about to detach the winner from
                        // this vertex; materialize the marker while the
                        // group's cell is still on its suppression path.
                        self.materialize_attach(c, f);
                    }
                }
            }
            let Node::Cg {
                parent,
                completion,
                abandon,
                cell,
            } = self.node(vertex)
            else {
                unreachable!()
            };
            let (parent, completion, abandon, cell) =
                (*parent, *completion, *abandon, Arc::clone(cell));
            let (winner, loser) = if completed {
                (completion, abandon)
            } else {
                (abandon, completion)
            };
            if let Some(l) = loser {
                dropped += self.drop_subtree(l);
            }
            // Splice winner up.
            self.nodes[vertex] = None;
            self.free.push(vertex);
            if let Some(w) = winner {
                match parent {
                    Some(p) => {
                        self.replace_child(p, vertex, w);
                        self.set_parent(w, p);
                    }
                    None => {
                        debug_assert_eq!(self.root, Some(vertex));
                        self.set_root(w);
                    }
                }
            } else {
                match parent {
                    Some(p) => {
                        self.replace_child(p, vertex, usize::MAX);
                        // A completion with no dependent versions to carry
                        // the suppression: record the consumed events as a
                        // fact on the owner so later-created dependents
                        // still suppress them.
                        if completed {
                            // Walk up to the nearest version vertex (the
                            // parent may itself be a CG vertex when several
                            // groups of one version are open at once).
                            let mut owner = p;
                            loop {
                                match self.node_mut(owner) {
                                    Node::Version { facts, .. } => {
                                        facts.push(cell);
                                        break;
                                    }
                                    Node::Cg { parent, .. }
                                    | Node::Lazy { parent, .. }
                                    | Node::PendingAttach { parent, .. } => {
                                        owner = parent.expect("CG vertices have version ancestors");
                                    }
                                }
                            }
                        }
                    }
                    None => self.root = None,
                }
            }
        }
        dropped
    }

    fn set_root(&mut self, node: NodeId) {
        match self.node_mut(node) {
            Node::Version { parent, .. } | Node::Cg { parent, .. } => *parent = None,
            Node::Lazy { .. } | Node::PendingAttach { .. } => {
                unreachable!("thunk vertices never become root")
            }
        }
        self.root = Some(node);
    }

    /// Replaces `old` in `parent`'s child slots with `new`
    /// (`new == usize::MAX` clears the slot).
    fn replace_child(&mut self, parent: NodeId, old: NodeId, new: NodeId) {
        let new = if new == usize::MAX { None } else { Some(new) };
        match self.node_mut(parent) {
            Node::Version { child, .. } => {
                if *child == Some(old) {
                    *child = new;
                }
            }
            Node::Cg {
                completion,
                abandon,
                ..
            } => {
                if *completion == Some(old) {
                    *completion = new;
                } else if *abandon == Some(old) {
                    *abandon = new;
                }
            }
            Node::Lazy { .. } | Node::PendingAttach { .. } => {
                unreachable!("thunk vertices have no children")
            }
        }
    }

    /// Drops a whole subtree, marking all contained versions dropped.
    /// Returns the number of versions dropped.
    fn drop_subtree(&mut self, node: NodeId) -> usize {
        let mut dropped = 0;
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let Some(n) = self.nodes[id].take() else {
                continue;
            };
            self.free.push(id);
            match n {
                Node::Version { state, child, .. } => {
                    state.mark_dropped();
                    self.version_vertex.remove(&state.id().0);
                    self.version_count -= 1;
                    dropped += 1;
                    if let Some(c) = child {
                        stack.push(c);
                    }
                }
                Node::Cg {
                    cell,
                    completion,
                    abandon,
                    ..
                } => {
                    if let Some(v) = self.cg_vertices.get_mut(&cell.id()) {
                        v.retain(|&x| x != id);
                        if v.is_empty() {
                            self.cg_vertices.remove(&cell.id());
                        }
                    }
                    if let Some(c) = completion {
                        stack.push(c);
                    }
                    if let Some(a) = abandon {
                        stack.push(a);
                    }
                }
                Node::Lazy { .. } => {
                    // An unmaterialized branch dies for free: no version
                    // state was ever cloned for it.
                    self.lazy_versions_dropped += 1;
                }
                Node::PendingAttach { windows, .. } => {
                    // Pending windows die for free too: their fresh
                    // versions were never created.
                    self.pending_window_count -= windows.len();
                }
            }
        }
        dropped
    }

    /// Tears down and rebuilds the dependent subtree of a rolled-back
    /// version: all consumption groups the invalid processing produced (and
    /// every version speculating on them) are discarded, and one fresh
    /// version per newer live window is chained below (see DESIGN.md §6).
    ///
    /// `newer_windows` must be the live windows with id greater than the
    /// rolled-back version's window, in ascending id order. Returns the
    /// number of versions dropped.
    /// `carried_facts` are completions that *survive* the rollback — empty
    /// for a reset to the window start, or the completions preceding the
    /// restored checkpoint (their events stay consumed in the restarted
    /// world, so the rebuilt dependents must suppress them).
    pub fn rollback_rebuild(
        &mut self,
        wv: WvId,
        newer_windows: &[Arc<WindowInfo>],
        carried_facts: Vec<Arc<CgCell>>,
        f: &mut dyn VersionFactory,
    ) -> usize {
        let Some(&vnode) = self.version_vertex.get(&wv.0) else {
            return 0;
        };
        let Node::Version { child, state, .. } = self.node(vnode) else {
            unreachable!()
        };
        let old_child = *child;
        let mut suppressed = state.suppressed().to_vec();
        suppressed.extend(carried_facts.iter().cloned());
        let mut dropped = 0;
        if let Some(c) = old_child {
            dropped += self.drop_subtree(c);
        }
        {
            // The version restarts: its previous completions (and any facts
            // they recorded) came from processing that is now invalid —
            // except the carried ones, which the restored state keeps.
            let Node::Version { child, facts, .. } = self.node_mut(vnode) else {
                unreachable!()
            };
            *child = None;
            *facts = carried_facts;
        }
        if !newer_windows.is_empty() {
            let head = self.fresh_chain(newer_windows, &suppressed, f);
            self.set_parent(head, vnode);
            match self.node_mut(vnode) {
                Node::Version { child, .. } => *child = Some(head),
                _ => unreachable!("rollback roots are versions"),
            }
        }
        dropped
    }

    /// `true` if, on `from`'s ancestor chain, the version of `cell`'s
    /// window still *vouches* for the completion: its processing state
    /// holds the completed group. A version whose chain ancestor no longer
    /// vouches assumes a completion that never happened in the surviving
    /// timeline.
    fn completion_vouched(&self, from: NodeId, cell: &CgCell) -> bool {
        let mut cur = Some(from);
        while let Some(id) = cur {
            match self.node(id) {
                Node::Version { state, parent, .. } => {
                    if state.window().id == cell.window_id() {
                        return state
                            .lock()
                            .completed_cells
                            .iter()
                            .any(|c| c.id() == cell.id());
                    }
                    if state.window().id < cell.window_id() {
                        return false;
                    }
                    cur = *parent;
                }
                Node::Cg { parent, .. }
                | Node::Lazy { parent, .. }
                | Node::PendingAttach { parent, .. } => cur = *parent,
            }
        }
        false
    }

    /// Revokes consumption-group completions discarded by a rollback.
    ///
    /// A version that completes a group and *then* rolls back voids the
    /// completion — but the tree may already have spliced the group's
    /// resolution, and state copies made under other branches (see
    /// [`cg_created`](Self::cg_created)) may carry the completion onward as
    /// suppressed sets or recorded facts even though the processing that
    /// produced it never happens in the restarted timeline. The rolled-back
    /// version's own dependent subtree is handled by
    /// [`rollback_rebuild`](Self::rollback_rebuild); this sweep finds the
    /// escapees: every version that still assumes one of the `revoked`
    /// completions (suppressed set or vertex facts) *without* a chain
    /// ancestor that still vouches for it is replaced by a fresh version
    /// with the void groups removed, and its dependents are rebuilt.
    ///
    /// `newer_of` must return the live windows with id greater than the
    /// given window id, ascending. Returns the number of versions dropped.
    pub fn revoke_completions(
        &mut self,
        revoked: &[Arc<CgCell>],
        newer_of: &dyn Fn(u64) -> Vec<Arc<WindowInfo>>,
        f: &mut dyn VersionFactory,
    ) -> usize {
        if revoked.is_empty() {
            return 0;
        }
        // Candidates oldest-window first: replacing an owner rebuilds (and
        // thereby cleans) its dependents, so deeper candidates drop out.
        let mut candidates: Vec<(u64, WvId)> = self
            .version_vertex
            .values()
            .filter_map(|&node| {
                let Some(Some(Node::Version { state, facts, .. })) = self.nodes.get(node) else {
                    return None;
                };
                let involved = state
                    .suppressed()
                    .iter()
                    .chain(facts.iter())
                    .any(|s| revoked.iter().any(|r| r.id() == s.id()));
                involved.then(|| (state.window().id, state.id()))
            })
            .collect();
        candidates.sort_unstable_by_key(|&(w, v)| (w, v.0));

        let mut dropped = 0;
        for (window_id, wv) in candidates {
            let Some(&vnode) = self.version_vertex.get(&wv.0) else {
                continue; // already cleaned by an ancestor's replacement
            };
            let Node::Version { state, facts, .. } = self.node(vnode) else {
                unreachable!()
            };
            let assumed: Vec<Arc<CgCell>> = revoked
                .iter()
                .filter(|r| {
                    state
                        .suppressed()
                        .iter()
                        .chain(facts.iter())
                        .any(|s| s.id() == r.id())
                })
                .cloned()
                .collect();
            let unvouched: Vec<CgId> = assumed
                .iter()
                .filter(|cell| !self.completion_vouched(vnode, cell))
                .map(|cell| cell.id())
                .collect();
            if unvouched.is_empty() {
                continue; // a live ancestor still stands by the completion
            }
            dropped += self.replace_poisoned(wv, &unvouched, &newer_of(window_id), f);
        }
        dropped
    }

    /// Replaces a version that assumes void completions: the version is
    /// dropped and a fresh version of the same window — with the `void`
    /// groups removed from its suppressed set and vertex facts — takes its
    /// place in the tree; its dependent subtree is rebuilt from scratch.
    /// Returns the number of versions dropped (including the replaced one).
    fn replace_poisoned(
        &mut self,
        wv: WvId,
        void: &[CgId],
        newer_windows: &[Arc<WindowInfo>],
        f: &mut dyn VersionFactory,
    ) -> usize {
        let Some(&vnode) = self.version_vertex.get(&wv.0) else {
            return 0;
        };
        let (old_state, old_facts, old_child) = match self.node(vnode) {
            Node::Version {
                state,
                facts,
                child,
                ..
            } => (Arc::clone(state), facts.clone(), *child),
            _ => unreachable!("poisoned candidates are version vertices"),
        };
        let keep = |cells: &[Arc<CgCell>]| -> Vec<Arc<CgCell>> {
            cells
                .iter()
                .filter(|c| !void.contains(&c.id()))
                .cloned()
                .collect()
        };
        let new_suppressed = keep(old_state.suppressed());
        let new_facts = keep(&old_facts);
        let mut dropped = 1; // the replaced version itself
        if let Some(c) = old_child {
            dropped += self.drop_subtree(c);
        }
        old_state.mark_dropped();
        let new_state = f.fresh(old_state.window(), new_suppressed.clone());
        self.version_vertex.remove(&wv.0);
        self.version_vertex.insert(new_state.id().0, vnode);
        {
            let Node::Version {
                state,
                facts,
                child,
                ..
            } = self.node_mut(vnode)
            else {
                unreachable!()
            };
            *state = Arc::clone(&new_state);
            *facts = new_facts.clone();
            *child = None;
        }
        if !newer_windows.is_empty() {
            let mut suppression = new_suppressed;
            suppression.extend(new_facts);
            let head = self.fresh_chain(newer_windows, &suppression, f);
            self.set_parent(head, vnode);
            let Node::Version { child, .. } = self.node_mut(vnode) else {
                unreachable!()
            };
            *child = Some(head);
        }
        dropped
    }

    /// Removes the root version after it was emitted; its child becomes the
    /// new root. A pending-attach child materializes first (the promoted
    /// lineage *is* the surviving chain, and the root must be a real
    /// version), which is why retirement takes the factory.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or the root's child is an unresolved CG
    /// vertex (callers must check [`root_blocked_by_cg`](Self::root_blocked_by_cg)).
    pub fn retire_root(&mut self, f: &mut dyn VersionFactory) -> Arc<VersionState> {
        let root = self.root.expect("tree not empty");
        let pending_child = match self.node(root) {
            Node::Version { child: Some(c), .. } if self.is_pending_attach(*c) => Some(*c),
            Node::Version { .. } => None,
            _ => unreachable!("root is always a version"),
        };
        if let Some(marker) = pending_child {
            self.materialize_attach(marker, f);
        }
        let Some(Node::Version { state, child, .. }) = self.nodes[root].take() else {
            unreachable!("root is always a version")
        };
        self.free.push(root);
        self.version_vertex.remove(&state.id().0);
        self.version_count -= 1;
        match child {
            Some(c) => {
                assert!(
                    matches!(self.node(c), Node::Version { .. }),
                    "root child must be a version at retirement"
                );
                self.set_root(c);
            }
            None => self.root = None,
        }
        state
    }

    /// Selects the k window versions with the highest survival probability
    /// (paper Fig. 6). `prob_of` supplies the completion probability of an
    /// open consumption group.
    ///
    /// Finished versions are traversed but not returned (they need no
    /// instance). The returned list is ordered by decreasing survival
    /// probability.
    ///
    /// This is where lazy completion branches materialize on demand: an
    /// unmaterialized branch competes in the selection heap at its branch
    /// probability, and is cloned only when it actually *pops* within the
    /// top k — i.e. when the predictor ranks it high enough to schedule.
    /// Branches that never rank are never cloned, which is the entire
    /// win of the lazy tree (hence `&mut self` and the factory).
    pub fn top_k(
        &mut self,
        k: usize,
        prob_of: &dyn Fn(&CgCell) -> f64,
        f: &mut dyn VersionFactory,
    ) -> Vec<Arc<VersionState>> {
        self.top_k_scored(k, prob_of, f)
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    /// [`top_k`](Self::top_k), but each selected version is returned with
    /// the survival probability it was ranked at. A multi-query scheduler
    /// merges the per-tree selections on these scores (a stable sort keeps
    /// each tree's internal order, which is what makes the merged schedule
    /// deterministic).
    pub fn top_k_scored(
        &mut self,
        k: usize,
        prob_of: &dyn Fn(&CgCell) -> f64,
        f: &mut dyn VersionFactory,
    ) -> Vec<(f64, Arc<VersionState>)> {
        let mut unbounded = usize::MAX;
        self.top_k_scored_budgeted(k, prob_of, f, &mut unbounded)
    }

    /// [`top_k_scored`](Self::top_k_scored) under a materialization
    /// budget: each on-demand version creation (a lazy completion branch
    /// or a pending window attach that ranks inside the top k) deducts the
    /// versions it created from `*budget`, and once the budget hits zero
    /// the selection stops materializing *new* state — exhausted
    /// candidates are skipped, their thunks stay in the tree for a later
    /// cycle, and already-live versions keep competing unhindered.
    ///
    /// This is the enforcement point for per-tenant speculation caps
    /// ([`TenantQuota::max_versions`](crate::config::TenantQuota)): the
    /// splitter threads one shared budget through all of a tenant's trees
    /// in a scheduling cycle. A `usize::MAX` budget never reaches zero, so
    /// the unbudgeted selection is byte-for-byte this one. Liveness is
    /// unaffected: completion-driven materialization and the root-retire
    /// attach stay unconditional, so a budget of zero can delay but never
    /// wedge progress.
    pub fn top_k_scored_budgeted(
        &mut self,
        k: usize,
        prob_of: &dyn Fn(&CgCell) -> f64,
        f: &mut dyn VersionFactory,
        budget: &mut usize,
    ) -> Vec<(f64, Arc<VersionState>)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Ordering: survival probability first; ties go to the *earlier
        // window* (it retires first, so finishing it unblocks emission),
        // then to the older vertex for determinism. Each candidate records
        // what it expects its node id to be — a materialization taken
        // while the walk is in progress can free an already-queued lazy
        // vertex (a copy crossing a resolved-pending group rebuilds that
        // group's thunk in the source) and the freed slot may be reused,
        // so a popped entry whose id no longer holds the expected vertex
        // is stale and must be skipped, never interpreted as whatever now
        // occupies the slot.
        enum Expect {
            Version(WvId),
            Lazy(u64),
            Attach(u64),
        }
        struct Cand(f64, Reverse<u64>, Reverse<usize>, NodeId, Expect);
        impl PartialEq for Cand {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .total_cmp(&other.0)
                    .then_with(|| self.1.cmp(&other.1))
                    .then_with(|| self.2.cmp(&other.2))
            }
        }

        let mut result = Vec::with_capacity(k);
        let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
        let push_candidate = |tree: &Self, heap: &mut BinaryHeap<Cand>, p: f64, n: NodeId| {
            let expect = match tree.node(n) {
                Node::Version { state, .. } => Expect::Version(state.id()),
                Node::Lazy { stamp, .. } => Expect::Lazy(*stamp),
                Node::PendingAttach { stamp, .. } => Expect::Attach(*stamp),
                Node::Cg { .. } => unreachable!("CG vertices are expanded, not queued"),
            };
            heap.push(Cand(
                p,
                Reverse(tree.candidate_window(n)),
                Reverse(n),
                n,
                expect,
            ));
        };
        if let Some(root) = self.root {
            push_candidate(self, &mut heap, 1.0, root);
        }
        while result.len() < k {
            let Some(Cand(prob, _, _, node, expect)) = heap.pop() else {
                break;
            };
            // Stale entry (vertex freed or slot reused since the push)?
            let live = match (&expect, self.nodes.get(node).and_then(Option::as_ref)) {
                (Expect::Version(wv), Some(Node::Version { state, .. })) => state.id() == *wv,
                (Expect::Lazy(s), Some(Node::Lazy { stamp, .. })) => stamp == s,
                (Expect::Attach(s), Some(Node::PendingAttach { stamp, .. })) => stamp == s,
                _ => false,
            };
            if !live {
                continue;
            }
            // A live candidate is a version (schedule it), an
            // unmaterialized branch that just ranked inside the top k
            // (clone it now and let its versions compete), or a pending
            // attach that just ranked (create its fresh chain now and let
            // the head compete).
            let expand = match expect {
                // Materializing arms are budget-gated: an exhausted budget
                // skips the candidate (the thunk survives for a later
                // cycle; nothing schedulable hides below an unmaterialized
                // vertex, so skipping loses no live candidates).
                Expect::Lazy(_) => {
                    if *budget == 0 {
                        continue;
                    }
                    let before = self.version_count;
                    let expand = self.materialize(node, f).map(|c| (prob, c));
                    let created = self.version_count.saturating_sub(before);
                    *budget = budget.saturating_sub(created);
                    expand
                }
                Expect::Attach(_) => {
                    if *budget == 0 {
                        continue;
                    }
                    let before = self.version_count;
                    let expand = Some((prob, self.materialize_attach(node, f)));
                    let created = self.version_count.saturating_sub(before);
                    *budget = budget.saturating_sub(created);
                    expand
                }
                Expect::Version(_) => {
                    let Node::Version { state, child, .. } = self.node(node) else {
                        unreachable!("validated above")
                    };
                    if !state.is_finished() {
                        result.push((prob, Arc::clone(state)));
                    }
                    child.map(|c| (prob, c))
                }
            };
            // Expand downward, resolving CG vertices into their two
            // branches weighted by completion probability; versions and
            // lazy branches become heap candidates.
            let mut stack: Vec<(f64, NodeId)> = Vec::new();
            stack.extend(expand);
            while let Some((p, n)) = stack.pop() {
                match self.node(n) {
                    Node::Version { .. } | Node::Lazy { .. } | Node::PendingAttach { .. } => {
                        push_candidate(self, &mut heap, p, n);
                    }
                    Node::Cg {
                        cell,
                        completion,
                        abandon,
                        ..
                    } => {
                        let pc = prob_of(cell).clamp(0.0, 1.0);
                        if let Some(c) = completion {
                            stack.push((p * pc, *c));
                        }
                        if let Some(a) = abandon {
                            stack.push((p * (1.0 - pc), *a));
                        }
                    }
                }
            }
        }
        result
    }

    /// Tie-break window id of a heap candidate: a version's own window, a
    /// pending attach's first window, or — for an unmaterialized branch —
    /// the first window its materialization source (the sibling abandon
    /// edge) covers.
    fn candidate_window(&self, node: NodeId) -> u64 {
        // Fast path for the overwhelmingly common candidates: no
        // allocation, no traversal (this runs once per heap push per
        // scheduling cycle).
        match self.node(node) {
            Node::Version { state, .. } => return state.window().id,
            Node::PendingAttach { windows, .. } => {
                if let Some(w) = windows.first() {
                    return w.id;
                }
            }
            Node::Lazy { .. } | Node::Cg { .. } => {}
        }
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                Node::Version { state, .. } => return state.window().id,
                Node::Cg {
                    completion,
                    abandon,
                    ..
                } => {
                    if let Some(c) = completion {
                        stack.push(*c);
                    }
                    if let Some(a) = abandon {
                        stack.push(*a);
                    }
                }
                Node::Lazy { parent, .. } => {
                    let p = parent.expect("lazy vertices hang off a CG vertex");
                    let Node::Cg { abandon, .. } = self.node(p) else {
                        unreachable!()
                    };
                    if let Some(a) = abandon {
                        stack.push(*a);
                    }
                }
                // A pending attach covers its windows in ascending order;
                // the earliest is the tie-break.
                Node::PendingAttach { windows, .. } => {
                    if let Some(w) = windows.first() {
                        return w.id;
                    }
                }
            }
        }
        u64::MAX
    }

    /// Iterates over all live versions (diagnostics and tests).
    pub fn versions(&self) -> Vec<Arc<VersionState>> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Some(Node::Version { state, .. }) => Some(Arc::clone(state)),
                _ => None,
            })
            .collect()
    }

    /// Structural self-check for tests: parent/child links are mutual, the
    /// registry matches the arena, and every version's suppressed set equals
    /// the completion edges on its root path.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let mut seen_versions = 0;
        let mut seen_pending_windows = 0;
        for (id, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            match node {
                Node::Version {
                    parent,
                    state,
                    child,
                    ..
                } => {
                    seen_versions += 1;
                    assert_eq!(self.version_vertex.get(&state.id().0), Some(&id));
                    if let Some(c) = child {
                        self.assert_child_link(id, *c);
                    }
                    if parent.is_none() {
                        assert_eq!(self.root, Some(id));
                    }
                    // suppressed set == completion edges on root path
                    let mut expected: Vec<CgId> = Vec::new();
                    let mut cur = id;
                    while let Some(p) = self.parent_of(cur) {
                        if let Node::Cg {
                            cell, completion, ..
                        } = self.node(p)
                        {
                            if *completion == Some(cur) {
                                expected.push(cell.id());
                            }
                        }
                        cur = p;
                    }
                    let mut actual: Vec<CgId> = state.suppressed().iter().map(|c| c.id()).collect();
                    // the root path may omit suppression inherited from
                    // retired windows: every expected edge must be present.
                    actual.sort();
                    expected.sort();
                    for e in &expected {
                        assert!(
                            actual.contains(e),
                            "version {} missing suppression {e}",
                            state.id()
                        );
                    }
                }
                Node::Cg {
                    parent,
                    cell,
                    completion,
                    abandon,
                } => {
                    assert!(parent.is_some(), "CG vertex cannot be root");
                    assert!(self
                        .cg_vertices
                        .get(&cell.id())
                        .is_some_and(|v| v.contains(&id)));
                    if let Some(c) = completion {
                        self.assert_child_link(id, *c);
                    }
                    if let Some(a) = abandon {
                        self.assert_child_link(id, *a);
                    }
                }
                Node::Lazy { parent, .. } => {
                    let p = parent.expect("lazy vertices hang off a CG vertex");
                    let Node::Cg { completion, .. } = self.node(p) else {
                        panic!("lazy vertex parent must be a CG vertex")
                    };
                    assert_eq!(
                        *completion,
                        Some(id),
                        "lazy vertices sit on completion edges only"
                    );
                }
                Node::PendingAttach {
                    parent, windows, ..
                } => {
                    let p = parent.expect("pending-attach markers always have a parent");
                    let points_back = match self.node(p) {
                        Node::Version { child, .. } => *child == Some(id),
                        Node::Cg {
                            completion,
                            abandon,
                            ..
                        } => *completion == Some(id) || *abandon == Some(id),
                        Node::Lazy { .. } | Node::PendingAttach { .. } => false,
                    };
                    assert!(points_back, "pending-attach parent link is mutual");
                    assert!(!windows.is_empty(), "pending-attach markers hold windows");
                    assert!(
                        windows.windows(2).all(|w| w[0].id < w[1].id),
                        "pending windows accumulate in id order"
                    );
                    seen_pending_windows += windows.len();
                }
            }
        }
        assert_eq!(seen_versions, self.version_count);
        assert_eq!(
            seen_pending_windows, self.pending_window_count,
            "incremental pending-window counter tracks the arena"
        );
    }

    fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        match self.node(node) {
            Node::Version { parent, .. }
            | Node::Cg { parent, .. }
            | Node::Lazy { parent, .. }
            | Node::PendingAttach { parent, .. } => *parent,
        }
    }

    fn assert_child_link(&self, parent: NodeId, child: NodeId) {
        assert_eq!(self.parent_of(child), Some(parent), "broken parent link");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::CgStatus;
    use spectre_query::{Expr, MatchId, Pattern, Query, WindowSpec};

    /// Test factory: sequential ids, no metrics.
    struct TestFactory {
        query: Arc<Query>,
        next_wv: u64,
        next_cg: u64,
    }

    impl VersionFactory for TestFactory {
        fn fresh(
            &mut self,
            window: &Arc<WindowInfo>,
            suppressed: Vec<Arc<CgCell>>,
        ) -> Arc<VersionState> {
            let v = VersionState::new(
                WvId(self.next_wv),
                Arc::clone(window),
                Arc::clone(&self.query),
                suppressed,
            );
            self.next_wv += 1;
            v
        }

        fn clone_of(
            &mut self,
            source: &Arc<VersionState>,
            suppressed: Vec<Arc<CgCell>>,
            expected_open: &[CgId],
        ) -> Option<(Arc<VersionState>, Vec<(CgId, Arc<CgCell>)>)> {
            let id = WvId(self.next_wv);
            self.next_wv += 1;
            let next_cg = &mut self.next_cg;
            let mut mk_twin = |cell: &CgCell| {
                let t = Arc::new(cell.twin(CgId(*next_cg)));
                *next_cg += 1;
                t
            };
            VersionState::clone_speculative(source, id, suppressed, expected_open, &mut mk_twin)
        }
    }

    struct Fixture {
        tree: DependencyTree,
        factory: TestFactory,
    }

    impl Fixture {
        /// Eager fixture: the pre-lazy behavior most structural tests
        /// specify (copies made at `cg_created` time).
        fn new() -> Self {
            Self::with_lazy(false)
        }

        /// Lazy fixture: completion branches defer until scheduled
        /// (window attach stays eager, pinning the PR-3 shapes).
        fn lazy() -> Self {
            Self::with_lazy(true)
        }

        /// All-lazy fixture: lazy completion branches *and* lazy window
        /// attach.
        fn all_lazy() -> Self {
            Self::with_tree(DependencyTree::with_modes(true, true))
        }

        /// Eager completion-branch copies with lazy window attach (the
        /// odd quadrant: markers must survive subtree copies).
        fn eager_branches_lazy_attach() -> Self {
            Self::with_tree(DependencyTree::with_modes(false, true))
        }

        fn with_lazy(lazy: bool) -> Self {
            Self::with_tree(DependencyTree::with_lazy(lazy))
        }

        fn with_tree(tree: DependencyTree) -> Self {
            let query = Arc::new(
                Query::builder("t")
                    .pattern(Pattern::builder().one("A", Expr::truth()).build().unwrap())
                    .window(WindowSpec::count_sliding(4, 2).unwrap())
                    .build()
                    .unwrap(),
            );
            Fixture {
                tree,
                factory: TestFactory {
                    query,
                    next_wv: 0,
                    next_cg: 0,
                },
            }
        }

        fn open_window(&mut self, id: u64) -> Vec<Arc<VersionState>> {
            let window = Arc::new(WindowInfo::new(id, id * 2, id * 2, id * 2));
            let out = self.tree.new_window(&window, &mut self.factory);
            self.tree.assert_invariants();
            out
        }

        fn create_cg(&mut self, creator: &Arc<VersionState>) -> Arc<CgCell> {
            let cell = Arc::new(CgCell::new(
                CgId(self.factory.next_cg),
                creator.window().id,
                1,
            ));
            self.factory.next_cg += 1;
            assert!(self
                .tree
                .cg_created(creator.id(), Arc::clone(&cell), &mut self.factory));
            self.tree.assert_invariants();
            cell
        }
    }

    #[test]
    fn independent_window_becomes_root() {
        let mut f = Fixture::new();
        let created = f.open_window(0);
        assert_eq!(created.len(), 1);
        assert_eq!(f.tree.version_count(), 1);
        assert_eq!(f.tree.root_version().unwrap().id(), created[0].id());
        assert!(created[0].suppressed().is_empty());
    }

    #[test]
    fn cg_creation_doubles_dependent_versions() {
        // Paper Fig. 3: w1 with CG, w2 depends.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 1);
        let cg = f.create_cg(&w1);
        // w2 now has two versions: original (abandon) + copy (completion).
        assert_eq!(f.tree.version_count(), 3);
        let versions = f.tree.versions();
        let w2_versions: Vec<_> = versions.iter().filter(|v| v.window().id == 1).collect();
        assert_eq!(w2_versions.len(), 2);
        let suppressing = w2_versions
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg.id()))
            .count();
        assert_eq!(suppressing, 1);
    }

    #[test]
    fn revoked_completion_replaces_unvouched_suppressors() {
        // A version completes a group, the tree splices the resolution,
        // and then the version rolls back: the completion is void, and
        // dependents still suppressing it must be replaced — unless the
        // completing version still vouches for it.
        let mut f = Fixture::new();
        let v0 = f.open_window(0).remove(0);
        let _ = f.open_window(1);
        let cell = f.create_cg(&v0);
        // The owning instance completes the group.
        cell.complete();
        v0.lock().completed_cells.push(Arc::clone(&cell));
        let dropped = f.tree.cg_resolved(cell.id(), true, &mut f.factory);
        assert_eq!(dropped, 1, "abandon branch dropped");
        f.tree.assert_invariants();
        let suppressor = |tree: &DependencyTree| {
            tree.versions()
                .into_iter()
                .find(|v| v.window().id == 1)
                .expect("a w1 version exists")
        };
        let w1 = suppressor(&f.tree);
        assert!(w1.suppressed().iter().any(|c| c.id() == cell.id()));

        // While v0's state still holds the completion, it is vouched for:
        // the sweep must not touch anything.
        let newer_of = |_: u64| Vec::new();
        let revoked = vec![Arc::clone(&cell)];
        assert_eq!(
            f.tree
                .revoke_completions(&revoked, &newer_of, &mut f.factory),
            0
        );
        assert_eq!(suppressor(&f.tree).id(), w1.id());

        // v0 rolls back: the completion is discarded and reported revoked.
        let outcome = v0.rollback_state();
        assert!(!outcome.restored_checkpoint);
        assert!(outcome.revoked.iter().any(|c| c.id() == cell.id()));
        let dropped = f
            .tree
            .revoke_completions(&outcome.revoked, &newer_of, &mut f.factory);
        assert_eq!(dropped, 1, "the poisoned w1 version is replaced");
        f.tree.assert_invariants();
        assert!(w1.is_dropped());
        let replacement = suppressor(&f.tree);
        assert_ne!(replacement.id(), w1.id());
        assert!(
            replacement.suppressed().is_empty(),
            "the void group is gone from the replacement's world"
        );
    }

    #[test]
    fn new_window_attaches_at_all_leaves() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let _cg = f.create_cg(&w1);
        // leaves: two w2 versions → two w3 versions.
        let w3 = f.open_window(2);
        assert_eq!(w3.len(), 2);
        assert_eq!(f.tree.version_count(), 5);
    }

    #[test]
    fn new_window_under_leaf_cg_creates_both_branches() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        // CG before any dependent window exists: CG vertex is a leaf.
        let cg = f.create_cg(&w1);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 2);
        let suppressing = w2
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg.id()))
            .count();
        assert_eq!(suppressing, 1);
    }

    #[test]
    fn completion_keeps_suppressing_branch() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg = f.create_cg(&w1);
        cg.complete();
        let dropped = f.tree.cg_resolved(cg.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1);
        assert_eq!(f.tree.version_count(), 2);
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert!(survivor.suppressed().iter().any(|c| c.id() == cg.id()));
    }

    #[test]
    fn abandonment_keeps_original_branch() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2_orig = f.open_window(1).remove(0);
        let cg = f.create_cg(&w1);
        cg.abandon();
        let dropped = f.tree.cg_resolved(cg.id(), false, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1);
        // The surviving version is the *original* (it kept its state).
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert_eq!(survivor.id(), w2_orig.id());
        assert!(survivor.suppressed().is_empty());
    }

    #[test]
    fn sequential_cgs_accumulate_suppression() {
        // The runtime's actual lifecycle (max_active = 1): a version's
        // groups are created and resolved one after another; completed
        // suppression accumulates in the surviving dependent versions.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg1 = f.create_cg(&w1);
        assert_eq!(f.tree.version_count(), 3);
        cg1.complete();
        f.tree.cg_resolved(cg1.id(), true, &mut f.factory);
        f.tree.assert_invariants();

        let cg2 = f.create_cg(&w1);
        // Completion chain inherits the cg1 fact from the old child.
        let suppressing_both = f
            .tree
            .versions()
            .iter()
            .filter(|v| v.window().id == 1)
            .filter(|v| {
                let ids: Vec<CgId> = v.suppressed().iter().map(|c| c.id()).collect();
                ids.contains(&cg1.id()) && ids.contains(&cg2.id())
            })
            .count();
        assert_eq!(suppressing_both, 1, "completion branch carries both groups");

        cg2.complete();
        f.tree.cg_resolved(cg2.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(f.tree.version_count(), 2);
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        let mut ids: Vec<CgId> = survivor.suppressed().iter().map(|c| c.id()).collect();
        ids.sort();
        assert_eq!(ids, vec![cg1.id(), cg2.id()]);
    }

    #[test]
    fn abandoned_then_completed_keeps_only_completed() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg1 = f.create_cg(&w1);
        cg1.abandon();
        f.tree.cg_resolved(cg1.id(), false, &mut f.factory);
        f.tree.assert_invariants();
        let cg2 = f.create_cg(&w1);
        cg2.complete();
        f.tree.cg_resolved(cg2.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        let ids: Vec<CgId> = survivor.suppressed().iter().map(|c| c.id()).collect();
        assert_eq!(ids, vec![cg2.id()]);
    }

    #[test]
    fn completion_without_dependents_is_recorded_as_fact() {
        // A group completes while no dependent window exists; a window
        // opening afterwards must still suppress the consumed events.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        cg.complete();
        f.tree.cg_resolved(cg.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(f.tree.version_count(), 1);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 1);
        assert!(
            w2[0].suppressed().iter().any(|c| c.id() == cg.id()),
            "later window inherits the completed-group fact"
        );
    }

    #[test]
    fn facts_chain_through_later_groups() {
        // cg1 completes with no dependents (fact on w1); cg2 opens; a new
        // window attaching below cg2 must suppress cg1 on *both* edges and
        // cg2 only on the completion edge.
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let cg1 = f.create_cg(&w1);
        cg1.complete();
        f.tree.cg_resolved(cg1.id(), true, &mut f.factory);
        let cg2 = f.create_cg(&w1);
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 2);
        for v in &w2 {
            assert!(
                v.suppressed().iter().any(|c| c.id() == cg1.id()),
                "fact cg1 applies to every branch"
            );
        }
        let with_cg2 = w2
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg2.id()))
            .count();
        assert_eq!(with_cg2, 1);
    }

    #[test]
    fn dropped_versions_are_flagged() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2_orig = f.open_window(1).remove(0);
        let cg = f.create_cg(&w1);
        cg.complete();
        f.tree.cg_resolved(cg.id(), true, &mut f.factory);
        assert!(w2_orig.is_dropped());
    }

    #[test]
    fn retirement_promotes_child() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        let retired = f.tree.retire_root(&mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(retired.id(), w1.id());
        assert_eq!(f.tree.root_version().unwrap().id(), w2.id());
        let last = f.tree.retire_root(&mut f.factory);
        assert_eq!(last.id(), w2.id());
        assert!(f.tree.is_empty());
    }

    #[test]
    fn root_blocked_by_cg_detected() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        assert!(!f.tree.root_blocked_by_cg());
        let cg = f.create_cg(&w1);
        assert!(f.tree.root_blocked_by_cg());
        cg.abandon();
        f.tree.cg_resolved(cg.id(), false, &mut f.factory);
        assert!(!f.tree.root_blocked_by_cg());
    }

    #[test]
    fn top_k_prefers_likely_branches() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg = f.create_cg(&w1);
        // completion probability 0.9 → completion-branch version outranks
        // the abandon-branch version.
        let top = f.tree.top_k(2, &|_c| 0.9, &mut f.factory);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id(), w1.id()); // root first (prob 1.0)
        assert!(top[1].suppressed().iter().any(|c| c.id() == cg.id()));
        let top_low = f.tree.top_k(3, &|_c| 0.1, &mut f.factory);
        assert!(top_low[1].suppressed().is_empty());
        let _ = cg;
    }

    #[test]
    fn top_k_skips_finished_versions() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        w1.mark_finished();
        let top = f.tree.top_k(2, &|_c| 0.5, &mut f.factory);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id(), w2.id());
    }

    #[test]
    fn top_k_visits_minimal_vertices_breadth_case() {
        // 50 % probability: SPECTRE explores in breadth (paper §4.2.1).
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let _w3 = f.open_window(2);
        let _cg = f.create_cg(&w1);
        let top = f.tree.top_k(3, &|_c| 0.5, &mut f.factory);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].id(), w1.id());
        // the two w2 versions (each 0.5) come before any w3 version
        assert_eq!(top[1].window().id, 1);
        assert_eq!(top[2].window().id, 1);
    }

    #[test]
    fn rollback_rebuild_resets_subtree() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2_windows: Vec<Arc<WindowInfo>> = vec![
            Arc::new(WindowInfo::new(1, 2, 2, 2)),
            Arc::new(WindowInfo::new(2, 4, 4, 4)),
        ];
        let _w2 = f.open_window(1);
        let _w3 = f.open_window(2);
        let _cg = f.create_cg(&w1);
        assert_eq!(f.tree.version_count(), 5);
        let dropped = f
            .tree
            .rollback_rebuild(w1.id(), &w2_windows, Vec::new(), &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 4);
        // fresh chain: w1 + one version each of w2, w3
        assert_eq!(f.tree.version_count(), 3);
        let top = f.tree.top_k(3, &|_c| 0.5, &mut f.factory);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn stale_cg_created_is_ignored() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        // Drop w2's subtree via rollback of w1 (no newer windows recreated).
        f.tree
            .rollback_rebuild(w1.id(), &[], Vec::new(), &mut f.factory);
        assert!(w2.is_dropped());
        // An op from the dropped version arrives late: ignored.
        let cell = Arc::new(CgCell::new(CgId(99), 1, 1));
        assert!(!f.tree.cg_created(w2.id(), cell, &mut f.factory));
        f.tree.assert_invariants();
    }

    #[test]
    fn lazy_cg_creation_defers_the_clone() {
        // Lazy mode: creating a group allocates a thunk instead of copying
        // the dependent subtree — the version count does not move.
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        assert_eq!(f.tree.version_count(), 2);
        let _cg = f.create_cg(&w1);
        assert_eq!(f.tree.version_count(), 2, "no eager copy");
        assert_eq!(f.tree.lazy_count(), 1);
        assert_eq!(f.tree.take_lazy_stats(), (0, 0));
    }

    #[test]
    fn lazy_branch_dropped_on_abandonment_costs_nothing() {
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let w2_orig = f.open_window(1).remove(0);
        let cg = f.create_cg(&w1);
        cg.abandon();
        let dropped = f.tree.cg_resolved(cg.id(), false, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 0, "the loser branch held no versions");
        assert_eq!(f.tree.version_count(), 2);
        assert_eq!(f.tree.lazy_count(), 0);
        assert_eq!(f.tree.take_lazy_stats(), (0, 1), "one free drop");
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert_eq!(survivor.id(), w2_orig.id(), "original kept, never cloned");
    }

    #[test]
    fn lazy_branch_completion_rebuilds_fresh() {
        // A group completing before its branch was ever scheduled: no
        // clone is worth taking (an unscheduled source has no progress, a
        // scheduled one processed the just-consumed events and would roll
        // back), so the winner is rebuilt as fresh suppressing versions.
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let w2_orig = f.open_window(1).remove(0);
        let cg = f.create_cg(&w1);
        cg.complete();
        let dropped = f.tree.cg_resolved(cg.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1, "the abandon original is dropped");
        assert!(w2_orig.is_dropped());
        assert_eq!(f.tree.version_count(), 2);
        assert_eq!(
            f.tree.take_lazy_stats(),
            (0, 0),
            "neither cloned nor dropped: rebuilt fresh"
        );
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert_ne!(survivor.id(), w2_orig.id());
        assert!(survivor.suppressed().iter().any(|c| c.id() == cg.id()));
        assert_eq!(survivor.lock().pos, 0, "reprocesses from the start");
    }

    #[test]
    fn lazy_branch_materializes_when_scheduled() {
        // The predictor ranks the completion branch high: selecting the
        // top k materializes it. Ranked low, it is never cloned.
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let cg = f.create_cg(&w1);
        let top = f.tree.top_k(2, &|_c| 0.1, &mut f.factory);
        assert_eq!(top.len(), 2);
        assert!(top[1].suppressed().is_empty(), "abandon branch preferred");
        assert_eq!(f.tree.take_lazy_stats(), (0, 0), "low rank: no clone");
        assert_eq!(f.tree.lazy_count(), 1);

        let top = f.tree.top_k(2, &|_c| 0.9, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(top.len(), 2);
        assert!(
            top[1].suppressed().iter().any(|c| c.id() == cg.id()),
            "high rank: the completion branch materialized and was selected"
        );
        assert_eq!(f.tree.take_lazy_stats(), (1, 0));
        assert_eq!(f.tree.version_count(), 3);
    }

    #[test]
    fn rollback_teardown_drops_unmaterialized_branches() {
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let _w2 = f.open_window(1);
        let _cg = f.create_cg(&w1);
        assert_eq!(f.tree.lazy_count(), 1);
        let w2_windows = vec![Arc::new(WindowInfo::new(1, 2, 2, 2))];
        let dropped = f
            .tree
            .rollback_rebuild(w1.id(), &w2_windows, Vec::new(), &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1, "only the materialized dependent version");
        assert_eq!(f.tree.lazy_count(), 0);
        assert_eq!(f.tree.take_lazy_stats(), (0, 1));
        assert_eq!(f.tree.version_count(), 2, "w1 + rebuilt w2");
    }

    #[test]
    fn revoke_completions_crosses_unmaterialized_vertex() {
        // A void completion is revoked while a *different* group's
        // completion branch is still a thunk: the sweep cleans the
        // materialization source, and a later materialization clones the
        // cleaned world — the lazy vertex itself needs no sweep.
        let mut f = Fixture::lazy();
        let v0 = f.open_window(0).remove(0);
        let _ = f.open_window(1);
        let cg_a = f.create_cg(&v0);
        cg_a.complete();
        v0.lock().completed_cells.push(Arc::clone(&cg_a));
        f.tree.cg_resolved(cg_a.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        // The survivor w1 version suppresses a. Open the next group: its
        // completion branch stays lazy.
        let cg_b = f.create_cg(&v0);
        assert_eq!(f.tree.lazy_count(), 1);
        let poisoned = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert!(poisoned.suppressed().iter().any(|c| c.id() == cg_a.id()));

        // v0 rolls back; its completion of a is void.
        let outcome = v0.rollback_state();
        assert!(outcome.revoked.iter().any(|c| c.id() == cg_a.id()));
        let newer_of = |_: u64| Vec::new();
        let dropped = f
            .tree
            .revoke_completions(&outcome.revoked, &newer_of, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 1, "the poisoned w1 version is replaced");
        assert!(poisoned.is_dropped());
        assert_eq!(f.tree.lazy_count(), 1, "the thunk survives the sweep");

        // b completes: the branch materializes from the *cleaned* source.
        cg_b.complete();
        f.tree.cg_resolved(cg_b.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        let ids: Vec<CgId> = survivor.suppressed().iter().map(|c| c.id()).collect();
        assert!(ids.contains(&cg_b.id()));
        assert!(
            !ids.contains(&cg_a.id()),
            "the void completion never leaks into the late clone"
        );
    }

    #[test]
    fn attach_under_lazy_leaf_cg_defers_completion_version() {
        // A group created before any dependent window exists: a window
        // opening later eagerly creates both edge versions; lazily it
        // creates only the abandon-side version plus a thunk.
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        assert_eq!(f.tree.lazy_count(), 0, "no dependents: nothing to defer");
        let w2 = f.open_window(1);
        assert_eq!(w2.len(), 1, "only the abandon-side version exists");
        assert!(w2[0].suppressed().is_empty());
        assert_eq!(f.tree.lazy_count(), 1);
        cg.complete();
        f.tree.cg_resolved(cg.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        let survivor = f
            .tree
            .versions()
            .into_iter()
            .find(|v| v.window().id == 1)
            .unwrap();
        assert!(survivor.suppressed().iter().any(|c| c.id() == cg.id()));
        assert_eq!(f.tree.take_lazy_stats(), (0, 0), "rebuilt fresh");
    }

    #[test]
    fn nested_branches_stay_lazy_through_materialization() {
        // Materializing an outer branch copies an inner unresolved group's
        // vertex — the inner completion branch must stay a thunk in the
        // copy (under the twin cell), not get cloned transitively.
        let mut f = Fixture::lazy();
        let w1 = f.open_window(0).remove(0);
        let w2 = f.open_window(1).remove(0);
        let cg1 = f.create_cg(&w1); // thunk over the w2 subtree
        let cg2 = f.create_cg(&w2); // leaf CG under the original w2 version
                                    // Mirror the runtime: the owning version holds its group open, so
                                    // a clone of it gets an independent twin.
        w2.lock().open_cgs.push((MatchId(0), Arc::clone(&cg2)));
        let _w3 = f.open_window(2); // attaches below cg2 (abandon + thunk)
        assert_eq!(f.tree.lazy_count(), 2);
        assert_eq!(f.tree.version_count(), 3);

        // The predictor ranks cg1's completion branch highest: the top-k
        // selection clones it. The clone must carry w2', w3', a twin CG
        // vertex for cg2 — and the twin's completion edge must again be a
        // thunk, not a transitively forced clone.
        let top = f.tree.top_k(2, &|_c| 0.95, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(top.len(), 2);
        assert_eq!(f.tree.version_count(), 5, "w1..w3 plus w2', w3'");
        assert_eq!(f.tree.lazy_count(), 2, "inner thunk re-created lazily");
        let (materialized, lazy_dropped) = f.tree.take_lazy_stats();
        assert_eq!(materialized, 2, "w2' and w3'");
        assert_eq!(lazy_dropped, 0);
        // The scheduled branch head is the w2 clone in the cg1-completed
        // world, holding an open twin in place of cg2.
        let w2_copy = Arc::clone(&top[1]);
        assert_eq!(w2_copy.window().id, 1);
        assert!(w2_copy.suppressed().iter().any(|c| c.id() == cg1.id()));
        {
            let inner = w2_copy.lock();
            assert_eq!(inner.open_cgs.len(), 1);
            assert_ne!(inner.open_cgs[0].1.id(), cg2.id(), "independent twin");
        }

        // cg1 then completes: the already-materialized branch wins as-is,
        // and the abandon side (with the original inner thunk) dies free.
        cg1.complete();
        f.tree.cg_resolved(cg1.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(f.tree.version_count(), 3);
        assert_eq!(f.tree.lazy_count(), 1);
        assert_eq!(f.tree.take_lazy_stats(), (0, 1));
        for v in f.tree.versions() {
            if v.window().id > 0 {
                assert!(v.suppressed().iter().any(|c| c.id() == cg1.id()));
            }
        }
    }

    #[test]
    fn lazy_attach_defers_leaf_versions() {
        // Opening windows records them on one marker per lineage; no
        // version state is created until the lineage is scheduled.
        let mut f = Fixture::all_lazy();
        let _w0 = f.open_window(0);
        assert_eq!(f.tree.version_count(), 1, "the root is always real");
        let w1 = f.open_window(1);
        assert!(w1.is_empty(), "no eager version for w1");
        assert_eq!(f.tree.pending_attach_count(), 1);
        let w2 = f.open_window(2);
        assert!(w2.is_empty());
        assert_eq!(f.tree.pending_attach_count(), 1, "one marker per lineage");
        assert_eq!(f.tree.pending_attach_windows(), 2);
        assert_eq!(f.tree.version_count(), 1);
    }

    #[test]
    fn pending_attach_materializes_one_version_per_schedule() {
        let mut f = Fixture::all_lazy();
        let _ = f.open_window(0);
        let _ = f.open_window(1);
        let _ = f.open_window(2);
        // k = 2: the root plus exactly one materialized pending window;
        // the third window stays thunked below the new version.
        let top = f.tree.top_k(2, &|_c| 0.5, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].window().id, 0);
        assert_eq!(top[1].window().id, 1);
        assert_eq!(f.tree.version_count(), 2);
        assert_eq!(f.tree.pending_attach_windows(), 1);
        // k = 3 materializes the tail too.
        let top = f.tree.top_k(3, &|_c| 0.5, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(top.len(), 3);
        assert_eq!(top[2].window().id, 2);
        assert_eq!(f.tree.version_count(), 3);
        assert_eq!(f.tree.pending_attach_count(), 0);
    }

    #[test]
    fn retire_materializes_pending_child() {
        let mut f = Fixture::all_lazy();
        let w0 = f.open_window(0).remove(0);
        let _ = f.open_window(1);
        assert_eq!(f.tree.version_count(), 1);
        let retired = f.tree.retire_root(&mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(retired.id(), w0.id());
        let root = f.tree.root_version().expect("w1 promoted");
        assert_eq!(root.window().id, 1);
        assert_eq!(f.tree.pending_attach_count(), 0);
    }

    #[test]
    fn pending_attach_drops_free_with_losing_branch() {
        // Windows pending under a CG's abandon side vanish for free when
        // the group completes and the completion branch (rebuilt fresh)
        // wins — and the rebuilt chain covers the pending windows.
        let mut f = Fixture::all_lazy();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        let _ = f.open_window(1);
        let _ = f.open_window(2);
        assert_eq!(f.tree.version_count(), 1, "both dependents still pending");
        cg.complete();
        f.tree.cg_resolved(cg.id(), true, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(f.tree.pending_attach_count(), 0);
        assert_eq!(f.tree.version_count(), 3, "w1 + rebuilt w2, w3");
        for v in f.tree.versions() {
            if v.window().id > 0 {
                assert!(
                    v.suppressed().iter().any(|c| c.id() == cg.id()),
                    "rebuilt chain suppresses the completed group"
                );
                assert_eq!(v.lock().pos, 0, "fresh, reprocesses from the start");
            }
        }
    }

    #[test]
    fn pending_attach_abandonment_keeps_windows_pending() {
        // An abandoned group splices its abandon side — including a
        // marker — back up without materializing anything.
        let mut f = Fixture::all_lazy();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        let _ = f.open_window(1);
        cg.abandon();
        f.tree.cg_resolved(cg.id(), false, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(f.tree.version_count(), 1, "w2 still pending");
        assert_eq!(f.tree.pending_attach_windows(), 1);
        // Scheduling it later derives a clean suppression context.
        let top = f.tree.top_k(2, &|_c| 0.5, &mut f.factory);
        assert_eq!(top.len(), 2);
        assert!(top[1].suppressed().is_empty());
    }

    #[test]
    fn completion_edge_marker_materializes_with_cell_suppression() {
        // Eager branch copies + lazy attach: a window attaching under a
        // leaf CG vertex defers on both edges; the completion-edge marker
        // must pick up the group's cell when it materializes.
        let mut f = Fixture::eager_branches_lazy_attach();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        let created = f.open_window(1);
        assert!(created.is_empty(), "both edges deferred");
        assert_eq!(f.tree.pending_attach_count(), 2);
        let top = f.tree.top_k(3, &|_c| 0.5, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(top.len(), 3);
        let suppressing = top
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg.id()))
            .count();
        assert_eq!(suppressing, 1, "completion-side copy suppresses the cell");
        assert_eq!(f.tree.version_count(), 3);
    }

    #[test]
    fn eager_branch_copy_carries_markers() {
        // Eager branches + lazy attach: cg_created deep-copies the
        // dependent subtree — a pending-attach marker in it must copy as
        // a marker, not force materialization.
        let mut f = Fixture::eager_branches_lazy_attach();
        let w1 = f.open_window(0).remove(0);
        let _ = f.open_window(1);
        assert_eq!(f.tree.pending_attach_count(), 1);
        let cg = f.create_cg(&w1);
        f.tree.assert_invariants();
        assert_eq!(
            f.tree.pending_attach_count(),
            2,
            "the completion copy carries its own marker"
        );
        assert_eq!(f.tree.version_count(), 1, "no version materialized");
        // Scheduling deep enough materializes both sides; exactly one
        // suppresses the group.
        let top = f.tree.top_k(3, &|_c| 0.5, &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(top.len(), 3);
        let suppressing = top
            .iter()
            .filter(|v| v.suppressed().iter().any(|c| c.id() == cg.id()))
            .count();
        assert_eq!(suppressing, 1);
    }

    #[test]
    fn rollback_teardown_drops_pending_windows() {
        let mut f = Fixture::all_lazy();
        let w1 = f.open_window(0).remove(0);
        let _ = f.open_window(1);
        let _ = f.open_window(2);
        assert_eq!(f.tree.pending_attach_windows(), 2);
        let newer = vec![
            Arc::new(WindowInfo::new(1, 2, 2, 2)),
            Arc::new(WindowInfo::new(2, 4, 4, 4)),
        ];
        let dropped = f
            .tree
            .rollback_rebuild(w1.id(), &newer, Vec::new(), &mut f.factory);
        f.tree.assert_invariants();
        assert_eq!(dropped, 0, "pending windows die free");
        assert_eq!(f.tree.pending_attach_count(), 0);
        assert_eq!(f.tree.version_count(), 3, "rollback rebuilds eagerly");
    }

    #[test]
    fn resolved_cell_status_is_visible_to_predictor_paths() {
        let mut f = Fixture::new();
        let w1 = f.open_window(0).remove(0);
        let cg = f.create_cg(&w1);
        assert_eq!(cg.status(), CgStatus::Open);
        cg.complete();
        assert!(cg.is_resolved());
    }
}
