//! Window-version state.
//!
//! A *window version* is one speculative variant of a window, defined by the
//! set of consumption groups it assumes to complete — its *suppressed set*
//! (paper §3.1). The state is shared between the splitter (which creates,
//! schedules, drops and retires versions) and the operator instance
//! currently processing it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use spectre_events::Seq;
use spectre_query::{ComplexEvent, MatchId, Query, WindowDetector};

use crate::cg::{CgCell, CgId};
use crate::metrics::Metrics;
use crate::shared::QueryId;
use crate::store::WindowInfo;

/// Unique id of a window version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WvId(pub u64);

impl std::fmt::Display for WvId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wv{}", self.0)
    }
}

/// Mutable processing state of a version, guarded by a mutex (a version is
/// scheduled to at most one instance at a time, so contention is between
/// that instance and occasional splitter inspection).
#[derive(Debug, Clone)]
pub struct VersionInner {
    /// Pattern-detection state.
    pub detector: WindowDetector,
    /// Relative position: number of window events looked at (processed or
    /// suppressed).
    pub pos: u64,
    /// Buffered speculative complex events (paper §3.3: outputs are held
    /// back until the version becomes valid).
    pub outputs: Vec<ComplexEvent>,
    /// Sorted sequence numbers of events actually processed (not
    /// suppressed) — `usedEvents` of paper Fig. 8.
    pub used: Vec<Seq>,
    /// Per suppressed CG: last event-set version seen by the consistency
    /// check (`lastCheckedVersion`, paper Fig. 8).
    pub seen_versions: Vec<u64>,
    /// Open consumption groups created by this version, by match id.
    pub open_cgs: Vec<(MatchId, Arc<CgCell>)>,
    /// Matches whose group completed and that continue matching (EachLast
    /// selection): the next consumable event opens a new group.
    pub needs_new_cg: Vec<MatchId>,
    /// Events processed since the last consistency check.
    pub steps_since_check: u32,
    /// Consumption groups this version has *completed* so far. Carried as
    /// facts when the version rolls back to a checkpoint past their
    /// completion (the rebuilt dependents must still suppress them).
    pub completed_cells: Vec<Arc<CgCell>>,
    /// Last snapshot taken at a clean cut (checkpointing ablation, §3.3).
    pub checkpoint: Option<Box<Checkpoint>>,
}

/// Outcome of [`VersionState::rollback_state`].
#[derive(Debug)]
pub struct RollbackOutcome {
    /// `true` when a checkpoint was restored rather than a full reset.
    pub restored_checkpoint: bool,
    /// Consumption groups the discarded processing had completed that the
    /// rollback does not carry over; their completion is void and must be
    /// revoked from the dependency tree.
    pub revoked: Vec<Arc<CgCell>>,
}

/// A state snapshot taken at a *clean cut*: no partial match (and hence no
/// open consumption group) was active, so restoring it never resurrects a
/// group the dependency tree has already resolved.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Detector state at the cut.
    pub detector: WindowDetector,
    /// Relative position at the cut.
    pub pos: u64,
    /// Buffered outputs at the cut.
    pub outputs: Vec<ComplexEvent>,
    /// Processed events at the cut (sorted).
    pub used: Vec<Seq>,
    /// Groups completed before the cut.
    pub completed_cells: Vec<Arc<CgCell>>,
}

impl VersionInner {
    fn new(query: Arc<Query>, window_id: u64, suppressed_count: usize) -> Self {
        VersionInner {
            detector: WindowDetector::new(query, window_id),
            pos: 0,
            outputs: Vec::new(),
            used: Vec::new(),
            seen_versions: vec![0; suppressed_count],
            open_cgs: Vec::new(),
            needs_new_cg: Vec::new(),
            steps_since_check: 0,
            completed_cells: Vec::new(),
            checkpoint: None,
        }
    }
}

/// Shared state of one window version.
#[derive(Debug)]
pub struct VersionState {
    id: WvId,
    window: Arc<WindowInfo>,
    query: Arc<Query>,
    /// The deployed query this version belongs to. Instances tag the
    /// [`TreeOp`](crate::shared::TreeOp)s and stats they emit for this
    /// version with it so the splitter can route them to the right
    /// [`QueryState`](crate::splitter::Splitter) registry entry.
    query_id: QueryId,
    /// The owning query's metric counters; instances update these alongside
    /// the engine-global aggregate.
    qmetrics: Arc<Metrics>,
    suppressed: Vec<Arc<CgCell>>,
    /// `true` iff the version was created with *no* assumptions at all —
    /// a version of an independent window. Only these feed the Markov
    /// statistics (paper §3.2.1). Evaluated before dead-cell pruning, so
    /// pruning a long-settled history does not silently promote a
    /// dependent version into a statistics source.
    stats_eligible: bool,
    dropped: AtomicBool,
    finished: AtomicBool,
    inner: Mutex<VersionInner>,
}

/// Drops suppressed cells that can never matter to `window`: groups whose
/// resolution froze an event set lying entirely before the window's first
/// event. Suppression accumulates along the lineage for as long as windows
/// overlap; without this, every version created late in a long stream
/// would re-check the whole consumption history on every event — the
/// per-event cost would grow with stream length instead of live overlap.
fn prune_dead_suppressed(window: &WindowInfo, suppressed: Vec<Arc<CgCell>>) -> Vec<Arc<CgCell>> {
    suppressed
        .into_iter()
        .filter(|cell| !cell.is_dead_for(window.start_seq))
        .collect()
}

impl VersionState {
    /// Creates a fresh version of `window` suppressing the given groups
    /// (dead cells pruned, see [`CgCell::is_dead_for`]).
    pub fn new(
        id: WvId,
        window: Arc<WindowInfo>,
        query: Arc<Query>,
        suppressed: Vec<Arc<CgCell>>,
    ) -> Arc<Self> {
        Self::for_query(
            id,
            window,
            query,
            suppressed,
            QueryId(0),
            Arc::new(Metrics::new()),
        )
    }

    /// Creates a fresh version attributed to a specific deployed query —
    /// [`new`](Self::new) with an explicit query id and per-query metrics
    /// handle. `new` is the single-query shorthand (query 0, throwaway
    /// counters).
    pub fn for_query(
        id: WvId,
        window: Arc<WindowInfo>,
        query: Arc<Query>,
        suppressed: Vec<Arc<CgCell>>,
        query_id: QueryId,
        qmetrics: Arc<Metrics>,
    ) -> Arc<Self> {
        let stats_eligible = suppressed.is_empty();
        let suppressed = prune_dead_suppressed(&window, suppressed);
        let inner = VersionInner::new(Arc::clone(&query), window.id, suppressed.len());
        Arc::new(VersionState {
            id,
            window,
            query,
            query_id,
            qmetrics,
            suppressed,
            stats_eligible,
            dropped: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            inner: Mutex::new(inner),
        })
    }

    /// The version's id.
    pub fn id(&self) -> WvId {
        self.id
    }

    /// The window this is a version of.
    pub fn window(&self) -> &Arc<WindowInfo> {
        &self.window
    }

    /// The query.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// The deployed query this version belongs to.
    pub fn query_id(&self) -> QueryId {
        self.query_id
    }

    /// The owning query's metric counters.
    pub fn query_metrics(&self) -> &Arc<Metrics> {
        &self.qmetrics
    }

    /// The consumption groups this version assumes completed; their events
    /// are suppressed (paper §3.1).
    pub fn suppressed(&self) -> &[Arc<CgCell>] {
        &self.suppressed
    }

    /// `true` iff this version was created with no assumptions at all — a
    /// version of an independent window, eligible to feed the Markov
    /// statistics (paper §3.2.1: "statistics are gathered by versions of
    /// independent windows"). Deliberately *not* `suppressed().is_empty()`:
    /// dead-cell pruning may empty a dependent version's set without
    /// making its processing independent in the statistical sense.
    pub fn stats_eligible(&self) -> bool {
        self.stats_eligible
    }

    /// `true` once the splitter removed this version from the dependency
    /// tree; the processing instance must stop working on it.
    pub fn is_dropped(&self) -> bool {
        self.dropped.load(Ordering::Acquire)
    }

    /// Marks the version dropped.
    pub fn mark_dropped(&self) {
        self.dropped.store(true, Ordering::Release);
    }

    /// `true` once the version processed its whole window.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Marks the version finished.
    pub fn mark_finished(&self) {
        self.finished.store(true, Ordering::Release);
    }

    /// Locks the processing state.
    pub fn lock(&self) -> MutexGuard<'_, VersionInner> {
        self.inner.lock()
    }

    /// Resets all processing state — rollback to the window start (paper
    /// §3.3: "the window version is reprocessed from the start").
    ///
    /// Open consumption groups created by the discarded processing are
    /// marked abandoned; the caller must also rebuild the dependency-tree
    /// subtree (see [`DependencyTree::rollback_rebuild`](crate::tree::DependencyTree::rollback_rebuild)).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        for (_, cg) in inner.open_cgs.drain(..) {
            cg.abandon();
        }
        *inner = VersionInner::new(
            Arc::clone(&self.query),
            self.window.id,
            self.suppressed.len(),
        );
        self.finished.store(false, Ordering::Release);
    }

    /// Rolls the version back: restores the latest checkpoint if one exists
    /// and is still consistent with the suppressed groups, otherwise resets
    /// to the window start.
    ///
    /// A checkpoint is consistent when none of its processed events belongs
    /// to a currently suppressed group — the same criterion the periodic
    /// consistency check applies to live state (paper Fig. 8).
    ///
    /// The outcome reports the consumption groups the discarded processing
    /// had *completed* that do not survive the rollback. Their completion
    /// was speculative output of processing that never happened in the
    /// restarted timeline; the splitter must revoke them from the
    /// dependency tree (versions elsewhere in the tree may still suppress
    /// their events based on the void completion — see
    /// [`DependencyTree::revoke_completions`](crate::tree::DependencyTree::revoke_completions)).
    pub fn rollback_state(&self) -> RollbackOutcome {
        let mut inner = self.inner.lock();
        let before = inner.completed_cells.clone();
        let restorable = inner.checkpoint.as_ref().is_some_and(|cp| {
            self.suppressed
                .iter()
                .all(|cg| !cg.intersects_sorted(&cp.used))
        });
        if !restorable {
            drop(inner);
            self.reset();
            return RollbackOutcome {
                restored_checkpoint: false,
                revoked: before,
            };
        }
        for (_, cg) in inner.open_cgs.drain(..) {
            cg.abandon();
        }
        let cp = inner.checkpoint.clone().expect("checked above");
        inner.detector = cp.detector.clone();
        inner.pos = cp.pos;
        inner.outputs = cp.outputs.clone();
        inner.used = cp.used.clone();
        inner.completed_cells = cp.completed_cells.clone();
        inner.needs_new_cg.clear();
        inner.seen_versions = vec![0; self.suppressed.len()];
        inner.steps_since_check = 0;
        self.finished.store(false, Ordering::Release);
        let surviving = &inner.completed_cells;
        let revoked = before
            .into_iter()
            .filter(|c| !surviving.iter().any(|k| k.id() == c.id()))
            .collect();
        RollbackOutcome {
            restored_checkpoint: true,
            revoked,
        }
    }

    /// Clones this version's full processing state into a new speculative
    /// version with a different suppressed set (paper §3.1: the "modified
    /// copy" of a dependent version when a consumption group is created).
    ///
    /// This is both the eager copy at `cg_created` time and the clone
    /// behind *lazy branch materialization*
    /// (see [`DependencyTree`](crate::tree::DependencyTree)): in the lazy
    /// case the source has usually advanced past the group's creation
    /// point — possibly even processing events the group consumed. That is
    /// safe for the same reason eager copies survive late group updates:
    /// the clone's consistency bookkeeping restarts from scratch (below),
    /// so the first periodic check — and at the latest the final
    /// validation before retirement — detects the overlap and rolls the
    /// clone back. No separate creation-time snapshot of `VersionInner` is
    /// needed; the live state *is* the thunk source.
    ///
    /// Open consumption groups are replaced by independent *twin* cells
    /// created through `mk_twin` — the copy continues the same partial
    /// matches, but in its world they must resolve independently of the
    /// originals. The snapshot, the expected-open validation and the twin
    /// creation all happen under the source's state lock, so they are
    /// atomic with respect to the owning instance's processing.
    ///
    /// Returns `None` when an open group is not listed in `expected_open`:
    /// the caller's tree state predates that group (its `CgCreated` op is
    /// still in flight), and the copy must fall back to a fresh version.
    ///
    /// The consistency bookkeeping restarts from scratch (`seen_versions`
    /// zeroed, check counter reset): the first periodic check re-validates
    /// every suppressed group against the inherited `used` set, catching
    /// events the inherited state processed that the new world suppresses.
    #[allow(clippy::type_complexity)]
    pub fn clone_speculative(
        source: &Arc<VersionState>,
        id: WvId,
        suppressed: Vec<Arc<CgCell>>,
        expected_open: &[CgId],
        mk_twin: &mut dyn FnMut(&CgCell) -> Arc<CgCell>,
    ) -> Option<(Arc<Self>, Vec<(CgId, Arc<CgCell>)>)> {
        let suppressed = prune_dead_suppressed(&source.window, suppressed);
        let guard = source.inner.lock();
        let mut inner = guard.clone();
        // The finished flag is only flipped while the state lock is held,
        // so reading it under the same guard keeps it consistent with the
        // snapshot (a finished snapshot has no open groups left).
        let finished = source.is_finished();
        drop(guard);
        let mut twins = Vec::with_capacity(inner.open_cgs.len());
        for (_, cell) in &mut inner.open_cgs {
            if !expected_open.contains(&cell.id()) {
                return None;
            }
            let twin = mk_twin(cell);
            twins.push((cell.id(), Arc::clone(&twin)));
            *cell = twin;
        }
        inner.seen_versions = vec![0; suppressed.len()];
        inner.steps_since_check = 0;
        let version = Arc::new(VersionState {
            id,
            window: Arc::clone(&source.window),
            query: Arc::clone(&source.query),
            query_id: source.query_id,
            qmetrics: Arc::clone(&source.qmetrics),
            suppressed,
            // A speculative copy always assumes its branch's completion —
            // never a statistics source, even if pruning empties its set.
            stats_eligible: false,
            dropped: AtomicBool::new(false),
            finished: AtomicBool::new(finished),
            inner: Mutex::new(inner),
        });
        Some((version, twins))
    }

    /// Runs the full consistency check (paper Fig. 8 lines 31–45) without
    /// the version-counter fast path: `true` iff no suppressed group's event
    /// set intersects the processed events.
    pub fn is_consistent(&self) -> bool {
        let inner = self.inner.lock();
        self.suppressed
            .iter()
            .all(|cg| !cg.intersects_sorted(&inner.used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::CgId;
    use spectre_query::{Expr, Pattern, WindowSpec};

    fn query() -> Arc<Query> {
        Arc::new(
            Query::builder("t")
                .pattern(Pattern::builder().one("A", Expr::truth()).build().unwrap())
                .window(WindowSpec::count_sliding(4, 2).unwrap())
                .build()
                .unwrap(),
        )
    }

    fn version(suppressed: Vec<Arc<CgCell>>) -> Arc<VersionState> {
        VersionState::new(
            WvId(1),
            Arc::new(WindowInfo::new(0, 0, 0, 0)),
            query(),
            suppressed,
        )
    }

    #[test]
    fn flags_lifecycle() {
        let v = version(vec![]);
        assert!(!v.is_dropped());
        assert!(!v.is_finished());
        v.mark_finished();
        assert!(v.is_finished());
        v.mark_dropped();
        assert!(v.is_dropped());
        assert_eq!(v.id(), WvId(1));
    }

    #[test]
    fn reset_clears_state_and_abandons_open_groups() {
        let v = version(vec![]);
        let cg = Arc::new(CgCell::new(CgId(1), 0, 2));
        {
            let mut inner = v.lock();
            inner.pos = 5;
            inner.used = vec![1, 2, 3];
            inner.open_cgs.push((MatchId(0), Arc::clone(&cg)));
            inner.outputs.push(ComplexEvent::new(0, 0, vec![1]));
        }
        v.mark_finished();
        v.reset();
        assert!(!v.is_finished());
        let inner = v.lock();
        assert_eq!(inner.pos, 0);
        assert!(inner.used.is_empty());
        assert!(inner.outputs.is_empty());
        assert!(inner.open_cgs.is_empty());
        assert_eq!(cg.status(), crate::cg::CgStatus::Abandoned);
    }

    #[test]
    fn consistency_check_detects_intersections() {
        let cg = Arc::new(CgCell::new(CgId(1), 0, 2));
        let v = version(vec![Arc::clone(&cg)]);
        {
            let mut inner = v.lock();
            inner.used = vec![5, 7, 9];
        }
        assert!(v.is_consistent());
        cg.add_event(7, 1, 0);
        assert!(!v.is_consistent());
    }

    #[test]
    fn seen_versions_sized_to_suppressed() {
        let cgs: Vec<_> = (0..3)
            .map(|i| Arc::new(CgCell::new(CgId(i), 0, 1)))
            .collect();
        let v = version(cgs);
        assert_eq!(v.lock().seen_versions.len(), 3);
        assert_eq!(v.suppressed().len(), 3);
    }
}
