//! CSV persistence for stock-quote streams.
//!
//! Format (no header): `seq,ts,symbol,open,close,leading` — one event per
//! line, `symbol` as the symbol's interned name, `leading` as `0`/`1`. This
//! mirrors typical quote dumps and lets generated datasets be inspected and
//! re-used across runs.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use spectre_events::{Event, Schema, Value};
use spectre_query::queries::StockVocab;

/// Error produced when reading a malformed CSV line.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not have the expected 6 fields or a field failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a quote stream to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_quotes<'a>(
    path: &Path,
    events: impl IntoIterator<Item = &'a Event>,
    schema: &Schema,
    vocab: StockVocab,
) -> Result<(), CsvError> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut line = String::new();
    for ev in events {
        line.clear();
        let sym = ev
            .symbol(vocab.symbol)
            .and_then(|s| schema.symbol_name(s))
            .unwrap_or("?");
        let leading = matches!(ev.get(vocab.leading), Some(Value::Bool(true)));
        let _ = write!(
            line,
            "{},{},{},{},{},{}",
            ev.seq(),
            ev.ts(),
            sym,
            ev.f64(vocab.open_price).unwrap_or(0.0),
            ev.f64(vocab.close_price).unwrap_or(0.0),
            u8::from(leading),
        );
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a quote stream from `path`, interning symbols into `schema`.
///
/// # Errors
///
/// Returns [`CsvError::Malformed`] with the offending line number on parse
/// failures.
pub fn read_quotes(path: &Path, schema: &mut Schema) -> Result<Vec<Event>, CsvError> {
    let vocab = StockVocab::install(schema);
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = idx + 1;
        let mut fields = line.split(',');
        let mut field = |name: &str| -> Result<&str, CsvError> {
            fields.next().ok_or_else(|| CsvError::Malformed {
                line: line_no,
                msg: format!("missing field `{name}`"),
            })
        };
        fn parse<T: std::str::FromStr>(raw: &str, name: &str, line: usize) -> Result<T, CsvError> {
            raw.parse().map_err(|_| CsvError::Malformed {
                line,
                msg: format!("invalid `{name}`"),
            })
        }
        let seq: u64 = parse(field("seq")?, "seq", line_no)?;
        let ts: u64 = parse(field("ts")?, "ts", line_no)?;
        let sym = schema.symbol(field("symbol")?);
        let open: f64 = parse(field("open")?, "open", line_no)?;
        let close: f64 = parse(field("close")?, "close", line_no)?;
        let leading_raw = field("leading")?;
        let leading = match leading_raw {
            "0" => false,
            "1" => true,
            other => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    msg: format!("invalid `leading` flag `{other}`"),
                })
            }
        };
        events.push(
            Event::builder(vocab.quote)
                .seq(seq)
                .ts(ts)
                .attr(vocab.symbol, Value::Symbol(sym))
                .attr(vocab.open_price, open)
                .attr(vocab.close_price, close)
                .attr(vocab.leading, leading)
                .build(),
        );
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nyse::{NyseConfig, NyseGenerator};

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("spectre_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quotes.csv");

        let mut schema = Schema::new();
        let gen = NyseGenerator::new(NyseConfig::small(200, 8), &mut schema);
        let vocab = gen.vocab();
        let events: Vec<_> = gen.collect();
        write_quotes(&path, &events, &schema, vocab).unwrap();

        let mut schema2 = Schema::new();
        let back = read_quotes(&path, &mut schema2).unwrap();
        assert_eq!(back.len(), events.len());
        for (a, b) in events.iter().zip(&back) {
            assert_eq!(a.seq(), b.seq());
            assert_eq!(a.ts(), b.ts());
            // symbol *names* must agree even though ids may differ
            let an = schema.symbol_name(a.symbol(vocab.symbol).unwrap()).unwrap();
            let bn = schema2
                .symbol_name(b.symbol(vocab.symbol).unwrap())
                .unwrap();
            assert_eq!(an, bn);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let dir = std::env::temp_dir().join("spectre_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "0,0,SYM,1.0,2.0,1\n1,zzz,SYM,1.0,2.0,0\n").unwrap();
        let mut schema = Schema::new();
        let err = read_quotes(&path, &mut schema).unwrap_err();
        let CsvError::Malformed { line, msg } = err else {
            panic!("expected malformed error");
        };
        assert_eq!(line, 2);
        assert!(msg.contains("ts"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_lines_are_skipped() {
        let dir = std::env::temp_dir().join("spectre_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gaps.csv");
        std::fs::write(&path, "0,0,A,1.0,2.0,1\n\n1,5,B,2.0,1.0,0\n").unwrap();
        let mut schema = Schema::new();
        let events = read_quotes(&path, &mut schema).unwrap();
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_leading_flag_is_rejected() {
        let dir = std::env::temp_dir().join("spectre_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flag.csv");
        std::fs::write(&path, "0,0,A,1.0,2.0,yes\n").unwrap();
        let mut schema = Schema::new();
        let err = read_quotes(&path, &mut schema).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));
        std::fs::remove_file(&path).unwrap();
    }
}
