//! Bounded-disorder stream perturbation for the out-of-order test battery.
//!
//! The reorder stage's contract is *bounded lateness*: every event arrives
//! at most `max_delay` timestamp ticks after the stream has progressed past
//! it. [`bounded_shuffle`] manufactures adversarial-but-contractual inputs
//! for that bound: each event is assigned the sort key
//! `ts + uniform(0..=bound)` and the stream is stably re-sorted by that
//! key. For any two events with original order `ts_i <= ts_j` the shuffled
//! positions satisfy `key_i <= ts_i + bound` and `key_j >= ts_j`, so an
//! event can overtake another only if their timestamps are within `bound`
//! of each other — the produced disorder (as measured by
//! [`max_disorder`]) never exceeds `bound`, while within that horizon the
//! permutation is seed-driven and aggressive.
//!
//! `bound: 0` degenerates to the identity permutation, which makes the
//! function usable as the single shuffle entry point of a sweep that
//! includes the in-order baseline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spectre_events::Event;

/// Returns the stream reordered with disorder bounded by `bound`
/// timestamp ticks (see the [module docs](self) for the construction).
/// Deterministic in `seed`; `bound: 0` returns the input order exactly.
pub fn bounded_shuffle(events: &[Event], bound: u64, seed: u64) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut keyed: Vec<(u64, Event)> = events
        .iter()
        .map(|ev| (ev.ts().saturating_add(rng.gen_range(0..=bound)), ev.clone()))
        .collect();
    keyed.sort_by_key(|(key, _)| *key);
    keyed.into_iter().map(|(_, ev)| ev).collect()
}

/// The maximum disorder of a stream in timestamp ticks: the largest gap by
/// which an event's timestamp trails the running maximum at its arrival
/// position. `0` for a timestamp-monotone stream; a reorder stage with
/// `max_delay >= max_disorder(stream)` loses no event.
pub fn max_disorder(events: &[Event]) -> u64 {
    let mut max_seen = 0u64;
    let mut worst = 0u64;
    for ev in events {
        worst = worst.max(max_seen.saturating_sub(ev.ts()));
        max_seen = max_seen.max(ev.ts());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NyseConfig, NyseGenerator};
    use spectre_events::Schema;

    fn fixture(n: usize) -> Vec<Event> {
        let mut schema = Schema::new();
        NyseGenerator::new(NyseConfig::small(n, 7), &mut schema).collect()
    }

    #[test]
    fn zero_bound_is_the_identity() {
        let events = fixture(500);
        assert_eq!(bounded_shuffle(&events, 0, 99), events);
        assert_eq!(max_disorder(&events), 0, "NYSE timestamps are monotone");
    }

    #[test]
    fn shuffle_respects_the_bound_and_actually_disorders() {
        let events = fixture(1000);
        // NYSE-small timestamps step by 1200 ticks: a bound at or below one
        // step can only tie sort keys, which the stable sort resolves in
        // arrival order — so only bounds above a step must actually perturb.
        for bound in [2_400, 6_000, 60_000] {
            for seed in [1, 2, 3] {
                let shuffled = bounded_shuffle(&events, bound, seed);
                let disorder = max_disorder(&shuffled);
                assert!(
                    disorder <= bound,
                    "disorder {disorder} exceeds bound {bound}"
                );
                assert!(disorder > 0, "bound {bound} must actually perturb");
                let mut sorted = shuffled.clone();
                sorted.sort_by_key(Event::ts);
                assert_eq!(sorted, events, "shuffle must be a permutation");
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic_in_the_seed() {
        let events = fixture(300);
        assert_eq!(
            bounded_shuffle(&events, 10_000, 5),
            bounded_shuffle(&events, 10_000, 5)
        );
        assert_ne!(
            bounded_shuffle(&events, 10_000, 5),
            bounded_shuffle(&events, 10_000, 6),
            "different seeds must produce different permutations"
        );
    }
}
