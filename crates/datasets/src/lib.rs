//! Datasets for the SPECTRE evaluation (paper §4.1).
//!
//! The paper evaluates on two datasets:
//!
//! * **NYSE** — real intra-day quotes of ≈3000 NYSE symbols collected from
//!   Google Finance (24 M quotes, 1 quote per minute per symbol). That trace
//!   is not redistributable, so this crate provides a *synthetic equivalent*
//!   ([`nyse`]): per-symbol geometric random walks interleaved round-robin at
//!   one quote per minute, with 16 designated blue-chip "leading" symbols.
//!   The evaluation's independent variable — the ratio of pattern size to
//!   window size, which sets the consumption-group completion probability —
//!   is fully reproducible on this substitute (see DESIGN.md §5).
//!
//! * **RAND** — a random sequence of events over 300 equally likely symbols
//!   ([`rand_stream`]).
//!
//! [`csv`] persists streams to disk and [`replay`] feeds them to engines,
//! optionally through the binary codec to mimic the paper's TCP client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod disorder;
pub mod net;
pub mod nyse;
pub mod rand_stream;
pub mod replay;

pub use disorder::{bounded_shuffle, max_disorder};
pub use net::{FramedItems, FramedSource, StreamServer, TcpSource};
pub use nyse::{NyseConfig, NyseGenerator};
pub use rand_stream::{RandConfig, RandGenerator};
pub use replay::ReplaySource;
