//! TCP ingestion path (paper §4.1: "we provide a client program that reads
//! events from a source file and sends them to SPECTRE over a TCP
//! connection").
//!
//! [`StreamServer`] plays the client role of the paper (it *produces* the
//! stream); [`FramedSource`] is the engine-side source: an
//! `Iterator<Item = Event>` decoding length-prefixed frames
//! ([`spectre_events::codec`]) from any `Read` — [`TcpSource`] is its
//! socket instantiation. Being plain iterators, both plug straight into a
//! `SpectreEngine` session (`engine.ingest(source)`), which processes the
//! stream incrementally under back-pressure: a live TCP feed of any length
//! runs in bounded memory, never materialized as a `Vec`.
//!
//! Out-of-order streams carry **watermark frames** alongside events
//! ([`spectre_events::codec::WATERMARK_MAGIC`]):
//! [`StreamServer::spawn_items`] serves them,
//! [`FramedSource::items`] yields them as
//! [`StreamItem`]s for
//! `SpectreEngine::ingest_items`, and the plain event iterator skips them,
//! so event-only consumers work unchanged on punctuated streams.
//!
//! # Example
//!
//! ```
//! use spectre_events::{Event, EventType, Schema};
//! use spectre_datasets::net::{StreamServer, TcpSource};
//!
//! let mut schema = Schema::new();
//! let t = schema.event_type("E");
//! let events: Vec<Event> = (0..100).map(|i| Event::builder(t).seq(i).ts(i).build()).collect();
//!
//! let server = StreamServer::spawn(events.clone()).unwrap();
//! let source = TcpSource::connect(server.addr()).unwrap();
//! let received: Vec<Event> = source.collect();
//! assert_eq!(received, events);
//! server.join();
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use bytes::BytesMut;
use spectre_events::codec::{encode, encode_watermark, Decoder};
use spectre_events::{Event, StreamItem};

/// How many events are encoded per write burst.
const BATCH: usize = 256;

/// A background thread serving one event stream to the first client that
/// connects — the paper's "client program" counterpart.
#[derive(Debug)]
pub struct StreamServer {
    addr: SocketAddr,
    handle: JoinHandle<io::Result<u64>>,
}

impl StreamServer {
    /// Binds an ephemeral loopback port and spawns the serving thread. The
    /// thread accepts exactly one connection, streams all events and closes.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn spawn(events: Vec<Event>) -> io::Result<StreamServer> {
        Self::spawn_items(events.into_iter().map(StreamItem::Event).collect())
    }

    /// [`spawn`](Self::spawn) for punctuated streams: serves events *and*
    /// watermark frames, in order. The returned count tallies only events
    /// (watermarks are punctuation, not payload).
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn spawn_items(items: Vec<StreamItem>) -> io::Result<StreamServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let handle = std::thread::spawn(move || -> io::Result<u64> {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut buf = BytesMut::new();
            let mut sent = 0u64;
            for chunk in items.chunks(BATCH) {
                buf.clear();
                for item in chunk {
                    match item {
                        StreamItem::Event(ev) => {
                            encode(ev, &mut buf);
                            sent += 1;
                        }
                        StreamItem::Watermark(ts) => encode_watermark(*ts, &mut buf),
                    }
                }
                stream.write_all(&buf)?;
            }
            stream.flush()?;
            Ok(sent)
        });
        Ok(StreamServer { addr, handle })
    }

    /// The address to connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the serving thread; returns the number of events sent.
    ///
    /// # Panics
    ///
    /// Panics if the serving thread failed (I/O error or panic).
    pub fn join(self) -> u64 {
        self.handle
            .join()
            .expect("stream server thread panicked")
            .expect("stream server I/O failed")
    }
}

/// Engine-side framed event source: decodes length-prefixed events from
/// any byte reader — a socket, a file, an in-memory buffer.
///
/// The iterator ends when the reader reports end-of-input and all buffered
/// frames are drained. Malformed frames end the stream as well (the decode
/// error is retrievable via [`FramedSource::error`]).
///
/// # Example
///
/// Socket-free round trip through the wire framing:
///
/// ```
/// use spectre_datasets::net::FramedSource;
/// use spectre_events::codec::encode;
/// use spectre_events::{Event, EventType};
/// use bytes::BytesMut;
///
/// let mut wire = BytesMut::new();
/// for seq in 0..10 {
///     encode(&Event::builder(EventType::new(0)).seq(seq).ts(seq).build(), &mut wire);
/// }
/// let source = FramedSource::new(std::io::Cursor::new(wire.to_vec()));
/// assert_eq!(source.count(), 10);
/// ```
#[derive(Debug)]
pub struct FramedSource<R: Read> {
    reader: R,
    decoder: Decoder,
    read_buf: Vec<u8>,
    eof: bool,
    error: Option<String>,
}

impl<R: Read> FramedSource<R> {
    /// Wraps a byte reader speaking the codec framing.
    pub fn new(reader: R) -> FramedSource<R> {
        FramedSource {
            reader,
            decoder: Decoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            eof: false,
            error: None,
        }
    }

    /// The decode or read error that ended the stream, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Records the torn-frame error when the input ended mid-frame: the
    /// decoder still buffers a partial frame no further bytes can ever
    /// complete. Without this check a truncated stream (a peer dying
    /// mid-write, a cut-short file) would end *silently*, indistinguishable
    /// from a clean close.
    fn check_torn_at_eof(&mut self) {
        let torn = self.decoder.buffered();
        if torn > 0 {
            self.error = Some(format!(
                "stream truncated mid-frame ({torn} undecodable bytes at end of input)"
            ));
        }
    }

    /// Attempts to decode the next stream item — an event or a watermark
    /// punctuation — reading more bytes as needed. `None` at end of input
    /// (or on error; see [`error`](Self::error)). An input that ends in the
    /// middle of a frame is an error, not a clean end.
    pub fn next_item(&mut self) -> Option<StreamItem> {
        loop {
            match self.decoder.next_item() {
                Ok(Some(item)) => return Some(item),
                Ok(None) => {}
                Err(e) => {
                    self.error = Some(e.to_string());
                    return None;
                }
            }
            if self.eof {
                self.check_torn_at_eof();
                return None;
            }
            match self.reader.read(&mut self.read_buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.decoder.extend(&self.read_buf[..n]),
                Err(e) => {
                    self.error = Some(e.to_string());
                    return None;
                }
            }
        }
    }

    /// Converts the source into the item-level iterator, yielding
    /// watermark punctuations alongside events — the view an engine with a
    /// reorder stage ingests via `ingest_items`. (The plain
    /// `Iterator<Item = Event>` view skips watermarks.)
    pub fn items(self) -> FramedItems<R> {
        FramedItems { source: self }
    }
}

/// Item-level view of a [`FramedSource`]: an
/// `Iterator<Item = StreamItem>` over events *and* watermark frames. Built
/// with [`FramedSource::items`].
#[derive(Debug)]
pub struct FramedItems<R: Read> {
    source: FramedSource<R>,
}

impl<R: Read> FramedItems<R> {
    /// The decode or read error that ended the stream, if any.
    pub fn error(&self) -> Option<&str> {
        self.source.error()
    }
}

impl<R: Read> Iterator for FramedItems<R> {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        self.source.next_item()
    }
}

/// Engine-side TCP event source: [`FramedSource`] over a socket.
pub type TcpSource = FramedSource<TcpStream>;

impl FramedSource<TcpStream> {
    /// Connects to a [`StreamServer`] (or any peer speaking the codec).
    ///
    /// # Errors
    ///
    /// Returns any connection error.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpSource> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FramedSource::new(stream))
    }
}

impl<R: Read> Iterator for FramedSource<R> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            match self.decoder.next_event() {
                Ok(Some(ev)) => return Some(ev),
                Ok(None) => {}
                Err(e) => {
                    self.error = Some(e.to_string());
                    return None;
                }
            }
            if self.eof {
                self.check_torn_at_eof();
                return None;
            }
            match self.reader.read(&mut self.read_buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.decoder.extend(&self.read_buf[..n]),
                Err(e) => {
                    self.error = Some(e.to_string());
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NyseConfig, NyseGenerator};
    use spectre_events::Schema;

    #[test]
    fn roundtrip_over_loopback() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(500, 3), &mut schema).collect();
        let server = StreamServer::spawn(events.clone()).unwrap();
        let source = TcpSource::connect(server.addr()).unwrap();
        let received: Vec<Event> = source.collect();
        assert_eq!(received, events);
        assert_eq!(server.join(), 500);
    }

    #[test]
    fn empty_stream_closes_cleanly() {
        let server = StreamServer::spawn(Vec::new()).unwrap();
        let source = TcpSource::connect(server.addr()).unwrap();
        assert_eq!(source.count(), 0);
        assert_eq!(server.join(), 0);
    }

    #[test]
    fn watermarked_stream_roundtrips_over_loopback() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(40, 9), &mut schema).collect();
        // Punctuate every 10 events with the last timestamp seen.
        let mut items = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            let ts = ev.ts();
            items.push(StreamItem::Event(ev.clone()));
            if (i + 1) % 10 == 0 {
                items.push(StreamItem::Watermark(ts));
            }
        }
        let server = StreamServer::spawn_items(items.clone()).unwrap();
        let source = TcpSource::connect(server.addr()).unwrap();
        let received: Vec<StreamItem> = source.items().collect();
        assert_eq!(received, items);
        assert_eq!(server.join(), 40, "watermarks are not counted as events");
    }

    #[test]
    fn event_iterator_skips_watermarks() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(25, 11), &mut schema).collect();
        let mut items = vec![StreamItem::Watermark(0)];
        for ev in &events {
            items.push(StreamItem::Event(ev.clone()));
            items.push(StreamItem::Watermark(ev.ts()));
        }
        let server = StreamServer::spawn_items(items).unwrap();
        let source = TcpSource::connect(server.addr()).unwrap();
        let received: Vec<Event> = source.collect();
        assert_eq!(received, events);
        server.join();
    }

    #[test]
    fn truncated_stream_surfaces_decode_error() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(20, 7), &mut schema).collect();
        let mut wire = BytesMut::new();
        for ev in &events {
            encode(ev, &mut wire);
        }
        // Chop the stream mid-frame: the last event loses its final bytes.
        let cut = wire.len() - 3;
        let mut source = FramedSource::new(std::io::Cursor::new(wire[..cut].to_vec()));
        let decoded: Vec<Event> = source.by_ref().collect();
        assert_eq!(decoded, events[..events.len() - 1]);
        let err = source.error().expect("torn tail must surface as an error");
        assert!(err.contains("truncated"), "unexpected error: {err}");
    }

    #[test]
    fn truncated_item_stream_surfaces_decode_error() {
        // A watermark frame cut short: sentinel magic present, timestamp torn.
        let mut wire = BytesMut::new();
        encode_watermark(42, &mut wire);
        let cut = wire.len() - 2;
        let mut items = FramedSource::new(std::io::Cursor::new(wire[..cut].to_vec())).items();
        assert!(items.next().is_none());
        let err = items
            .error()
            .expect("torn watermark must surface as an error");
        assert!(err.contains("truncated"), "unexpected error: {err}");
    }

    #[test]
    fn oversized_length_prefix_surfaces_decode_error() {
        let bad = (spectre_events::codec::MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut source = FramedSource::new(std::io::Cursor::new(bad.to_vec()));
        assert!(source.next().is_none());
        let err = source
            .error()
            .expect("oversized length must surface as an error");
        assert!(err.contains("exceeds maximum"), "unexpected error: {err}");
    }

    #[test]
    fn source_reports_no_error_on_clean_close() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(10, 5), &mut schema).collect();
        let server = StreamServer::spawn(events).unwrap();
        let mut source = TcpSource::connect(server.addr()).unwrap();
        while source.next().is_some() {}
        assert!(source.error().is_none());
        server.join();
    }
}
