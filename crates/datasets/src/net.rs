//! TCP ingestion path (paper §4.1: "we provide a client program that reads
//! events from a source file and sends them to SPECTRE over a TCP
//! connection").
//!
//! [`StreamServer`] plays the client role of the paper (it *produces* the
//! stream); [`FramedSource`] is the engine-side source: an
//! `Iterator<Item = Event>` decoding length-prefixed frames
//! ([`spectre_events::codec`]) from any `Read` — [`TcpSource`] is its
//! socket instantiation. Being plain iterators, both plug straight into a
//! `SpectreEngine` session (`engine.ingest(source)`), which processes the
//! stream incrementally under back-pressure: a live TCP feed of any length
//! runs in bounded memory, never materialized as a `Vec`.
//!
//! # Example
//!
//! ```
//! use spectre_events::{Event, EventType, Schema};
//! use spectre_datasets::net::{StreamServer, TcpSource};
//!
//! let mut schema = Schema::new();
//! let t = schema.event_type("E");
//! let events: Vec<Event> = (0..100).map(|i| Event::builder(t).seq(i).ts(i).build()).collect();
//!
//! let server = StreamServer::spawn(events.clone()).unwrap();
//! let source = TcpSource::connect(server.addr()).unwrap();
//! let received: Vec<Event> = source.collect();
//! assert_eq!(received, events);
//! server.join();
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use bytes::BytesMut;
use spectre_events::codec::{encode, Decoder};
use spectre_events::Event;

/// How many events are encoded per write burst.
const BATCH: usize = 256;

/// A background thread serving one event stream to the first client that
/// connects — the paper's "client program" counterpart.
#[derive(Debug)]
pub struct StreamServer {
    addr: SocketAddr,
    handle: JoinHandle<io::Result<u64>>,
}

impl StreamServer {
    /// Binds an ephemeral loopback port and spawns the serving thread. The
    /// thread accepts exactly one connection, streams all events and closes.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn spawn(events: Vec<Event>) -> io::Result<StreamServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let handle = std::thread::spawn(move || -> io::Result<u64> {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut buf = BytesMut::new();
            let mut sent = 0u64;
            for chunk in events.chunks(BATCH) {
                buf.clear();
                for ev in chunk {
                    encode(ev, &mut buf);
                    sent += 1;
                }
                stream.write_all(&buf)?;
            }
            stream.flush()?;
            Ok(sent)
        });
        Ok(StreamServer { addr, handle })
    }

    /// The address to connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the serving thread; returns the number of events sent.
    ///
    /// # Panics
    ///
    /// Panics if the serving thread failed (I/O error or panic).
    pub fn join(self) -> u64 {
        self.handle
            .join()
            .expect("stream server thread panicked")
            .expect("stream server I/O failed")
    }
}

/// Engine-side framed event source: decodes length-prefixed events from
/// any byte reader — a socket, a file, an in-memory buffer.
///
/// The iterator ends when the reader reports end-of-input and all buffered
/// frames are drained. Malformed frames end the stream as well (the decode
/// error is retrievable via [`FramedSource::error`]).
///
/// # Example
///
/// Socket-free round trip through the wire framing:
///
/// ```
/// use spectre_datasets::net::FramedSource;
/// use spectre_events::codec::encode;
/// use spectre_events::{Event, EventType};
/// use bytes::BytesMut;
///
/// let mut wire = BytesMut::new();
/// for seq in 0..10 {
///     encode(&Event::builder(EventType::new(0)).seq(seq).ts(seq).build(), &mut wire);
/// }
/// let source = FramedSource::new(std::io::Cursor::new(wire.to_vec()));
/// assert_eq!(source.count(), 10);
/// ```
#[derive(Debug)]
pub struct FramedSource<R: Read> {
    reader: R,
    decoder: Decoder,
    read_buf: Vec<u8>,
    eof: bool,
    error: Option<String>,
}

impl<R: Read> FramedSource<R> {
    /// Wraps a byte reader speaking the codec framing.
    pub fn new(reader: R) -> FramedSource<R> {
        FramedSource {
            reader,
            decoder: Decoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            eof: false,
            error: None,
        }
    }

    /// The decode or read error that ended the stream, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }
}

/// Engine-side TCP event source: [`FramedSource`] over a socket.
pub type TcpSource = FramedSource<TcpStream>;

impl FramedSource<TcpStream> {
    /// Connects to a [`StreamServer`] (or any peer speaking the codec).
    ///
    /// # Errors
    ///
    /// Returns any connection error.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpSource> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FramedSource::new(stream))
    }
}

impl<R: Read> Iterator for FramedSource<R> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            match self.decoder.next_event() {
                Ok(Some(ev)) => return Some(ev),
                Ok(None) => {}
                Err(e) => {
                    self.error = Some(e.to_string());
                    return None;
                }
            }
            if self.eof {
                return None;
            }
            match self.reader.read(&mut self.read_buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.decoder.extend(&self.read_buf[..n]),
                Err(e) => {
                    self.error = Some(e.to_string());
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NyseConfig, NyseGenerator};
    use spectre_events::Schema;

    #[test]
    fn roundtrip_over_loopback() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(500, 3), &mut schema).collect();
        let server = StreamServer::spawn(events.clone()).unwrap();
        let source = TcpSource::connect(server.addr()).unwrap();
        let received: Vec<Event> = source.collect();
        assert_eq!(received, events);
        assert_eq!(server.join(), 500);
    }

    #[test]
    fn empty_stream_closes_cleanly() {
        let server = StreamServer::spawn(Vec::new()).unwrap();
        let source = TcpSource::connect(server.addr()).unwrap();
        assert_eq!(source.count(), 0);
        assert_eq!(server.join(), 0);
    }

    #[test]
    fn source_reports_no_error_on_clean_close() {
        let mut schema = Schema::new();
        let events: Vec<Event> =
            NyseGenerator::new(NyseConfig::small(10, 5), &mut schema).collect();
        let server = StreamServer::spawn(events).unwrap();
        let mut source = TcpSource::connect(server.addr()).unwrap();
        while source.next().is_some() {}
        assert!(source.error().is_none());
        server.join();
    }
}
