//! Synthetic NYSE-like stock-quote stream.
//!
//! Models the paper's NYSE dataset: `symbols` stocks quoted once per minute
//! each, interleaved in a fixed per-minute round-robin (real consolidated
//! feeds interleave symbols within the minute; the fixed order keeps the
//! stream deterministic for a given seed). Prices follow independent
//! geometric random walks. The first `leaders` symbols are blue chips whose
//! quotes carry `leading = true` (query Q1's MLE events).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spectre_events::{Event, Schema, SymbolId, Value};
use spectre_query::queries::StockVocab;

/// Configuration of the [`NyseGenerator`].
#[derive(Debug, Clone)]
pub struct NyseConfig {
    /// Number of distinct stock symbols (paper: ≈3000).
    pub symbols: usize,
    /// Number of leading blue-chip symbols (paper: 16); must be ≤ `symbols`.
    pub leaders: usize,
    /// Total number of quote events to generate.
    pub events: usize,
    /// RNG seed; equal seeds produce identical streams.
    pub seed: u64,
    /// Per-step volatility of the log-price random walk.
    pub volatility: f64,
    /// Per-step drift of the log-price random walk.
    pub drift: f64,
    /// Initial price band `[low, high]` sampled uniformly per symbol.
    pub initial_price: (f64, f64),
}

impl Default for NyseConfig {
    fn default() -> Self {
        NyseConfig {
            symbols: 3000,
            leaders: 16,
            events: 100_000,
            seed: 42,
            volatility: 0.01,
            drift: 0.0,
            initial_price: (20.0, 200.0),
        }
    }
}

impl NyseConfig {
    /// A small configuration for unit tests.
    pub fn small(events: usize, seed: u64) -> Self {
        NyseConfig {
            symbols: 50,
            leaders: 4,
            events,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic generator of the synthetic NYSE stream.
///
/// Implements `Iterator<Item = Event>`; events carry dense sequence numbers
/// starting at 0 and timestamps advancing one minute per symbol round.
///
/// # Example
///
/// ```
/// use spectre_events::Schema;
/// use spectre_datasets::{NyseConfig, NyseGenerator};
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     NyseGenerator::new(NyseConfig::small(100, 7), &mut schema).collect();
/// assert_eq!(events.len(), 100);
/// assert!(events.windows(2).all(|w| w[0].seq() + 1 == w[1].seq()));
/// ```
#[derive(Debug)]
pub struct NyseGenerator {
    config: NyseConfig,
    vocab: StockVocab,
    symbols: Vec<SymbolId>,
    prices: Vec<f64>,
    rng: SmallRng,
    produced: usize,
    minute: u64,
    cursor: usize,
}

impl NyseGenerator {
    /// Creates a generator, interning the stock vocabulary and symbol names
    /// into `schema`.
    ///
    /// # Panics
    ///
    /// Panics if `leaders > symbols` or `symbols == 0`.
    pub fn new(config: NyseConfig, schema: &mut Schema) -> Self {
        assert!(config.symbols > 0, "need at least one symbol");
        assert!(
            config.leaders <= config.symbols,
            "leaders must not exceed symbols"
        );
        let vocab = StockVocab::install(schema);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let symbols: Vec<SymbolId> = (0..config.symbols)
            .map(|i| schema.symbol(&format!("NYSE{i:04}")))
            .collect();
        let (lo, hi) = config.initial_price;
        let prices: Vec<f64> = (0..config.symbols).map(|_| rng.gen_range(lo..hi)).collect();
        NyseGenerator {
            config,
            vocab,
            symbols,
            prices,
            rng,
            produced: 0,
            minute: 0,
            cursor: 0,
        }
    }

    /// The stock vocabulary used by the generated events.
    pub fn vocab(&self) -> StockVocab {
        self.vocab
    }

    /// The interned symbol ids, leaders first.
    pub fn symbols(&self) -> &[SymbolId] {
        &self.symbols
    }
}

impl Iterator for NyseGenerator {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.produced >= self.config.events {
            return None;
        }
        let sym_idx = self.cursor;
        let open = self.prices[sym_idx];
        let z: f64 = self.rng.gen_range(-1.0..1.0);
        let close = open * (self.config.drift + self.config.volatility * z).exp();
        self.prices[sym_idx] = close;

        let seq = self.produced as u64;
        // One quote per minute per symbol: all quotes of one round share the
        // minute, spread evenly inside it.
        let intra = (60_000 * sym_idx as u64) / self.config.symbols as u64;
        let ts = self.minute * 60_000 + intra;
        let ev = Event::builder(self.vocab.quote)
            .seq(seq)
            .ts(ts)
            .attr(self.vocab.symbol, Value::Symbol(self.symbols[sym_idx]))
            .attr(self.vocab.open_price, open)
            .attr(self.vocab.close_price, close)
            .attr(self.vocab.leading, sym_idx < self.config.leaders)
            .build();

        self.produced += 1;
        self.cursor += 1;
        if self.cursor == self.config.symbols {
            self.cursor = 0;
            self.minute += 1;
        }
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.events - self.produced;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut s1 = Schema::new();
        let mut s2 = Schema::new();
        let a: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 9), &mut s1).collect();
        let b: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 9), &mut s2).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s = Schema::new();
        let a: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 1), &mut s).collect();
        let b: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 2), &mut s).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn leading_flag_marks_first_symbols() {
        let mut schema = Schema::new();
        let config = NyseConfig::small(100, 3);
        let leaders = config.leaders;
        let symbols = config.symbols;
        let gen = NyseGenerator::new(config, &mut schema);
        let vocab = gen.vocab();
        for (i, ev) in gen.enumerate() {
            let is_leader = (i % symbols) < leaders;
            assert_eq!(
                ev.get(vocab.leading).unwrap(),
                &Value::Bool(is_leader),
                "event {i}"
            );
        }
    }

    #[test]
    fn timestamps_are_nondecreasing_and_minute_resolved() {
        let mut schema = Schema::new();
        let gen = NyseGenerator::new(NyseConfig::small(200, 5), &mut schema);
        let events: Vec<_> = gen.collect();
        assert!(events.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // 50 symbols per minute round → event 50 starts minute 1
        assert!(events[50].ts() >= 60_000);
        assert!(events[49].ts() < 60_000);
    }

    #[test]
    fn prices_form_a_walk_per_symbol() {
        let mut schema = Schema::new();
        let gen = NyseGenerator::new(NyseConfig::small(150, 5), &mut schema);
        let vocab = gen.vocab();
        let events: Vec<_> = gen.collect();
        // symbol 0 quotes at indices 0, 50, 100: open of the next equals
        // close of the previous.
        let closes: Vec<f64> = [0usize, 50, 100]
            .iter()
            .map(|&i| events[i].f64(vocab.close_price).unwrap())
            .collect();
        let opens: Vec<f64> = [50usize, 100]
            .iter()
            .map(|&i| events[i].f64(vocab.open_price).unwrap())
            .collect();
        assert_eq!(opens[0], closes[0]);
        assert_eq!(opens[1], closes[1]);
        assert!(events
            .iter()
            .all(|e| e.f64(vocab.close_price).unwrap() > 0.0));
    }

    #[test]
    #[should_panic(expected = "leaders must not exceed symbols")]
    fn rejects_bad_leader_count() {
        let mut schema = Schema::new();
        let config = NyseConfig {
            symbols: 4,
            leaders: 5,
            ..NyseConfig::default()
        };
        let _ = NyseGenerator::new(config, &mut schema);
    }
}
