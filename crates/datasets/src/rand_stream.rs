//! The paper's RAND dataset: a random sequence of quote events over a set of
//! equally likely stock symbols (paper §4.1: 3 M events, 300 symbols).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spectre_events::{Event, Schema, SymbolId, Value};
use spectre_query::queries::StockVocab;

/// Configuration of the [`RandGenerator`].
#[derive(Debug, Clone)]
pub struct RandConfig {
    /// Number of distinct stock symbols (paper: 300).
    pub symbols: usize,
    /// Number of leading symbols (flagged `leading = true`).
    pub leaders: usize,
    /// Total number of events.
    pub events: usize,
    /// RNG seed.
    pub seed: u64,
    /// Price band `[low, high]`; open/close are sampled per event.
    pub price: (f64, f64),
    /// Timestamp increment between consecutive events (ms).
    pub tick_ms: u64,
}

impl Default for RandConfig {
    fn default() -> Self {
        RandConfig {
            symbols: 300,
            leaders: 16,
            events: 3_000_000,
            seed: 42,
            price: (10.0, 100.0),
            tick_ms: 20,
        }
    }
}

impl RandConfig {
    /// A small configuration for unit tests.
    pub fn small(events: usize, seed: u64) -> Self {
        RandConfig {
            symbols: 20,
            leaders: 2,
            events,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic generator of the RAND stream: each event draws its symbol
/// uniformly; open and close prices are independent uniform draws, so every
/// quote is rising with probability ½.
///
/// # Example
///
/// ```
/// use spectre_events::Schema;
/// use spectre_datasets::{RandConfig, RandGenerator};
///
/// let mut schema = Schema::new();
/// let events: Vec<_> =
///     RandGenerator::new(RandConfig::small(50, 1), &mut schema).collect();
/// assert_eq!(events.len(), 50);
/// ```
#[derive(Debug)]
pub struct RandGenerator {
    config: RandConfig,
    vocab: StockVocab,
    symbols: Vec<SymbolId>,
    rng: SmallRng,
    produced: usize,
}

impl RandGenerator {
    /// Creates a generator, interning vocabulary and symbols into `schema`.
    ///
    /// # Panics
    ///
    /// Panics if `symbols == 0` or `leaders > symbols`.
    pub fn new(config: RandConfig, schema: &mut Schema) -> Self {
        assert!(config.symbols > 0, "need at least one symbol");
        assert!(
            config.leaders <= config.symbols,
            "leaders must not exceed symbols"
        );
        let vocab = StockVocab::install(schema);
        let symbols: Vec<SymbolId> = (0..config.symbols)
            .map(|i| schema.symbol(&format!("RND{i:03}")))
            .collect();
        let rng = SmallRng::seed_from_u64(config.seed);
        RandGenerator {
            config,
            vocab,
            symbols,
            rng,
            produced: 0,
        }
    }

    /// The stock vocabulary used by the generated events.
    pub fn vocab(&self) -> StockVocab {
        self.vocab
    }

    /// The interned symbol ids, leaders first.
    pub fn symbols(&self) -> &[SymbolId] {
        &self.symbols
    }
}

impl Iterator for RandGenerator {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.produced >= self.config.events {
            return None;
        }
        let sym_idx = self.rng.gen_range(0..self.config.symbols);
        let (lo, hi) = self.config.price;
        let open: f64 = self.rng.gen_range(lo..hi);
        let close: f64 = self.rng.gen_range(lo..hi);
        let seq = self.produced as u64;
        let ev = Event::builder(self.vocab.quote)
            .seq(seq)
            .ts(seq * self.config.tick_ms)
            .attr(self.vocab.symbol, Value::Symbol(self.symbols[sym_idx]))
            .attr(self.vocab.open_price, open)
            .attr(self.vocab.close_price, close)
            .attr(self.vocab.leading, sym_idx < self.config.leaders)
            .build();
        self.produced += 1;
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.events - self.produced;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut s1 = Schema::new();
        let mut s2 = Schema::new();
        let a: Vec<_> = RandGenerator::new(RandConfig::small(300, 4), &mut s1).collect();
        let b: Vec<_> = RandGenerator::new(RandConfig::small(300, 4), &mut s2).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn symbols_roughly_uniform() {
        let mut schema = Schema::new();
        let gen = RandGenerator::new(RandConfig::small(20_000, 11), &mut schema);
        let vocab = gen.vocab();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for ev in gen {
            *counts
                .entry(ev.symbol(vocab.symbol).unwrap().as_u32())
                .or_default() += 1;
        }
        assert_eq!(counts.len(), 20);
        let expected = 20_000 / 20;
        for (&sym, &n) in &counts {
            assert!(
                n > expected / 2 && n < expected * 2,
                "symbol {sym} count {n} far from uniform"
            );
        }
    }

    #[test]
    fn seq_and_ts_are_dense() {
        let mut schema = Schema::new();
        let cfg = RandConfig::small(100, 2);
        let tick = cfg.tick_ms;
        let events: Vec<_> = RandGenerator::new(cfg, &mut schema).collect();
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq(), i as u64);
            assert_eq!(ev.ts(), i as u64 * tick);
        }
    }

    #[test]
    fn rising_probability_near_half() {
        let mut schema = Schema::new();
        let gen = RandGenerator::new(RandConfig::small(10_000, 6), &mut schema);
        let vocab = gen.vocab();
        let rising = gen
            .filter(|e| e.f64(vocab.close_price) > e.f64(vocab.open_price))
            .count();
        assert!((4_000..6_000).contains(&rising), "rising = {rising}");
    }
}
