//! Replay source feeding a recorded stream to an engine.
//!
//! The paper's client program reads events from a source file and sends them
//! to SPECTRE over TCP "as fast as possible" (§4.1, §4.2). [`ReplaySource`]
//! reproduces that path in-process: events are framed with the binary codec
//! ([`spectre_events::codec`]), buffered in chunks, and decoded on the
//! consuming side — so the serialization cost is paid exactly as in the
//! paper's deployment, without a socket.

use bytes::BytesMut;
use spectre_events::codec::{self, Decoder};
use spectre_events::Event;

/// Chunked codec replay of an event stream.
///
/// `ReplaySource` is an `Iterator<Item = Event>`; construction with
/// [`ReplaySource::direct`] skips the codec for zero-overhead replay.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema};
/// use spectre_datasets::ReplaySource;
///
/// let mut schema = Schema::new();
/// let t = schema.event_type("E");
/// let events: Vec<_> = (0..10).map(|i| Event::builder(t).seq(i).build()).collect();
/// let replayed: Vec<_> = ReplaySource::framed(events.clone(), 64).collect();
/// assert_eq!(replayed, events);
/// ```
#[derive(Debug)]
pub struct ReplaySource {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Direct(std::vec::IntoIter<Event>),
    Framed {
        events: std::vec::IntoIter<Event>,
        chunk: usize,
        buf: BytesMut,
        decoder: Decoder,
    },
}

impl ReplaySource {
    /// Replays events directly, without serialization.
    pub fn direct(events: Vec<Event>) -> Self {
        ReplaySource {
            inner: Inner::Direct(events.into_iter()),
        }
    }

    /// Replays events through the binary codec, encoding `chunk` events at a
    /// time into a frame buffer and decoding them on pull — the shape of the
    /// paper's TCP ingestion path.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn framed(events: Vec<Event>, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        ReplaySource {
            inner: Inner::Framed {
                events: events.into_iter(),
                chunk,
                buf: BytesMut::new(),
                decoder: Decoder::new(),
            },
        }
    }
}

impl Iterator for ReplaySource {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        match &mut self.inner {
            Inner::Direct(it) => it.next(),
            Inner::Framed {
                events,
                chunk,
                buf,
                decoder,
            } => {
                loop {
                    match decoder.next_event() {
                        Ok(Some(ev)) => return Some(ev),
                        Ok(None) => {
                            // Refill: encode the next chunk of events.
                            buf.clear();
                            let mut any = false;
                            for _ in 0..*chunk {
                                match events.next() {
                                    Some(ev) => {
                                        codec::encode(&ev, buf);
                                        any = true;
                                    }
                                    None => break,
                                }
                            }
                            if !any {
                                return None;
                            }
                            decoder.extend(buf);
                        }
                        Err(e) => unreachable!("self-encoded frames must decode: {e}"),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_stream::{RandConfig, RandGenerator};
    use spectre_events::Schema;

    #[test]
    fn framed_replay_is_lossless() {
        let mut schema = Schema::new();
        let events: Vec<_> = RandGenerator::new(RandConfig::small(500, 3), &mut schema).collect();
        for chunk in [1usize, 7, 64, 1000] {
            let replayed: Vec<_> = ReplaySource::framed(events.clone(), chunk).collect();
            assert_eq!(replayed, events, "chunk {chunk}");
        }
    }

    #[test]
    fn direct_replay_is_identity() {
        let mut schema = Schema::new();
        let events: Vec<_> = RandGenerator::new(RandConfig::small(100, 3), &mut schema).collect();
        let replayed: Vec<_> = ReplaySource::direct(events.clone()).collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn empty_stream() {
        assert_eq!(ReplaySource::direct(vec![]).count(), 0);
        assert_eq!(ReplaySource::framed(vec![], 8).count(), 0);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let _ = ReplaySource::framed(vec![], 0);
    }
}
