//! Length-prefixed binary framing for events.
//!
//! The paper's deployment feeds SPECTRE from a client program over TCP
//! (paper §4.1). This module reproduces the serialization path — a compact
//! binary frame per event with a `u32` length prefix — without requiring a
//! socket: any `bytes` buffer, file or in-memory pipe can carry frames.
//!
//! Frame layout (little endian):
//!
//! ```text
//! u32 frame_len   (bytes after this field)
//! u64 seq
//! u64 ts
//! u16 event_type
//! u16 attr_count
//! per attribute:
//!   u16 key
//!   u8  tag        (0=F64, 1=I64, 2=Bool, 3=Symbol, 4=Str)
//!   payload        (8 bytes for F64/I64, 1 for Bool, 4 for Symbol,
//!                   u32 len + bytes for Str)
//! ```
//!
//! A second frame kind carries **watermark punctuations** for out-of-order
//! streams: the length field holds the sentinel [`WATERMARK_MAGIC`]
//! (`u32::MAX`, unreachable as a real length since frames are capped at
//! [`MAX_FRAME_LEN`]), followed by the `u64` stream timestamp — a fixed
//! 12-byte frame. [`Decoder::next_item`] yields both kinds as
//! [`StreamItem`]s; [`Decoder::next_event`] transparently skips
//! watermarks, so event-only consumers are unaffected by punctuated
//! streams.
//!
//! The server front-end (`spectre-server`) adds four more length-sentinel
//! frames, split by direction. Client → server: [`HELLO_MAGIC`] declares
//! the connection's tenant (`u32 magic | u64 tenant`) and [`BYE_MAGIC`]
//! (bare `u32 magic`) marks a clean end of the client's stream, letting the
//! server distinguish a finished client from one that died mid-slice.
//! Server → client: [`CREDIT_MAGIC`] grants the client `n` more event
//! frames (`u32 magic | u64 n` — the back-pressure window) and
//! [`THROTTLE_MAGIC`] advises a pause (`u32 magic | u64 nanoseconds`, the
//! rate limiter's signal). [`Decoder::next_client_frame`] /
//! [`Decoder::next_server_frame`] decode each direction; a frame of the
//! wrong direction is [`DecodeError::UnexpectedFrame`], never silently
//! skipped.

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::schema::{AttrKey, EventType, SymbolId};
use crate::value::Value;
use crate::Event;

/// Maximum accepted frame length; guards against corrupt length prefixes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Length-field sentinel marking a watermark frame (`u32 magic | u64 ts`).
/// Safely distinguishable from a real length: event frames are capped at
/// [`MAX_FRAME_LEN`], far below it.
pub const WATERMARK_MAGIC: u32 = u32::MAX;

/// Length-field sentinel of a server → client **credit** frame
/// (`u32 magic | u64 n`): the server grants the client permission to send
/// `n` more event frames. See the module docs for the direction split.
pub const CREDIT_MAGIC: u32 = u32::MAX - 1;

/// Length-field sentinel of a server → client **throttle** frame
/// (`u32 magic | u64 nanos`): the rate limiter advises the client to pause
/// for the given number of nanoseconds before sending more.
pub const THROTTLE_MAGIC: u32 = u32::MAX - 2;

/// Length-field sentinel of a client → server **hello** frame
/// (`u32 magic | u64 tenant`): declares the tenant the connection's events
/// belong to. Optional; connections without one land on the default tenant.
pub const HELLO_MAGIC: u32 = u32::MAX - 3;

/// Length-field sentinel of a client → server **bye** frame (bare `u32`
/// magic, no payload): a clean end-of-stream marker. A connection that
/// closes without one disconnected abnormally.
pub const BYE_MAGIC: u32 = u32::MAX - 4;

/// Smallest length-field value reserved as a frame-kind sentinel; length
/// prefixes at or above it are never event-frame lengths.
const SENTINEL_FLOOR: u32 = BYE_MAGIC;

/// One decoded unit of a framed stream: an event, or a watermark
/// punctuation asserting that no later event will carry a timestamp below
/// the given stream timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A regular event frame.
    Event(Event),
    /// A watermark punctuation with its stream timestamp.
    Watermark(u64),
}

/// One frame of the client → server direction: stream payload (events and
/// watermarks), a tenant declaration, or a clean end-of-stream marker.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// An event or watermark frame — the stream payload.
    Item(StreamItem),
    /// A [`HELLO_MAGIC`] tenant declaration.
    Hello(u64),
    /// A [`BYE_MAGIC`] clean end-of-stream marker.
    Bye,
}

/// One frame of the server → client direction: flow-control feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFrame {
    /// A [`CREDIT_MAGIC`] grant of `n` more event frames.
    Credit(u64),
    /// A [`THROTTLE_MAGIC`] advisory pause, in nanoseconds.
    Throttle(u64),
}

/// Error produced when decoding a malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame declared a length larger than [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The buffer ended in the middle of a declared frame.
    Truncated,
    /// An unknown value tag was encountered.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A sentinel frame that does not belong in the direction being
    /// decoded (e.g. a server → client credit frame showing up on the
    /// ingestion path). The payload is the offending length-field value.
    UnexpectedFrame(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds maximum"),
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown value tag {t}"),
            DecodeError::BadUtf8 => write!(f, "string payload was not valid utf-8"),
            DecodeError::UnexpectedFrame(m) => {
                write!(f, "sentinel frame {m:#x} not valid in this direction")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends one encoded event frame to `out`.
pub fn encode(event: &Event, out: &mut BytesMut) {
    let start = out.len();
    out.put_u32_le(0); // patched below
    out.put_u64_le(event.seq());
    out.put_u64_le(event.ts());
    out.put_u16_le(event.event_type().as_u32() as u16);
    out.put_u16_le(event.attr_count() as u16);
    for (key, value) in event.attrs() {
        out.put_u16_le(key.as_u32() as u16);
        match value {
            Value::F64(v) => {
                out.put_u8(0);
                out.put_f64_le(*v);
            }
            Value::I64(v) => {
                out.put_u8(1);
                out.put_i64_le(*v);
            }
            Value::Bool(v) => {
                out.put_u8(2);
                out.put_u8(u8::from(*v));
            }
            Value::Symbol(v) => {
                out.put_u8(3);
                out.put_u32_le(v.as_u32());
            }
            Value::Str(v) => {
                out.put_u8(4);
                out.put_u32_le(v.len() as u32);
                out.put_slice(v.as_bytes());
            }
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes a batch of events into a single freshly allocated buffer.
pub fn encode_all<'a>(events: impl IntoIterator<Item = &'a Event>) -> Bytes {
    let mut buf = BytesMut::new();
    for ev in events {
        encode(ev, &mut buf);
    }
    buf.freeze()
}

/// Appends one encoded watermark frame (see [`WATERMARK_MAGIC`]) to `out`.
pub fn encode_watermark(stream_ts: u64, out: &mut BytesMut) {
    out.put_u32_le(WATERMARK_MAGIC);
    out.put_u64_le(stream_ts);
}

/// Appends one encoded credit frame (see [`CREDIT_MAGIC`]) to `out`.
pub fn encode_credit(events: u64, out: &mut BytesMut) {
    out.put_u32_le(CREDIT_MAGIC);
    out.put_u64_le(events);
}

/// Appends one encoded throttle frame (see [`THROTTLE_MAGIC`]) to `out`.
pub fn encode_throttle(pause_nanos: u64, out: &mut BytesMut) {
    out.put_u32_le(THROTTLE_MAGIC);
    out.put_u64_le(pause_nanos);
}

/// Appends one encoded hello frame (see [`HELLO_MAGIC`]) to `out`.
pub fn encode_hello(tenant: u64, out: &mut BytesMut) {
    out.put_u32_le(HELLO_MAGIC);
    out.put_u64_le(tenant);
}

/// Appends one encoded bye frame (see [`BYE_MAGIC`]) to `out`.
pub fn encode_bye(out: &mut BytesMut) {
    out.put_u32_le(BYE_MAGIC);
}

/// Encodes a batch of stream items — events and watermarks — into a single
/// freshly allocated buffer.
pub fn encode_items<'a>(items: impl IntoIterator<Item = &'a StreamItem>) -> Bytes {
    let mut buf = BytesMut::new();
    for item in items {
        match item {
            StreamItem::Event(ev) => encode(ev, &mut buf),
            StreamItem::Watermark(ts) => encode_watermark(*ts, &mut buf),
        }
    }
    buf.freeze()
}

/// Incremental frame decoder.
///
/// Feed bytes with [`Decoder::extend`] and pull complete events with
/// [`Decoder::next_event`]; partial frames are buffered until completed, so
/// the decoder works over arbitrarily fragmented input.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not yet consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete event, transparently skipping
    /// watermark frames — the event-only view of a possibly punctuated
    /// stream. Use [`next_item`](Self::next_item) to observe watermarks.
    ///
    /// Returns `Ok(None)` if the buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffered bytes are malformed; the
    /// decoder should be discarded afterwards.
    pub fn next_event(&mut self) -> Result<Option<Event>, DecodeError> {
        loop {
            match self.next_item()? {
                Some(StreamItem::Event(ev)) => return Ok(Some(ev)),
                Some(StreamItem::Watermark(_)) => continue,
                None => return Ok(None),
            }
        }
    }

    /// Attempts to decode the next complete stream item — an event frame
    /// or a watermark punctuation. Direction-specific sentinel frames
    /// (credit, throttle, hello, bye) are
    /// [`DecodeError::UnexpectedFrame`]: this is the engine-side stream
    /// payload view, which those frames never belong to.
    ///
    /// Returns `Ok(None)` if the buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffered bytes are malformed; the
    /// decoder should be discarded afterwards.
    pub fn next_item(&mut self) -> Result<Option<StreamItem>, DecodeError> {
        match self.next_raw()? {
            None => Ok(None),
            Some(RawFrame::Event(ev)) => Ok(Some(StreamItem::Event(ev))),
            Some(RawFrame::Watermark(ts)) => Ok(Some(StreamItem::Watermark(ts))),
            Some(RawFrame::Credit(_)) => Err(DecodeError::UnexpectedFrame(CREDIT_MAGIC)),
            Some(RawFrame::Throttle(_)) => Err(DecodeError::UnexpectedFrame(THROTTLE_MAGIC)),
            Some(RawFrame::Hello(_)) => Err(DecodeError::UnexpectedFrame(HELLO_MAGIC)),
            Some(RawFrame::Bye) => Err(DecodeError::UnexpectedFrame(BYE_MAGIC)),
        }
    }

    /// Attempts to decode the next complete client → server frame — a
    /// stream item, a hello tenant declaration, or a bye end-of-stream
    /// marker. Server → client feedback frames (credit, throttle) are
    /// [`DecodeError::UnexpectedFrame`]. This is the view a server's
    /// per-connection read loop decodes.
    ///
    /// Returns `Ok(None)` if the buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffered bytes are malformed; the
    /// decoder should be discarded afterwards.
    pub fn next_client_frame(&mut self) -> Result<Option<ClientFrame>, DecodeError> {
        match self.next_raw()? {
            None => Ok(None),
            Some(RawFrame::Event(ev)) => Ok(Some(ClientFrame::Item(StreamItem::Event(ev)))),
            Some(RawFrame::Watermark(ts)) => Ok(Some(ClientFrame::Item(StreamItem::Watermark(ts)))),
            Some(RawFrame::Hello(tenant)) => Ok(Some(ClientFrame::Hello(tenant))),
            Some(RawFrame::Bye) => Ok(Some(ClientFrame::Bye)),
            Some(RawFrame::Credit(_)) => Err(DecodeError::UnexpectedFrame(CREDIT_MAGIC)),
            Some(RawFrame::Throttle(_)) => Err(DecodeError::UnexpectedFrame(THROTTLE_MAGIC)),
        }
    }

    /// Attempts to decode the next complete server → client feedback frame
    /// — a credit grant or a throttle advisory. Anything else (including
    /// event frames) is [`DecodeError::UnexpectedFrame`]. This is the view
    /// a client decodes on its receive side.
    ///
    /// Returns `Ok(None)` if the buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffered bytes are malformed; the
    /// decoder should be discarded afterwards.
    pub fn next_server_frame(&mut self) -> Result<Option<ServerFrame>, DecodeError> {
        match self.next_raw()? {
            None => Ok(None),
            Some(RawFrame::Credit(n)) => Ok(Some(ServerFrame::Credit(n))),
            Some(RawFrame::Throttle(nanos)) => Ok(Some(ServerFrame::Throttle(nanos))),
            Some(RawFrame::Event(_)) => Err(DecodeError::UnexpectedFrame(0)),
            Some(RawFrame::Watermark(_)) => Err(DecodeError::UnexpectedFrame(WATERMARK_MAGIC)),
            Some(RawFrame::Hello(_)) => Err(DecodeError::UnexpectedFrame(HELLO_MAGIC)),
            Some(RawFrame::Bye) => Err(DecodeError::UnexpectedFrame(BYE_MAGIC)),
        }
    }

    /// Decodes the next complete frame of any kind; the direction-specific
    /// views above map the raw kinds to their surface.
    fn next_raw(&mut self) -> Result<Option<RawFrame>, DecodeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes"));
        if len >= SENTINEL_FLOOR {
            if len == BYE_MAGIC {
                self.buf.advance(4);
                return Ok(Some(RawFrame::Bye));
            }
            // The other sentinels all carry one u64 payload.
            if self.buf.len() < 4 + 8 {
                return Ok(None);
            }
            self.buf.advance(4);
            let v = self.buf.get_u64_le();
            return Ok(Some(match len {
                WATERMARK_MAGIC => RawFrame::Watermark(v),
                CREDIT_MAGIC => RawFrame::Credit(v),
                THROTTLE_MAGIC => RawFrame::Throttle(v),
                _ => RawFrame::Hello(v),
            }));
        }
        let len = len as usize;
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let mut frame = self.buf.split_to(len);
        decode_frame(&mut frame).map(|ev| Some(RawFrame::Event(ev)))
    }
}

/// Internal decoded frame of any kind; the public decoder methods map this
/// to the direction-specific surfaces.
enum RawFrame {
    Event(Event),
    Watermark(u64),
    Credit(u64),
    Throttle(u64),
    Hello(u64),
    Bye,
}

fn decode_frame(buf: &mut BytesMut) -> Result<Event, DecodeError> {
    fn need(buf: &BytesMut, n: usize) -> Result<(), DecodeError> {
        if buf.len() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }
    need(buf, 8 + 8 + 2 + 2)?;
    let seq = buf.get_u64_le();
    let ts = buf.get_u64_le();
    let etype = EventType::new(buf.get_u16_le());
    let attr_count = buf.get_u16_le();
    let mut builder = Event::builder(etype).seq(seq).ts(ts);
    for _ in 0..attr_count {
        need(buf, 3)?;
        let key = AttrKey::new(buf.get_u16_le());
        let tag = buf.get_u8();
        let value = match tag {
            0 => {
                need(buf, 8)?;
                Value::F64(buf.get_f64_le())
            }
            1 => {
                need(buf, 8)?;
                Value::I64(buf.get_i64_le())
            }
            2 => {
                need(buf, 1)?;
                Value::Bool(buf.get_u8() != 0)
            }
            3 => {
                need(buf, 4)?;
                Value::Symbol(SymbolId::new(buf.get_u32_le()))
            }
            4 => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len)?;
                let raw = buf.split_to(len);
                let s = std::str::from_utf8(&raw).map_err(|_| DecodeError::BadUtf8)?;
                Value::Str(Arc::from(s))
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        builder = builder.attr(key, value);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> Event {
        Event::builder(EventType::new(3))
            .seq(seq)
            .ts(seq * 10)
            .attr(AttrKey::new(0), Value::F64(1.25 * seq as f64))
            .attr(AttrKey::new(1), Value::Symbol(SymbolId::new(7)))
            .attr(AttrKey::new(2), Value::from("hello"))
            .attr(AttrKey::new(3), Value::Bool(true))
            .attr(AttrKey::new(4), Value::I64(-9))
            .build()
    }

    #[test]
    fn round_trip_single() {
        let ev = sample(1);
        let bytes = encode_all([&ev]);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_event().unwrap(), Some(ev));
        assert_eq!(dec.next_event().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn round_trip_many() {
        let events: Vec<_> = (0..100).map(sample).collect();
        let bytes = encode_all(&events);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        for ev in &events {
            assert_eq!(dec.next_event().unwrap().as_ref(), Some(ev));
        }
        assert_eq!(dec.next_event().unwrap(), None);
    }

    #[test]
    fn fragmented_input() {
        let events: Vec<_> = (0..10).map(sample).collect();
        let bytes = encode_all(&events);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for chunk in bytes.chunks(3) {
            dec.extend(chunk);
            while let Some(ev) = dec.next_event().unwrap() {
                out.push(ev);
            }
        }
        assert_eq!(out, events);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        // u32::MAX is the watermark sentinel, so the smallest invalid
        // length is one past the cap.
        let bad = MAX_FRAME_LEN as u32 + 1;
        let mut dec = Decoder::new();
        dec.extend(&bad.to_le_bytes());
        assert_eq!(
            dec.next_event(),
            Err(DecodeError::FrameTooLarge(bad as usize))
        );
    }

    #[test]
    fn watermark_frames_round_trip() {
        let items = vec![
            StreamItem::Event(sample(1)),
            StreamItem::Watermark(10),
            StreamItem::Event(sample(2)),
            StreamItem::Watermark(u64::MAX),
        ];
        let bytes = encode_items(&items);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        let mut out = Vec::new();
        while let Some(item) = dec.next_item().unwrap() {
            out.push(item);
        }
        assert_eq!(out, items);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn next_event_skips_watermarks() {
        let items = vec![
            StreamItem::Watermark(5),
            StreamItem::Event(sample(1)),
            StreamItem::Watermark(20),
            StreamItem::Watermark(30),
            StreamItem::Event(sample(2)),
            StreamItem::Watermark(40),
        ];
        let mut dec = Decoder::new();
        dec.extend(&encode_items(&items));
        assert_eq!(dec.next_event().unwrap(), Some(sample(1)));
        assert_eq!(dec.next_event().unwrap(), Some(sample(2)));
        assert_eq!(dec.next_event().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn fragmented_watermark_frames_decode() {
        let items = vec![
            StreamItem::Watermark(7),
            StreamItem::Event(sample(3)),
            StreamItem::Watermark(99),
        ];
        let bytes = encode_items(&items);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for chunk in bytes.chunks(1) {
            dec.extend(chunk);
            while let Some(item) = dec.next_item().unwrap() {
                out.push(item);
            }
        }
        assert_eq!(out, items);
    }

    #[test]
    fn bad_tag_is_rejected() {
        let ev = sample(1);
        let mut buf = BytesMut::new();
        encode(&ev, &mut buf);
        // Corrupt the first attribute's tag byte: 4 len + 8 seq + 8 ts + 2 ty
        // + 2 count + 2 key = offset 26.
        buf[26] = 99;
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(dec.next_event(), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn empty_event_round_trips() {
        let ev = Event::builder(EventType::new(0)).seq(5).ts(6).build();
        let bytes = encode_all([&ev]);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_event().unwrap(), Some(ev));
    }

    #[test]
    fn client_frames_round_trip() {
        let mut buf = BytesMut::new();
        encode_hello(7, &mut buf);
        encode(&sample(1), &mut buf);
        encode_watermark(10, &mut buf);
        encode_bye(&mut buf);
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(
            dec.next_client_frame().unwrap(),
            Some(ClientFrame::Hello(7))
        );
        assert_eq!(
            dec.next_client_frame().unwrap(),
            Some(ClientFrame::Item(StreamItem::Event(sample(1))))
        );
        assert_eq!(
            dec.next_client_frame().unwrap(),
            Some(ClientFrame::Item(StreamItem::Watermark(10)))
        );
        assert_eq!(dec.next_client_frame().unwrap(), Some(ClientFrame::Bye));
        assert_eq!(dec.next_client_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn server_frames_round_trip_even_fragmented() {
        let mut buf = BytesMut::new();
        encode_credit(4096, &mut buf);
        encode_throttle(1_500_000, &mut buf);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for chunk in buf.chunks(1) {
            dec.extend(chunk);
            while let Some(f) = dec.next_server_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(
            out,
            vec![ServerFrame::Credit(4096), ServerFrame::Throttle(1_500_000)]
        );
    }

    #[test]
    fn feedback_frames_are_rejected_on_the_stream_view() {
        let mut buf = BytesMut::new();
        encode_credit(1, &mut buf);
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(
            dec.next_item(),
            Err(DecodeError::UnexpectedFrame(CREDIT_MAGIC))
        );
        let mut buf = BytesMut::new();
        encode_hello(2, &mut buf);
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(
            dec.next_item(),
            Err(DecodeError::UnexpectedFrame(HELLO_MAGIC))
        );
    }

    #[test]
    fn wrong_direction_frames_are_rejected() {
        // A credit frame on the client → server path …
        let mut buf = BytesMut::new();
        encode_credit(1, &mut buf);
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(
            dec.next_client_frame(),
            Err(DecodeError::UnexpectedFrame(CREDIT_MAGIC))
        );
        // … and an event frame on the server → client path.
        let mut buf = BytesMut::new();
        encode(&sample(1), &mut buf);
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(
            dec.next_server_frame(),
            Err(DecodeError::UnexpectedFrame(0))
        );
    }

    #[test]
    fn partial_sentinel_frames_wait_for_more_bytes() {
        let mut buf = BytesMut::new();
        encode_credit(99, &mut buf);
        let mut dec = Decoder::new();
        dec.extend(&buf[..7]); // magic + 3 of the 8 payload bytes
        assert_eq!(dec.next_server_frame().unwrap(), None);
        dec.extend(&buf[7..]);
        assert_eq!(
            dec.next_server_frame().unwrap(),
            Some(ServerFrame::Credit(99))
        );
    }
}
