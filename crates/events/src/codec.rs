//! Length-prefixed binary framing for events.
//!
//! The paper's deployment feeds SPECTRE from a client program over TCP
//! (paper §4.1). This module reproduces the serialization path — a compact
//! binary frame per event with a `u32` length prefix — without requiring a
//! socket: any `bytes` buffer, file or in-memory pipe can carry frames.
//!
//! Frame layout (little endian):
//!
//! ```text
//! u32 frame_len   (bytes after this field)
//! u64 seq
//! u64 ts
//! u16 event_type
//! u16 attr_count
//! per attribute:
//!   u16 key
//!   u8  tag        (0=F64, 1=I64, 2=Bool, 3=Symbol, 4=Str)
//!   payload        (8 bytes for F64/I64, 1 for Bool, 4 for Symbol,
//!                   u32 len + bytes for Str)
//! ```
//!
//! A second frame kind carries **watermark punctuations** for out-of-order
//! streams: the length field holds the sentinel [`WATERMARK_MAGIC`]
//! (`u32::MAX`, unreachable as a real length since frames are capped at
//! [`MAX_FRAME_LEN`]), followed by the `u64` stream timestamp — a fixed
//! 12-byte frame. [`Decoder::next_item`] yields both kinds as
//! [`StreamItem`]s; [`Decoder::next_event`] transparently skips
//! watermarks, so event-only consumers are unaffected by punctuated
//! streams.

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::schema::{AttrKey, EventType, SymbolId};
use crate::value::Value;
use crate::Event;

/// Maximum accepted frame length; guards against corrupt length prefixes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Length-field sentinel marking a watermark frame (`u32 magic | u64 ts`).
/// Safely distinguishable from a real length: event frames are capped at
/// [`MAX_FRAME_LEN`], far below it.
pub const WATERMARK_MAGIC: u32 = u32::MAX;

/// One decoded unit of a framed stream: an event, or a watermark
/// punctuation asserting that no later event will carry a timestamp below
/// the given stream timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A regular event frame.
    Event(Event),
    /// A watermark punctuation with its stream timestamp.
    Watermark(u64),
}

/// Error produced when decoding a malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame declared a length larger than [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The buffer ended in the middle of a declared frame.
    Truncated,
    /// An unknown value tag was encountered.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds maximum"),
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown value tag {t}"),
            DecodeError::BadUtf8 => write!(f, "string payload was not valid utf-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends one encoded event frame to `out`.
pub fn encode(event: &Event, out: &mut BytesMut) {
    let start = out.len();
    out.put_u32_le(0); // patched below
    out.put_u64_le(event.seq());
    out.put_u64_le(event.ts());
    out.put_u16_le(event.event_type().as_u32() as u16);
    out.put_u16_le(event.attr_count() as u16);
    for (key, value) in event.attrs() {
        out.put_u16_le(key.as_u32() as u16);
        match value {
            Value::F64(v) => {
                out.put_u8(0);
                out.put_f64_le(*v);
            }
            Value::I64(v) => {
                out.put_u8(1);
                out.put_i64_le(*v);
            }
            Value::Bool(v) => {
                out.put_u8(2);
                out.put_u8(u8::from(*v));
            }
            Value::Symbol(v) => {
                out.put_u8(3);
                out.put_u32_le(v.as_u32());
            }
            Value::Str(v) => {
                out.put_u8(4);
                out.put_u32_le(v.len() as u32);
                out.put_slice(v.as_bytes());
            }
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes a batch of events into a single freshly allocated buffer.
pub fn encode_all<'a>(events: impl IntoIterator<Item = &'a Event>) -> Bytes {
    let mut buf = BytesMut::new();
    for ev in events {
        encode(ev, &mut buf);
    }
    buf.freeze()
}

/// Appends one encoded watermark frame (see [`WATERMARK_MAGIC`]) to `out`.
pub fn encode_watermark(stream_ts: u64, out: &mut BytesMut) {
    out.put_u32_le(WATERMARK_MAGIC);
    out.put_u64_le(stream_ts);
}

/// Encodes a batch of stream items — events and watermarks — into a single
/// freshly allocated buffer.
pub fn encode_items<'a>(items: impl IntoIterator<Item = &'a StreamItem>) -> Bytes {
    let mut buf = BytesMut::new();
    for item in items {
        match item {
            StreamItem::Event(ev) => encode(ev, &mut buf),
            StreamItem::Watermark(ts) => encode_watermark(*ts, &mut buf),
        }
    }
    buf.freeze()
}

/// Incremental frame decoder.
///
/// Feed bytes with [`Decoder::extend`] and pull complete events with
/// [`Decoder::next_event`]; partial frames are buffered until completed, so
/// the decoder works over arbitrarily fragmented input.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not yet consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete event, transparently skipping
    /// watermark frames — the event-only view of a possibly punctuated
    /// stream. Use [`next_item`](Self::next_item) to observe watermarks.
    ///
    /// Returns `Ok(None)` if the buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffered bytes are malformed; the
    /// decoder should be discarded afterwards.
    pub fn next_event(&mut self) -> Result<Option<Event>, DecodeError> {
        loop {
            match self.next_item()? {
                Some(StreamItem::Event(ev)) => return Ok(Some(ev)),
                Some(StreamItem::Watermark(_)) => continue,
                None => return Ok(None),
            }
        }
    }

    /// Attempts to decode the next complete stream item — an event frame
    /// or a watermark punctuation.
    ///
    /// Returns `Ok(None)` if the buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffered bytes are malformed; the
    /// decoder should be discarded afterwards.
    pub fn next_item(&mut self) -> Result<Option<StreamItem>, DecodeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes"));
        if len == WATERMARK_MAGIC {
            if self.buf.len() < 4 + 8 {
                return Ok(None);
            }
            self.buf.advance(4);
            let ts = self.buf.get_u64_le();
            return Ok(Some(StreamItem::Watermark(ts)));
        }
        let len = len as usize;
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let mut frame = self.buf.split_to(len);
        decode_frame(&mut frame).map(|ev| Some(StreamItem::Event(ev)))
    }
}

fn decode_frame(buf: &mut BytesMut) -> Result<Event, DecodeError> {
    fn need(buf: &BytesMut, n: usize) -> Result<(), DecodeError> {
        if buf.len() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }
    need(buf, 8 + 8 + 2 + 2)?;
    let seq = buf.get_u64_le();
    let ts = buf.get_u64_le();
    let etype = EventType::new(buf.get_u16_le());
    let attr_count = buf.get_u16_le();
    let mut builder = Event::builder(etype).seq(seq).ts(ts);
    for _ in 0..attr_count {
        need(buf, 3)?;
        let key = AttrKey::new(buf.get_u16_le());
        let tag = buf.get_u8();
        let value = match tag {
            0 => {
                need(buf, 8)?;
                Value::F64(buf.get_f64_le())
            }
            1 => {
                need(buf, 8)?;
                Value::I64(buf.get_i64_le())
            }
            2 => {
                need(buf, 1)?;
                Value::Bool(buf.get_u8() != 0)
            }
            3 => {
                need(buf, 4)?;
                Value::Symbol(SymbolId::new(buf.get_u32_le()))
            }
            4 => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len)?;
                let raw = buf.split_to(len);
                let s = std::str::from_utf8(&raw).map_err(|_| DecodeError::BadUtf8)?;
                Value::Str(Arc::from(s))
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        builder = builder.attr(key, value);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> Event {
        Event::builder(EventType::new(3))
            .seq(seq)
            .ts(seq * 10)
            .attr(AttrKey::new(0), Value::F64(1.25 * seq as f64))
            .attr(AttrKey::new(1), Value::Symbol(SymbolId::new(7)))
            .attr(AttrKey::new(2), Value::from("hello"))
            .attr(AttrKey::new(3), Value::Bool(true))
            .attr(AttrKey::new(4), Value::I64(-9))
            .build()
    }

    #[test]
    fn round_trip_single() {
        let ev = sample(1);
        let bytes = encode_all([&ev]);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_event().unwrap(), Some(ev));
        assert_eq!(dec.next_event().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn round_trip_many() {
        let events: Vec<_> = (0..100).map(sample).collect();
        let bytes = encode_all(&events);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        for ev in &events {
            assert_eq!(dec.next_event().unwrap().as_ref(), Some(ev));
        }
        assert_eq!(dec.next_event().unwrap(), None);
    }

    #[test]
    fn fragmented_input() {
        let events: Vec<_> = (0..10).map(sample).collect();
        let bytes = encode_all(&events);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for chunk in bytes.chunks(3) {
            dec.extend(chunk);
            while let Some(ev) = dec.next_event().unwrap() {
                out.push(ev);
            }
        }
        assert_eq!(out, events);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        // u32::MAX is the watermark sentinel, so the smallest invalid
        // length is one past the cap.
        let bad = MAX_FRAME_LEN as u32 + 1;
        let mut dec = Decoder::new();
        dec.extend(&bad.to_le_bytes());
        assert_eq!(
            dec.next_event(),
            Err(DecodeError::FrameTooLarge(bad as usize))
        );
    }

    #[test]
    fn watermark_frames_round_trip() {
        let items = vec![
            StreamItem::Event(sample(1)),
            StreamItem::Watermark(10),
            StreamItem::Event(sample(2)),
            StreamItem::Watermark(u64::MAX),
        ];
        let bytes = encode_items(&items);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        let mut out = Vec::new();
        while let Some(item) = dec.next_item().unwrap() {
            out.push(item);
        }
        assert_eq!(out, items);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn next_event_skips_watermarks() {
        let items = vec![
            StreamItem::Watermark(5),
            StreamItem::Event(sample(1)),
            StreamItem::Watermark(20),
            StreamItem::Watermark(30),
            StreamItem::Event(sample(2)),
            StreamItem::Watermark(40),
        ];
        let mut dec = Decoder::new();
        dec.extend(&encode_items(&items));
        assert_eq!(dec.next_event().unwrap(), Some(sample(1)));
        assert_eq!(dec.next_event().unwrap(), Some(sample(2)));
        assert_eq!(dec.next_event().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn fragmented_watermark_frames_decode() {
        let items = vec![
            StreamItem::Watermark(7),
            StreamItem::Event(sample(3)),
            StreamItem::Watermark(99),
        ];
        let bytes = encode_items(&items);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for chunk in bytes.chunks(1) {
            dec.extend(chunk);
            while let Some(item) = dec.next_item().unwrap() {
                out.push(item);
            }
        }
        assert_eq!(out, items);
    }

    #[test]
    fn bad_tag_is_rejected() {
        let ev = sample(1);
        let mut buf = BytesMut::new();
        encode(&ev, &mut buf);
        // Corrupt the first attribute's tag byte: 4 len + 8 seq + 8 ts + 2 ty
        // + 2 count + 2 key = offset 26.
        buf[26] = 99;
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert_eq!(dec.next_event(), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn empty_event_round_trips() {
        let ev = Event::builder(EventType::new(0)).seq(5).ts(6).build();
        let bytes = encode_all([&ev]);
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_event().unwrap(), Some(ev));
    }
}
