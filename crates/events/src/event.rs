use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::schema::{AttrKey, EventType, SymbolId};
use crate::value::Value;
use crate::{Seq, Timestamp};

/// A single event on an operator's totally ordered input stream.
///
/// Events consist of meta-data (sequence number, timestamp, event type) and a
/// payload of attribute–value pairs (paper §2.1). The sequence number defines
/// the global processing order; SPECTRE's windows, consumption groups and
/// suppression sets all refer to events by [`Seq`].
///
/// The attribute list is kept sorted by [`AttrKey`] so lookups are a binary
/// search over a short vector — events in the evaluation workloads carry 2–4
/// attributes.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema, Value};
/// let mut schema = Schema::new();
/// let quote = schema.event_type("Quote");
/// let (open, close) = (schema.attr("openPrice"), schema.attr("closePrice"));
/// let ev = Event::builder(quote)
///     .seq(42)
///     .ts(1_000)
///     .attr(open, Value::F64(10.0))
///     .attr(close, Value::F64(10.5))
///     .build();
/// assert!(ev.f64(close) > ev.f64(open));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    seq: Seq,
    ts: Timestamp,
    etype: EventType,
    attrs: Vec<(AttrKey, Value)>,
}

impl Event {
    /// Starts building an event of the given type.
    pub fn builder(etype: EventType) -> EventBuilder {
        EventBuilder {
            seq: 0,
            ts: 0,
            etype,
            attrs: Vec::new(),
        }
    }

    /// The event's position in the operator's total input order.
    pub fn seq(&self) -> Seq {
        self.seq
    }

    /// The event's timestamp.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The event's type.
    pub fn event_type(&self) -> EventType {
        self.etype
    }

    /// Looks up an attribute value.
    pub fn get(&self, key: AttrKey) -> Option<&Value> {
        self.attrs
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Looks up a numeric attribute, widening integers to `f64`.
    pub fn f64(&self, key: AttrKey) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Looks up a symbol attribute.
    pub fn symbol(&self, key: AttrKey) -> Option<SymbolId> {
        self.get(key).and_then(Value::as_symbol)
    }

    /// Iterates over the attribute–value pairs in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrKey, &Value)> {
        self.attrs.iter().map(|(k, v)| (*k, v))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Returns a copy of this event with a different sequence number.
    ///
    /// Used by the ingestion layer when re-sequencing merged streams.
    pub fn with_seq(&self, seq: Seq) -> Event {
        Event {
            seq,
            ..self.clone()
        }
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Events order by `(timestamp, sequence number)` — the "timestamps and
    /// tie-breaker rules" global ordering of paper §2.1.
    fn cmp(&self, other: &Self) -> Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}@{}[ty{}", self.seq, self.ts, self.etype.as_u32())?;
        for (k, v) in &self.attrs {
            write!(f, " {}={}", k.as_u32(), v)?;
        }
        write!(f, "]")
    }
}

/// Builder for [`Event`], produced by [`Event::builder`].
#[derive(Debug, Clone)]
pub struct EventBuilder {
    seq: Seq,
    ts: Timestamp,
    etype: EventType,
    attrs: Vec<(AttrKey, Value)>,
}

impl EventBuilder {
    /// Sets the sequence number (default 0; ingestion layers usually
    /// re-sequence).
    pub fn seq(mut self, seq: Seq) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the timestamp.
    pub fn ts(mut self, ts: Timestamp) -> Self {
        self.ts = ts;
        self
    }

    /// Adds an attribute. Setting the same key twice replaces the value.
    pub fn attr(mut self, key: AttrKey, value: impl Into<Value>) -> Self {
        let value = value.into();
        match self.attrs.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => self.attrs[i].1 = value,
            Err(i) => self.attrs.insert(i, (key, value)),
        }
        self
    }

    /// Finishes the event.
    pub fn build(self) -> Event {
        Event {
            seq: self.seq,
            ts: self.ts,
            etype: self.etype,
            attrs: self.attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: Seq, ts: Timestamp) -> Event {
        Event::builder(EventType::new(0)).seq(seq).ts(ts).build()
    }

    #[test]
    fn attribute_lookup() {
        let a = AttrKey::new(5);
        let b = AttrKey::new(2);
        let e = Event::builder(EventType::new(1))
            .attr(a, 1.5)
            .attr(b, 7_i64)
            .build();
        assert_eq!(e.f64(a), Some(1.5));
        assert_eq!(e.f64(b), Some(7.0));
        assert_eq!(e.get(AttrKey::new(9)), None);
        assert_eq!(e.attr_count(), 2);
    }

    #[test]
    fn attrs_are_sorted_and_deduplicated() {
        let k = AttrKey::new(3);
        let e = Event::builder(EventType::new(0))
            .attr(AttrKey::new(9), 9_i64)
            .attr(k, 1_i64)
            .attr(k, 2_i64)
            .build();
        assert_eq!(e.attr_count(), 2);
        assert_eq!(e.get(k), Some(&Value::I64(2)));
        let keys: Vec<_> = e.attrs().map(|(k, _)| k.as_u32()).collect();
        assert_eq!(keys, vec![3, 9]);
    }

    #[test]
    fn ordering_is_ts_then_seq() {
        let a = ev(2, 100);
        let b = ev(1, 200);
        let c = ev(3, 100);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
        let mut v = vec![b.clone(), c.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, c, b]);
    }

    #[test]
    fn with_seq_only_changes_seq() {
        let e = Event::builder(EventType::new(2))
            .seq(1)
            .ts(9)
            .attr(AttrKey::new(0), 3.0)
            .build();
        let f = e.with_seq(77);
        assert_eq!(f.seq(), 77);
        assert_eq!(f.ts(), 9);
        assert_eq!(f.event_type(), e.event_type());
        assert_eq!(f.f64(AttrKey::new(0)), Some(3.0));
    }

    #[test]
    fn display_is_nonempty() {
        let e = ev(1, 2);
        assert!(e.to_string().contains("e1@2"));
    }
}
