//! Event model for the SPECTRE complex event processing engine.
//!
//! This crate provides the substrate every other SPECTRE crate builds on:
//!
//! * [`Value`] — dynamically typed attribute values (floats, integers,
//!   booleans, interned strings and symbols),
//! * [`Schema`] — interning registry mapping attribute and event-type names to
//!   dense numeric ids ([`AttrKey`], [`EventType`], [`SymbolId`]),
//! * [`Event`] — a timestamped, totally ordered attribute–value record,
//! * [`codec`] — a length-prefixed binary framing for events (the paper feeds
//!   SPECTRE over TCP; we keep the serialization path without the socket),
//! * [`merge`] — deterministic k-way merging of several event streams into the
//!   single totally ordered stream an operator consumes (paper §2.1).
//!
//! # Example
//!
//! ```
//! use spectre_events::{Schema, Event, Value};
//!
//! let mut schema = Schema::new();
//! let quote = schema.event_type("Quote");
//! let close = schema.attr("closePrice");
//! let ev = Event::builder(quote)
//!     .seq(1)
//!     .ts(60_000)
//!     .attr(close, Value::F64(101.25))
//!     .build();
//! assert_eq!(ev.f64(close), Some(101.25));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod schema;
mod value;

pub mod codec;
pub mod merge;

pub use codec::StreamItem;
pub use event::{Event, EventBuilder};
pub use schema::{AttrKey, EventType, Schema, SymbolId};
pub use value::Value;

/// The position of an event in the totally ordered input stream of an
/// operator.
///
/// Sequence numbers are assigned by the ingestion layer (see
/// [`merge::MergedStream`]) and are unique and dense per operator. All window
/// boundaries, consumption groups and suppression sets in SPECTRE identify
/// events by their sequence number.
pub type Seq = u64;

/// Milliseconds since the start of the stream (or epoch); the unit is opaque
/// to the engine, only the ordering matters.
pub type Timestamp = u64;
