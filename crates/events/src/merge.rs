//! Deterministic k-way merging of event streams.
//!
//! An operator in the DCEP operator graph receives several incoming event
//! streams and processes their union in a well-defined global order derived
//! from timestamps plus tie-breaker rules (paper §2.1). [`MergedStream`]
//! implements that ordering: events are merged by `(timestamp, stream id)`
//! and re-sequenced with dense [`Seq`](crate::Seq) numbers, which the rest of
//! the engine uses as the canonical total order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Event;

/// K-way merge iterator over per-stream iterators that are individually
/// ordered by timestamp.
///
/// Ties between streams at equal timestamps break by stream index (lower
/// index first), making the merge fully deterministic. Output events are
/// re-sequenced starting at `first_seq`.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema};
/// use spectre_events::merge::MergedStream;
/// let mut schema = Schema::new();
/// let t = schema.event_type("T");
/// let mk = |ts| Event::builder(t).ts(ts).build();
/// let a = vec![mk(10), mk(30)];
/// let b = vec![mk(20), mk(30)];
/// let merged: Vec<_> = MergedStream::new(vec![a.into_iter(), b.into_iter()], 0).collect();
/// let ts: Vec<_> = merged.iter().map(|e| e.ts()).collect();
/// assert_eq!(ts, vec![10, 20, 30, 30]);
/// let seqs: Vec<_> = merged.iter().map(|e| e.seq()).collect();
/// assert_eq!(seqs, vec![0, 1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct MergedStream<I: Iterator<Item = Event>> {
    streams: Vec<I>,
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
}

#[derive(Debug)]
struct HeapEntry {
    event: Event,
    stream: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (ts, stream) pops
        // first.
        (other.event.ts(), other.stream).cmp(&(self.event.ts(), self.stream))
    }
}

impl<I: Iterator<Item = Event>> MergedStream<I> {
    /// Creates a merge over `streams`, re-sequencing output from `first_seq`.
    ///
    /// Each input iterator must already be ordered by non-decreasing
    /// timestamp; this is the usual per-source FIFO guarantee.
    pub fn new(streams: Vec<I>, first_seq: u64) -> Self {
        let mut this = MergedStream {
            streams,
            heap: BinaryHeap::new(),
            next_seq: first_seq,
        };
        for idx in 0..this.streams.len() {
            this.refill(idx);
        }
        this
    }

    fn refill(&mut self, stream: usize) {
        if let Some(event) = self.streams[stream].next() {
            self.heap.push(HeapEntry { event, stream });
        }
    }
}

impl<I: Iterator<Item = Event>> Iterator for MergedStream<I> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        let entry = self.heap.pop()?;
        self.refill(entry.stream);
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(entry.event.with_seq(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::EventType;

    fn mk(ts: u64, tag: i64) -> Event {
        Event::builder(EventType::new(0))
            .ts(ts)
            .attr(crate::AttrKey::new(0), tag)
            .build()
    }

    fn tags(events: &[Event]) -> Vec<i64> {
        events
            .iter()
            .map(|e| e.get(crate::AttrKey::new(0)).unwrap().as_i64().unwrap())
            .collect()
    }

    #[test]
    fn merges_by_timestamp() {
        let a = vec![mk(1, 10), mk(4, 11), mk(9, 12)];
        let b = vec![mk(2, 20), mk(3, 21), mk(8, 22)];
        let out: Vec<_> = MergedStream::new(vec![a.into_iter(), b.into_iter()], 0).collect();
        assert_eq!(tags(&out), vec![10, 20, 21, 11, 22, 12]);
    }

    #[test]
    fn ties_break_by_stream_index() {
        let a = vec![mk(5, 1)];
        let b = vec![mk(5, 2)];
        let c = vec![mk(5, 3)];
        let out: Vec<_> =
            MergedStream::new(vec![a.into_iter(), b.into_iter(), c.into_iter()], 0).collect();
        assert_eq!(tags(&out), vec![1, 2, 3]);
    }

    #[test]
    fn resequences_densely_from_offset() {
        let a = vec![mk(1, 0), mk(2, 0)];
        let b = vec![mk(3, 0)];
        let out: Vec<_> = MergedStream::new(vec![a.into_iter(), b.into_iter()], 100).collect();
        let seqs: Vec<_> = out.iter().map(Event::seq).collect();
        assert_eq!(seqs, vec![100, 101, 102]);
    }

    #[test]
    fn empty_streams() {
        let out: Vec<_> = MergedStream::new(Vec::<std::vec::IntoIter<Event>>::new(), 0).collect();
        assert!(out.is_empty());
        let a: Vec<Event> = vec![];
        let b = vec![mk(1, 7)];
        let out: Vec<_> = MergedStream::new(vec![a.into_iter(), b.into_iter()], 0).collect();
        assert_eq!(tags(&out), vec![7]);
    }

    #[test]
    fn single_stream_passthrough_order() {
        let a: Vec<_> = (0..50).map(|i| mk(i, i as i64)).collect();
        let out: Vec<_> = MergedStream::new(vec![a.into_iter()], 0).collect();
        assert_eq!(tags(&out), (0..50).collect::<Vec<_>>());
    }
}
