use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! interned_id {
    ($(#[$meta:meta])* $name:ident, $repr:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name($repr);

        impl $name {
            /// Creates an id from its raw numeric representation.
            ///
            /// Normally ids are produced by a [`Schema`]; this constructor
            /// exists for generators and tests that manage their own id
            /// spaces.
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric representation.
            pub const fn as_u32(self) -> u32 {
                self.0 as u32
            }

            /// Returns the raw representation as a usize, for dense indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

interned_id!(
    /// Dense id of an attribute name (e.g. `closePrice`) within a [`Schema`].
    AttrKey,
    u16
);

interned_id!(
    /// Dense id of an event type name (e.g. `Quote`) within a [`Schema`].
    EventType,
    u16
);

interned_id!(
    /// Dense id of a stock / entity symbol within a [`Schema`].
    ///
    /// Symbols get their own id space (instead of reusing strings) because the
    /// paper's datasets contain thousands of symbols and predicates compare
    /// them on every event.
    SymbolId,
    u32
);

/// Interning registry for attribute names, event-type names and symbols.
///
/// A `Schema` is shared by the data generators, the query compiler and the
/// engines so that events carry only dense numeric ids. Interning the same
/// name twice returns the same id.
///
/// # Example
///
/// ```
/// use spectre_events::Schema;
/// let mut schema = Schema::new();
/// let a = schema.attr("closePrice");
/// assert_eq!(a, schema.attr("closePrice"));
/// assert_eq!(schema.attr_name(a), Some("closePrice"));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    attrs: Interner,
    event_types: Interner,
    symbols: Interner,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an attribute name and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` attributes are interned.
    pub fn attr(&mut self, name: &str) -> AttrKey {
        AttrKey::new(self.attrs.intern(name) as u16)
    }

    /// Interns an event-type name.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` event types are interned.
    pub fn event_type(&mut self, name: &str) -> EventType {
        EventType::new(self.event_types.intern(name) as u16)
    }

    /// Interns a symbol name (e.g. a stock ticker).
    pub fn symbol(&mut self, name: &str) -> SymbolId {
        SymbolId::new(self.symbols.intern(name))
    }

    /// Looks up an attribute key without interning.
    pub fn lookup_attr(&self, name: &str) -> Option<AttrKey> {
        self.attrs.lookup(name).map(|i| AttrKey::new(i as u16))
    }

    /// Looks up an event type without interning.
    pub fn lookup_event_type(&self, name: &str) -> Option<EventType> {
        self.event_types
            .lookup(name)
            .map(|i| EventType::new(i as u16))
    }

    /// Looks up a symbol without interning.
    pub fn lookup_symbol(&self, name: &str) -> Option<SymbolId> {
        self.symbols.lookup(name).map(SymbolId::new)
    }

    /// Returns the name behind an attribute key.
    pub fn attr_name(&self, key: AttrKey) -> Option<&str> {
        self.attrs.name(key.index())
    }

    /// Returns the name behind an event type.
    pub fn event_type_name(&self, ty: EventType) -> Option<&str> {
        self.event_types.name(ty.index())
    }

    /// Returns the name behind a symbol id.
    pub fn symbol_name(&self, sym: SymbolId) -> Option<&str> {
        self.symbols.name(sym.index())
    }

    /// Number of interned symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Number of interned event types.
    pub fn event_type_count(&self) -> usize {
        self.event_types.len()
    }

    /// Number of interned attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = Schema::new();
        let a = s.attr("openPrice");
        let b = s.attr("closePrice");
        assert_ne!(a, b);
        assert_eq!(a, s.attr("openPrice"));
        assert_eq!(s.attr_count(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut s = Schema::new();
        assert_eq!(s.lookup_attr("x"), None);
        let x = s.attr("x");
        assert_eq!(s.lookup_attr("x"), Some(x));
        assert_eq!(s.attr_count(), 1);
    }

    #[test]
    fn separate_id_spaces() {
        let mut s = Schema::new();
        let t = s.event_type("Quote");
        let a = s.attr("Quote");
        let sym = s.symbol("Quote");
        assert_eq!(t.index(), 0);
        assert_eq!(a.index(), 0);
        assert_eq!(sym.index(), 0);
        assert_eq!(s.event_type_name(t), Some("Quote"));
        assert_eq!(s.symbol_name(sym), Some("Quote"));
    }

    #[test]
    fn names_round_trip() {
        let mut s = Schema::new();
        for i in 0..100 {
            let name = format!("SYM{i}");
            let id = s.symbol(&name);
            assert_eq!(s.symbol_name(id), Some(name.as_str()));
        }
        assert_eq!(s.symbol_count(), 100);
    }

    #[test]
    fn display_includes_raw_id() {
        assert_eq!(AttrKey::new(3).to_string(), "AttrKey(3)");
        assert_eq!(SymbolId::new(9).to_string(), "SymbolId(9)");
    }
}
