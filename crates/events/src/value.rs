use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::schema::SymbolId;

/// A dynamically typed attribute value carried by an [`Event`](crate::Event).
///
/// Events in CEP systems are attribute–value records (paper §2.1). `Value`
/// keeps the common payload types used by the paper's algorithmic-trading
/// scenario (prices as `F64`, stock symbols as interned [`SymbolId`]s) plus
/// integers, booleans and strings for general queries.
///
/// # Comparison semantics
///
/// Values of the same variant compare by their payload. `F64` uses IEEE total
/// ordering via [`f64::total_cmp`], so `Value` implements [`Ord`] and can be
/// used in sorted containers. Cross-variant comparisons order by a fixed
/// variant rank; query predicates normally never rely on this (the query
/// compiler type-checks attribute references), but having a total order keeps
/// the type well behaved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit float, e.g. a stock price.
    F64(f64),
    /// 64-bit signed integer, e.g. a traded volume.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Interned stock / entity symbol (see [`Schema::symbol`](crate::Schema::symbol)).
    Symbol(SymbolId),
    /// Shared immutable string payload.
    Str(Arc<str>),
}

impl Value {
    /// Returns the float payload, numerically widening `I64`.
    ///
    /// Returns `None` for non-numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the integer payload.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the symbol payload.
    pub fn as_symbol(&self) -> Option<SymbolId> {
        match self {
            Value::Symbol(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Rank used to order values of different variants.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::F64(_) => 0,
            Value::I64(_) => 1,
            Value::Bool(_) => 2,
            Value::Symbol(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (F64(a), F64(b)) => a.total_cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Symbol(a), Symbol(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Numeric cross-comparison: compare as floats so predicates may
            // mix integer and float literals.
            (F64(a), I64(b)) => a.total_cmp(&(*b as f64)),
            (I64(a), F64(b)) => (*a as f64).total_cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.variant_rank().hash(state);
        match self {
            Value::F64(v) => v.to_bits().hash(state),
            Value::I64(v) => v.hash(state),
            Value::Bool(v) => v.hash(state),
            Value::Symbol(v) => v.hash(state),
            Value::Str(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Symbol(v) => write!(f, "#{}", v.as_u32()),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<SymbolId> for Value {
    fn from(v: SymbolId) -> Self {
        Value::Symbol(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_accessors_widen_integers() {
        assert_eq!(Value::I64(4).as_f64(), Some(4.0));
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Value::I64(3) < Value::F64(3.5));
        assert!(Value::F64(4.0) > Value::I64(3));
        assert_eq!(Value::F64(3.0), Value::I64(3));
    }

    #[test]
    fn total_order_on_floats_handles_nan() {
        let nan = Value::F64(f64::NAN);
        // total_cmp puts NaN above +inf; the point is it must not panic and
        // must be self-consistent.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(nan > Value::F64(f64::INFINITY));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
        assert_eq!(Value::Symbol(SymbolId::new(7)).to_string(), "#7");
        assert_eq!(Value::from("IBM").to_string(), "IBM");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(1.0_f64), Value::F64(1.0));
        assert_eq!(Value::from(1_i64), Value::I64(1));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x").as_str(), Some("x"));
    }

    #[test]
    fn hash_is_consistent_with_eq_for_same_variant() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::F64(2.0)), h(&Value::F64(2.0)));
        assert_eq!(h(&Value::from("abc")), h(&Value::from("abc")));
    }
}
