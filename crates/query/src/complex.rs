use serde::{Deserialize, Serialize};
use spectre_events::{Seq, Timestamp};

/// A complex event produced by a completed pattern match (paper §2.1).
///
/// Complex events are identified by the window they were detected in and the
/// sequence numbers of their constituent events; two engines produce "the
/// same" output iff their complex-event sets (with multiplicity and order)
/// agree — this is how the reproduction validates SPECTRE against the
/// sequential reference engine (paper §2.3: no false positives, no false
/// negatives).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComplexEvent {
    /// Id of the window the match completed in.
    pub window_id: u64,
    /// Timestamp of the completing event.
    pub ts: Timestamp,
    /// Sequence numbers of the constituent events, in absorption order.
    pub constituents: Vec<Seq>,
}

impl ComplexEvent {
    /// Creates a complex event.
    pub fn new(window_id: u64, ts: Timestamp, constituents: Vec<Seq>) -> Self {
        ComplexEvent {
            window_id,
            ts,
            constituents,
        }
    }

    /// Number of constituent events.
    pub fn len(&self) -> usize {
        self.constituents.len()
    }

    /// `true` if the complex event has no constituents (cannot happen for
    /// well-formed patterns; kept for container-API completeness).
    pub fn is_empty(&self) -> bool {
        self.constituents.is_empty()
    }
}

impl std::fmt::Display for ComplexEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}[", self.window_id)?;
        for (i, s) in self.constituents.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "e{s}")?;
        }
        write!(f, "]@{}", self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_window_then_ts_then_constituents() {
        let a = ComplexEvent::new(1, 5, vec![1, 2]);
        let b = ComplexEvent::new(1, 6, vec![1, 3]);
        let c = ComplexEvent::new(2, 0, vec![0]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display() {
        let e = ComplexEvent::new(3, 9, vec![1, 4, 7]);
        assert_eq!(e.to_string(), "w3[e1,e4,e7]@9");
    }

    #[test]
    fn len_and_is_empty() {
        let e = ComplexEvent::new(0, 0, vec![1]);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
    }
}
