use std::fmt;
use std::sync::Arc;

use spectre_events::{Event, Seq};

use crate::complex::ComplexEvent;
use crate::matcher::{FeedOutcome, PartialMatch};
use crate::policy::SelectionPolicy;
use crate::query::Query;

/// Identifier of a partial match within one [`WindowDetector`].
///
/// In SPECTRE a partial match corresponds 1:1 to a consumption group of the
/// surrounding window version (paper §3.1), so the runtime uses `MatchId` as
/// the local half of its consumption-group ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchId(pub u64);

impl fmt::Display for MatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Feedback produced while a detector processes window events — the four
/// actions of paper Fig. 8 (lines 15–28):
///
/// 1. a partial match (= consumption group) is **created**,
/// 2. an event is **added** to a partial match,
/// 3. a match **completes**, emitting a complex event and consuming events,
/// 4. a match is **abandoned** (negation guard or window end).
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorAction {
    /// A new partial match started; the runtime creates a consumption group.
    MatchStarted {
        /// Id of the new match.
        match_id: MatchId,
    },
    /// An event was absorbed by a partial match.
    EventAdded {
        /// The absorbing match.
        match_id: MatchId,
        /// Sequence number of the absorbed event.
        seq: Seq,
        /// `true` if the consumption policy would consume this event on
        /// completion (the runtime adds it to the consumption group).
        consumable: bool,
        /// The match's completion distance δ after absorbing the event.
        delta: usize,
    },
    /// A match completed: a complex event is produced and `consumed` events
    /// are consumed as a whole (paper §2.1).
    Completed {
        /// The completing match.
        match_id: MatchId,
        /// The produced complex event.
        complex: ComplexEvent,
        /// Sequence numbers consumed per the consumption policy.
        consumed: Vec<Seq>,
    },
    /// A match was abandoned; its consumption group is dropped.
    Abandoned {
        /// The abandoned match.
        match_id: MatchId,
    },
}

/// Per-window pattern detection honouring the query's selection and
/// consumption policies.
///
/// A `WindowDetector` is the pattern-detection "operator logic" of paper
/// Fig. 8: it is fed one window's events in order (suppressed events are
/// simply *not* fed by the caller) and produces [`DetectorAction`] feedback
/// that the runtime maps onto consumption-group and dependency-tree updates.
///
/// Detectors are deterministic and cloneable; SPECTRE clones/rebuilds them
/// when window versions are rolled back.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema};
/// use spectre_query::{ConsumptionPolicy, DetectorAction, Expr, Pattern, Query,
///                     WindowDetector, WindowSpec};
/// use std::sync::Arc;
///
/// let mut schema = Schema::new();
/// let x = schema.attr("x");
/// let query = Arc::new(
///     Query::builder("q")
///         .pattern(
///             Pattern::builder()
///                 .one("A", Expr::current(x).lt(Expr::value(0.0)))
///                 .one("B", Expr::current(x).gt(Expr::value(0.0)))
///                 .build()?,
///         )
///         .window(WindowSpec::count_sliding(10, 10)?)
///         .consumption(ConsumptionPolicy::All)
///         .build()?,
/// );
/// let t = schema.event_type("E");
/// let mut det = WindowDetector::new(query, 0);
/// let mut out = Vec::new();
/// det.on_event(&Event::builder(t).seq(1).attr(x, -1.0).build(), &mut out);
/// det.on_event(&Event::builder(t).seq(2).attr(x, 1.0).build(), &mut out);
/// assert!(out.iter().any(|a| matches!(a, DetectorAction::Completed { .. })));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WindowDetector {
    query: Arc<Query>,
    window_id: u64,
    active: Vec<(MatchId, PartialMatch)>,
    next_match: u64,
    events_seen: u64,
    completed: u64,
    started: u64,
}

impl WindowDetector {
    /// Creates a detector for one window.
    pub fn new(query: Arc<Query>, window_id: u64) -> Self {
        WindowDetector {
            query,
            window_id,
            active: Vec::new(),
            next_match: 0,
            events_seen: 0,
            completed: 0,
            started: 0,
        }
    }

    /// The window this detector works on.
    pub fn window_id(&self) -> u64 {
        self.window_id
    }

    /// The query.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// Number of window events processed (suppressed events are not fed and
    /// therefore not counted).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Number of complex events produced so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Number of partial matches started so far.
    pub fn started_count(&self) -> u64 {
        self.started
    }

    /// Completion distance δ of an active match.
    pub fn delta(&self, match_id: MatchId) -> Option<usize> {
        self.active
            .iter()
            .find(|(id, _)| *id == match_id)
            .map(|(_, m)| m.delta())
    }

    /// Ids of the currently active matches, oldest first.
    pub fn active_matches(&self) -> impl Iterator<Item = MatchId> + '_ {
        self.active.iter().map(|(id, _)| *id)
    }

    /// Records a window event that is *suppressed* (consumed by an earlier
    /// window): it is not fed to the matcher, but it still occupies its
    /// window position — in particular, a suppressed first event disables
    /// an anchored query's match for this window.
    pub fn on_suppressed(&mut self) {
        self.events_seen += 1;
    }

    /// Processes the next (non-suppressed) window event, appending feedback
    /// actions to `out`.
    pub fn on_event(&mut self, ev: &Event, out: &mut Vec<DetectorAction>) {
        self.events_seen += 1;
        let mut absorbed_by_any = false;
        let mut ev_consumed = false;
        let mut i = 0;
        while i < self.active.len() {
            let (match_id, m) = &mut self.active[i];
            let match_id = *match_id;
            match m.feed(ev) {
                FeedOutcome::Ignored => {
                    i += 1;
                }
                FeedOutcome::Absorbed { elem } => {
                    absorbed_by_any = true;
                    let consumable = self.query.consumable(elem);
                    let delta = m.delta();
                    out.push(DetectorAction::EventAdded {
                        match_id,
                        seq: ev.seq(),
                        consumable,
                        delta,
                    });
                    i += 1;
                }
                FeedOutcome::Completed { elem } => {
                    absorbed_by_any = true;
                    let consumable = self.query.consumable(elem);
                    out.push(DetectorAction::EventAdded {
                        match_id,
                        seq: ev.seq(),
                        consumable,
                        delta: 0,
                    });
                    let (removed, consumed_current) = self.finish_match(i, match_id, ev, out);
                    if consumed_current {
                        // The completing match consumed the event under
                        // processing: it must not feed younger matches nor
                        // start a new one (events belong to one pattern
                        // instance only).
                        ev_consumed = true;
                        break;
                    }
                    if !removed {
                        i += 1;
                    }
                }
                FeedOutcome::Abandoned => {
                    out.push(DetectorAction::Abandoned { match_id });
                    self.active.remove(i);
                }
            }
        }

        // Start a fresh match if the event was not absorbed, capacity allows
        // and the event can start the pattern. Queries whose window *opens
        // on* the pattern's start element (`WITHIN … FROM <elem>`) are
        // anchored: the window exists because its first event matched, so
        // only that event may start the (single) match — the paper's Q1/QE
        // shape and its evaluation setting of one consumption group per
        // window version (§4.2).
        let anchored = matches!(
            self.query.window().open(),
            crate::window::WindowOpen::OnMatch { .. }
        );
        let may_start = if anchored {
            self.events_seen == 1
        } else {
            true
        };
        if !ev_consumed
            && may_start
            && !absorbed_by_any
            && self.active.len() < self.query.max_active()
            && PartialMatch::event_starts(self.query.pattern(), ev)
        {
            let match_id = MatchId(self.next_match);
            self.next_match += 1;
            self.started += 1;
            let mut m = PartialMatch::new(Arc::clone(self.query.pattern()));
            out.push(DetectorAction::MatchStarted { match_id });
            match m.feed(ev) {
                FeedOutcome::Absorbed { elem } => {
                    let consumable = self.query.consumable(elem);
                    let delta = m.delta();
                    out.push(DetectorAction::EventAdded {
                        match_id,
                        seq: ev.seq(),
                        consumable,
                        delta,
                    });
                    self.active.push((match_id, m));
                }
                FeedOutcome::Completed { elem } => {
                    let consumable = self.query.consumable(elem);
                    out.push(DetectorAction::EventAdded {
                        match_id,
                        seq: ev.seq(),
                        consumable,
                        delta: 0,
                    });
                    self.active.push((match_id, m));
                    let idx = self.active.len() - 1;
                    self.finish_match(idx, match_id, ev, out);
                }
                FeedOutcome::Ignored | FeedOutcome::Abandoned => {
                    // `event_starts` said the first step matches, so feeding
                    // a fresh match must absorb. Defensive: drop the match.
                    debug_assert!(false, "fresh match must absorb its start event");
                }
            }
        }
    }

    /// The window ended: all still-active matches are abandoned
    /// (paper §3.1: consumption groups are completed or abandoned at the
    /// latest when processing of the window finishes).
    pub fn on_window_end(&mut self, out: &mut Vec<DetectorAction>) {
        for (match_id, _) in self.active.drain(..) {
            out.push(DetectorAction::Abandoned { match_id });
        }
    }

    /// Handles a completed match at `self.active[idx]`: emits `Completed`,
    /// invalidates sibling matches that contain consumed events, and applies
    /// the selection policy. Returns `(entry_removed, current_event_consumed)`.
    fn finish_match(
        &mut self,
        idx: usize,
        match_id: MatchId,
        completing: &Event,
        out: &mut Vec<DetectorAction>,
    ) -> (bool, bool) {
        self.completed += 1;
        let (_, m) = &mut self.active[idx];
        let constituents: Vec<Seq> = m.participants().iter().map(|(_, s)| *s).collect();
        let consumed: Vec<Seq> = m
            .participants()
            .iter()
            .filter(|(elem, _)| self.query.consumable(*elem))
            .map(|(_, s)| *s)
            .collect();
        let consumed_current = consumed.contains(&completing.seq());
        out.push(DetectorAction::Completed {
            match_id,
            complex: ComplexEvent::new(self.window_id, completing.ts(), constituents),
            consumed: consumed.clone(),
        });

        // An event can be part of only one pattern instance: abandon sibling
        // matches that already absorbed a now-consumed event.
        if !consumed.is_empty() {
            let mut j = 0;
            while j < self.active.len() {
                let (mid, sibling) = &self.active[j];
                if *mid == match_id {
                    j += 1;
                    continue;
                }
                let conflicted = sibling
                    .participants()
                    .iter()
                    .any(|(_, s)| consumed.contains(s));
                if conflicted {
                    let mid = *mid;
                    out.push(DetectorAction::Abandoned { match_id: mid });
                    self.active.remove(j);
                } else {
                    j += 1;
                }
            }
        }

        // Apply the selection policy (indices may have shifted; find by id).
        let idx = match self.active.iter().position(|(id, _)| *id == match_id) {
            Some(i) => i,
            None => return (true, consumed_current),
        };
        let removed = match self.query.selection() {
            SelectionPolicy::Once => {
                self.active.remove(idx);
                true
            }
            SelectionPolicy::EachLast => {
                self.active[idx].1.rearm_last();
                false
            }
        };
        (removed, consumed_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::pattern::Pattern;
    use crate::policy::ConsumptionPolicy;
    use crate::window::WindowSpec;
    use spectre_events::{AttrKey, EventType};

    fn ev(seq: Seq, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(seq)
            .attr(AttrKey::new(0), x)
            .build()
    }

    fn x_is(v: f64) -> Expr {
        Expr::current(AttrKey::new(0)).eq_(Expr::value(v))
    }

    fn query(consumption: ConsumptionPolicy, selection: SelectionPolicy) -> Arc<Query> {
        Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", x_is(1.0))
                        .one("B", x_is(2.0))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::count_sliding(100, 100).unwrap())
                .consumption(consumption)
                .selection(selection)
                .build()
                .unwrap(),
        )
    }

    fn run(det: &mut WindowDetector, events: &[Event]) -> Vec<DetectorAction> {
        let mut out = Vec::new();
        for ev in events {
            det.on_event(ev, &mut out);
        }
        out
    }

    fn completions(actions: &[DetectorAction]) -> Vec<&ComplexEvent> {
        actions
            .iter()
            .filter_map(|a| match a {
                DetectorAction::Completed { complex, .. } => Some(complex),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_sequence_detection_with_consumption() {
        let q = query(ConsumptionPolicy::All, SelectionPolicy::Once);
        let mut det = WindowDetector::new(q, 7);
        let actions = run(&mut det, &[ev(1, 1.0), ev(2, 0.0), ev(3, 2.0)]);
        assert!(matches!(actions[0], DetectorAction::MatchStarted { .. }));
        let c = completions(&actions);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].window_id, 7);
        assert_eq!(c[0].constituents, vec![1, 3]);
        let DetectorAction::Completed { consumed, .. } = actions.last().unwrap() else {
            panic!("last action must be completion");
        };
        assert_eq!(consumed, &vec![1, 3]);
        assert_eq!(det.completed_count(), 1);
    }

    #[test]
    fn selected_consumption_only_marks_selected_elements() {
        let q = query(
            ConsumptionPolicy::Selected(vec!["B".into()]),
            SelectionPolicy::Once,
        );
        let mut det = WindowDetector::new(q, 0);
        let actions = run(&mut det, &[ev(1, 1.0), ev(2, 2.0)]);
        let adds: Vec<(Seq, bool)> = actions
            .iter()
            .filter_map(|a| match a {
                DetectorAction::EventAdded {
                    seq, consumable, ..
                } => Some((*seq, *consumable)),
                _ => None,
            })
            .collect();
        assert_eq!(adds, vec![(1, false), (2, true)]);
        let DetectorAction::Completed { consumed, .. } = actions.last().unwrap() else {
            panic!();
        };
        assert_eq!(consumed, &vec![2]);
    }

    #[test]
    fn once_selection_allows_new_match_after_completion() {
        let q = query(ConsumptionPolicy::All, SelectionPolicy::Once);
        let mut det = WindowDetector::new(q, 0);
        let actions = run(&mut det, &[ev(1, 1.0), ev(2, 2.0), ev(3, 1.0), ev(4, 2.0)]);
        let c = completions(&actions);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].constituents, vec![1, 2]);
        assert_eq!(c[1].constituents, vec![3, 4]);
        assert_eq!(det.started_count(), 2);
    }

    #[test]
    fn each_last_produces_qe_fig1b_output() {
        // QE with consumption "selected B": A1 B1 B2 in one window yields
        // A1B1 and A1B2 (paper Fig. 1b, window w1).
        let q = query(
            ConsumptionPolicy::Selected(vec!["B".into()]),
            SelectionPolicy::EachLast,
        );
        let mut det = WindowDetector::new(q, 0);
        let actions = run(&mut det, &[ev(1, 1.0), ev(2, 2.0), ev(3, 2.0)]);
        let c = completions(&actions);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].constituents, vec![1, 2]);
        assert_eq!(c[1].constituents, vec![1, 3]);
    }

    #[test]
    fn window_end_abandons_active_matches() {
        let q = query(ConsumptionPolicy::All, SelectionPolicy::Once);
        let mut det = WindowDetector::new(q, 0);
        let mut out = run(&mut det, &[ev(1, 1.0)]);
        det.on_window_end(&mut out);
        assert!(matches!(
            out.last().unwrap(),
            DetectorAction::Abandoned { .. }
        ));
        assert_eq!(det.active_matches().count(), 0);
    }

    #[test]
    fn delta_is_exposed_per_match() {
        let q = query(ConsumptionPolicy::All, SelectionPolicy::Once);
        let mut det = WindowDetector::new(q, 0);
        let mut out = Vec::new();
        det.on_event(&ev(1, 1.0), &mut out);
        let id = det.active_matches().next().unwrap();
        assert_eq!(det.delta(id), Some(1));
    }

    #[test]
    fn consumed_current_event_is_withheld_from_younger_matches() {
        // pattern A then B, max_active 2, ConsumptionPolicy::All.
        // A@1 starts m0; A@2 starts m1; B@3 completes m0 consuming {1,3} —
        // so B@3 must NOT also feed m1; B@4 then completes m1 as {2,4}.
        let q = Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", x_is(1.0))
                        .one("B", x_is(2.0))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::count_sliding(100, 100).unwrap())
                .consumption(ConsumptionPolicy::All)
                .max_active(2)
                .build()
                .unwrap(),
        );
        let mut det = WindowDetector::new(q, 0);
        let actions = run(&mut det, &[ev(1, 1.0), ev(2, 1.0), ev(3, 2.0), ev(4, 2.0)]);
        let c = completions(&actions);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].constituents, vec![1, 3]);
        assert_eq!(c[1].constituents, vec![2, 4]);
    }

    #[test]
    fn consumption_abandons_conflicting_sibling_matches() {
        // pattern A then B+ then C with max_active 2 and All consumption.
        // Both matches absorb the same B@3; when m0 completes with C@4,
        // B@3 is consumed, so m1 (which also holds B@3) must be abandoned.
        let q = Arc::new(
            Query::builder("t")
                .pattern(
                    Pattern::builder()
                        .one("A", x_is(1.0))
                        .plus("B", x_is(2.0))
                        .one("C", x_is(3.0))
                        .build()
                        .unwrap(),
                )
                .window(WindowSpec::count_sliding(100, 100).unwrap())
                .consumption(ConsumptionPolicy::All)
                .max_active(2)
                .build()
                .unwrap(),
        );
        let mut det = WindowDetector::new(q, 0);
        // A@1 -> m0; A@2 -> m1 (not absorbed by m0: A pred only matches 1.0
        // once bound? both matches at step B... careful: m0 at step B ignores
        // A@2; m0 doesn't absorb so m1 starts). B@3 feeds both. C@4
        // completes m0 consuming {1,3,4}; m1 holds {2,3} -> abandoned.
        let actions = run(&mut det, &[ev(1, 1.0), ev(2, 1.0), ev(3, 2.0), ev(4, 3.0)]);
        let c = completions(&actions);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].constituents, vec![1, 3, 4]);
        let abandoned = actions
            .iter()
            .filter(|a| matches!(a, DetectorAction::Abandoned { .. }))
            .count();
        assert_eq!(abandoned, 1);
    }

    #[test]
    fn events_seen_counts_only_fed_events() {
        let q = query(ConsumptionPolicy::All, SelectionPolicy::Once);
        let mut det = WindowDetector::new(q, 0);
        run(&mut det, &[ev(1, 0.0), ev(2, 0.0)]);
        assert_eq!(det.events_seen(), 2);
    }
}
