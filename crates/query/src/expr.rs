use std::fmt;

use serde::{Deserialize, Serialize};
use spectre_events::{AttrKey, Event, EventType, Value};

use crate::pattern::ElemId;

/// Reference to the event an attribute is read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElemRef {
    /// The event currently being evaluated against a matcher.
    Current,
    /// The event bound earlier by the named pattern element.
    Bound(ElemId),
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Arithmetic `+`.
    Add,
    /// Arithmetic `-`.
    Sub,
    /// Arithmetic `*`.
    Mul,
    /// Arithmetic `/`.
    Div,
    /// Comparison `<`.
    Lt,
    /// Comparison `<=`.
    Le,
    /// Comparison `>`.
    Gt,
    /// Comparison `>=`.
    Ge,
    /// Comparison `==`.
    Eq,
    /// Comparison `!=`.
    Ne,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
}

/// Unary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A predicate / arithmetic expression over event attributes.
///
/// Expressions are evaluated against an [`EvalContext`] supplying the current
/// event and any earlier pattern bindings, e.g. the paper's
/// `REq.closePrice > REq.openPrice` (self-reference) or chart-pattern
/// constraints like `A.x > B.x` (cross-element reference, §5).
///
/// Evaluation is *total but optional*: a missing attribute, a reference to a
/// not-yet-bound element or a type mismatch yields `None`, and predicates
/// that evaluate to `None` are treated as *not satisfied* by the matcher.
/// This mirrors common CEP engine behaviour where malformed events simply do
/// not match.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema, Value};
/// use spectre_query::{Expr, EvalContext, ElemRef};
///
/// let mut schema = Schema::new();
/// let quote = schema.event_type("Quote");
/// let (open, close) = (schema.attr("open"), schema.attr("close"));
/// let rising = Expr::attr(ElemRef::Current, close).gt(Expr::attr(ElemRef::Current, open));
///
/// struct Ctx(Event);
/// impl EvalContext for Ctx {
///     fn current(&self) -> &Event { &self.0 }
///     fn bound(&self, _: spectre_query::ElemId) -> Option<&Event> { None }
/// }
///
/// let ev = Event::builder(quote).attr(open, 10.0).attr(close, 11.0).build();
/// assert_eq!(rising.eval_bool(&Ctx(ev)), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// An attribute read: `elem.attr`.
    Attr(ElemRef, AttrKey),
    /// Event-type test: `elem` is of the given type.
    TypeIs(ElemRef, EventType),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Supplies events to expression evaluation: the event under test plus the
/// events bound by earlier pattern elements of the same partial match.
pub trait EvalContext {
    /// The event currently being evaluated.
    fn current(&self) -> &Event;
    /// The event bound by pattern element `elem`, if already bound.
    fn bound(&self, elem: ElemId) -> Option<&Event>;
}

// `add`/`sub`/`mul`/`div`/`not` are DSL combinators building AST nodes, not
// arithmetic on `Expr` values; implementing the `std::ops` traits instead
// would wrongly suggest the latter.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Literal constructor.
    pub fn value(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Attribute-read constructor.
    pub fn attr(elem: ElemRef, key: AttrKey) -> Expr {
        Expr::Attr(elem, key)
    }

    /// Attribute of the event currently under test.
    pub fn current(key: AttrKey) -> Expr {
        Expr::Attr(ElemRef::Current, key)
    }

    /// Constant `true`.
    pub fn truth() -> Expr {
        Expr::Const(Value::Bool(true))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// Logical `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// Logical `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// Logical negation.
    pub fn not(self) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(self))
    }

    /// Arithmetic `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// Arithmetic `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// Arithmetic `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// Arithmetic `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// Evaluates the expression; `None` signals a missing attribute, an
    /// unbound element reference or a type error.
    pub fn eval(&self, ctx: &dyn EvalContext) -> Option<Value> {
        match self {
            Expr::Const(v) => Some(v.clone()),
            Expr::Attr(elem, key) => self.resolve(ctx, *elem)?.get(*key).cloned(),
            Expr::TypeIs(elem, ty) => {
                Some(Value::Bool(self.resolve(ctx, *elem)?.event_type() == *ty))
            }
            Expr::Unary(op, inner) => {
                let v = inner.eval(ctx)?;
                match op {
                    UnaryOp::Not => Some(Value::Bool(!v.as_bool()?)),
                    UnaryOp::Neg => Some(Value::F64(-v.as_f64()?)),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                // Short-circuit logic; everything else is strict.
                match op {
                    BinOp::And => {
                        return if !lhs.eval(ctx)?.as_bool()? {
                            Some(Value::Bool(false))
                        } else {
                            Some(Value::Bool(rhs.eval(ctx)?.as_bool()?))
                        };
                    }
                    BinOp::Or => {
                        return if lhs.eval(ctx)?.as_bool()? {
                            Some(Value::Bool(true))
                        } else {
                            Some(Value::Bool(rhs.eval(ctx)?.as_bool()?))
                        };
                    }
                    _ => {}
                }
                let a = lhs.eval(ctx)?;
                let b = rhs.eval(ctx)?;
                match op {
                    BinOp::Add => Some(Value::F64(a.as_f64()? + b.as_f64()?)),
                    BinOp::Sub => Some(Value::F64(a.as_f64()? - b.as_f64()?)),
                    BinOp::Mul => Some(Value::F64(a.as_f64()? * b.as_f64()?)),
                    BinOp::Div => {
                        let d = b.as_f64()?;
                        if d == 0.0 {
                            None
                        } else {
                            Some(Value::F64(a.as_f64()? / d))
                        }
                    }
                    BinOp::Lt => Some(Value::Bool(a < b)),
                    BinOp::Le => Some(Value::Bool(a <= b)),
                    BinOp::Gt => Some(Value::Bool(a > b)),
                    BinOp::Ge => Some(Value::Bool(a >= b)),
                    BinOp::Eq => Some(Value::Bool(a == b)),
                    BinOp::Ne => Some(Value::Bool(a != b)),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Evaluates as a predicate; `None` on evaluation failure.
    pub fn eval_bool(&self, ctx: &dyn EvalContext) -> Option<bool> {
        self.eval(ctx)?.as_bool()
    }

    /// Returns `true` iff the predicate definitely holds (failures count as
    /// "does not match").
    pub fn matches(&self, ctx: &dyn EvalContext) -> bool {
        self.eval_bool(ctx).unwrap_or(false)
    }

    fn resolve<'c>(&self, ctx: &'c dyn EvalContext, elem: ElemRef) -> Option<&'c Event> {
        match elem {
            ElemRef::Current => Some(ctx.current()),
            ElemRef::Bound(id) => ctx.bound(id),
        }
    }

    /// Collects the element ids this expression reads via [`ElemRef::Bound`].
    pub fn referenced_elems(&self, out: &mut Vec<ElemId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Attr(ElemRef::Bound(id), _) | Expr::TypeIs(ElemRef::Bound(id), _) => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
            Expr::Attr(_, _) | Expr::TypeIs(_, _) => {}
            Expr::Unary(_, e) => e.referenced_elems(out),
            Expr::Binary(_, a, b) => {
                a.referenced_elems(out);
                b.referenced_elems(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Attr(ElemRef::Current, k) => write!(f, "self.a{}", k.as_u32()),
            Expr::Attr(ElemRef::Bound(id), k) => write!(f, "e{}.a{}", id.index(), k.as_u32()),
            Expr::TypeIs(_, ty) => write!(f, "type==ty{}", ty.as_u32()),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "!({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::Schema;

    struct Ctx {
        current: Event,
        bound: Vec<Option<Event>>,
    }

    impl EvalContext for Ctx {
        fn current(&self) -> &Event {
            &self.current
        }
        fn bound(&self, elem: ElemId) -> Option<&Event> {
            self.bound.get(elem.index())?.as_ref()
        }
    }

    fn fixture() -> (Schema, AttrKey, AttrKey, Ctx) {
        let mut schema = Schema::new();
        let t = schema.event_type("Quote");
        let open = schema.attr("open");
        let close = schema.attr("close");
        let current = Event::builder(t)
            .seq(2)
            .attr(open, 10.0)
            .attr(close, 12.0)
            .build();
        let bound0 = Event::builder(t)
            .seq(1)
            .attr(open, 4.0)
            .attr(close, 8.0)
            .build();
        (
            schema,
            open,
            close,
            Ctx {
                current,
                bound: vec![Some(bound0), None],
            },
        )
    }

    #[test]
    fn arithmetic_and_comparison() {
        let (_s, open, close, ctx) = fixture();
        // close / open == 1.2
        let ratio = Expr::current(close).div(Expr::current(open));
        assert_eq!(ratio.eval(&ctx), Some(Value::F64(1.2)));
        let pred = ratio.gt(Expr::value(1.0));
        assert_eq!(pred.eval_bool(&ctx), Some(true));
    }

    #[test]
    fn cross_element_reference() {
        let (_s, _open, close, ctx) = fixture();
        let e0 = ElemId::new(0);
        // current.close > bound0.close  (12 > 8)
        let pred = Expr::current(close).gt(Expr::attr(ElemRef::Bound(e0), close));
        assert_eq!(pred.eval_bool(&ctx), Some(true));
    }

    #[test]
    fn unbound_reference_fails_softly() {
        let (_s, _open, close, ctx) = fixture();
        let pred = Expr::attr(ElemRef::Bound(ElemId::new(1)), close).gt(Expr::value(0.0));
        assert_eq!(pred.eval_bool(&ctx), None);
        assert!(!pred.matches(&ctx));
    }

    #[test]
    fn missing_attribute_fails_softly() {
        let (mut s, _open, _close, ctx) = fixture();
        let volume = s.attr("volume");
        let pred = Expr::current(volume).gt(Expr::value(0.0));
        assert_eq!(pred.eval_bool(&ctx), None);
    }

    #[test]
    fn division_by_zero_fails_softly() {
        let (_s, open, _close, ctx) = fixture();
        let expr = Expr::current(open).div(Expr::value(0.0));
        assert_eq!(expr.eval(&ctx), None);
    }

    #[test]
    fn short_circuit_and_or() {
        let (_s, _open, close, ctx) = fixture();
        let broken = Expr::attr(ElemRef::Bound(ElemId::new(1)), close).gt(Expr::value(0.0));
        // false AND broken == false (short-circuits)
        let e = Expr::value(false).and(broken.clone());
        assert_eq!(e.eval_bool(&ctx), Some(false));
        // true OR broken == true
        let e = Expr::value(true).or(broken.clone());
        assert_eq!(e.eval_bool(&ctx), Some(true));
        // true AND broken == None (strict where it matters)
        let e = Expr::value(true).and(broken);
        assert_eq!(e.eval_bool(&ctx), None);
    }

    #[test]
    fn not_and_neg() {
        let (_s, open, _close, ctx) = fixture();
        let e = Expr::value(true).not();
        assert_eq!(e.eval_bool(&ctx), Some(false));
        let e = Expr::Unary(UnaryOp::Neg, Box::new(Expr::current(open)));
        assert_eq!(e.eval(&ctx), Some(Value::F64(-10.0)));
    }

    #[test]
    fn type_test() {
        let (mut s, _open, _close, ctx) = fixture();
        let quote = s.event_type("Quote");
        let other = s.event_type("Other");
        assert_eq!(
            Expr::TypeIs(ElemRef::Current, quote).eval_bool(&ctx),
            Some(true)
        );
        assert_eq!(
            Expr::TypeIs(ElemRef::Current, other).eval_bool(&ctx),
            Some(false)
        );
    }

    #[test]
    fn referenced_elems_deduplicates() {
        let (_s, open, close, _ctx) = fixture();
        let e0 = ElemRef::Bound(ElemId::new(0));
        let expr = Expr::attr(e0, open)
            .gt(Expr::attr(e0, close))
            .and(Expr::attr(ElemRef::Bound(ElemId::new(3)), close).gt(Expr::value(1.0)));
        let mut out = Vec::new();
        expr.referenced_elems(&mut out);
        assert_eq!(out, vec![ElemId::new(0), ElemId::new(3)]);
    }

    #[test]
    fn display_round_trips_visually() {
        let (_s, open, close, _ctx) = fixture();
        let e = Expr::current(close).gt(Expr::current(open));
        assert_eq!(e.to_string(), "(self.a1 > self.a0)");
    }
}
