//! Per-query ingestion prefilters: a conservative, pattern-derived test
//! for whether an event can possibly affect a query.
//!
//! The splitter consults an [`EventFilter`] at window-open time (and while
//! windows stay deferred) so a query only pays window-attach and
//! dependency-tree cost for windows that actually contain an event it can
//! match — see the "Multi-tenancy" section of `docs/ARCHITECTURE.md`.
//!
//! Derivation is purely static, once per deployed query: every binding
//! matcher of every step (and every negation guard, which can abandon a
//! match without binding) contributes one *alternative* consisting of its
//! optional event-type test and the self-contained conjuncts of its
//! predicate. An event is **relevant** when at least one alternative
//! accepts it.
//!
//! Conservative correctness: a conjunct is kept only when it references no
//! earlier binding ([`Expr::referenced_elems`] is empty), so it evaluates
//! identically in a current-event-only context and in any real match
//! context. `AND` evaluation is short-circuiting and `None`-propagating,
//! so one top-level conjunct evaluating to `false` (or failing to
//! evaluate) forces the whole predicate to not match — an event rejected
//! by every alternative can neither bind at any step nor trigger any
//! guard, anywhere, ever. Filters therefore never change what a query
//! computes, only which windows it attaches.

use spectre_events::{Event, EventType};

use crate::expr::{EvalContext, Expr};
use crate::pattern::{ElemId, ElemMatcher, StepKind};
use crate::query::Query;

/// Evaluation context exposing only the candidate event: earlier bindings
/// read as "not bound", which is exactly the state a fresh match is in.
struct CurrentOnly<'a>(&'a Event);

impl EvalContext for CurrentOnly<'_> {
    fn current(&self) -> &Event {
        self.0
    }
    fn bound(&self, _elem: ElemId) -> Option<&Event> {
        None
    }
}

/// The prefilter contribution of one element matcher: the event must have
/// the matcher's type (when one is declared) and satisfy every
/// self-contained top-level conjunct of its predicate.
#[derive(Debug, Clone)]
struct MatcherFilter {
    event_type: Option<EventType>,
    conjuncts: Vec<Expr>,
}

impl MatcherFilter {
    fn for_matcher(m: &ElemMatcher) -> MatcherFilter {
        let mut conjuncts = Vec::new();
        collect_conjuncts(&m.pred, &mut conjuncts);
        conjuncts.retain(|c| {
            // Drop constraints that either read earlier bindings (their
            // current-only value would not transfer to a real match
            // context) or can never fail (a literal `true` from
            // `Expr::truth()` patterns).
            let mut refs = Vec::new();
            c.referenced_elems(&mut refs);
            refs.is_empty() && !matches!(c, Expr::Const(v) if v.as_bool() == Some(true))
        });
        MatcherFilter {
            event_type: m.event_type,
            conjuncts,
        }
    }

    /// `true` when this alternative cannot exclude anything.
    fn is_pass_all(&self) -> bool {
        self.event_type.is_none() && self.conjuncts.is_empty()
    }

    fn passes(&self, event: &Event) -> bool {
        if let Some(ty) = self.event_type {
            if event.event_type() != ty {
                return false;
            }
        }
        let ctx = CurrentOnly(event);
        self.conjuncts.iter().all(|c| c.matches(&ctx))
    }
}

/// Flattens the top-level `AND` chain of `pred` into its conjuncts.
fn collect_conjuncts(pred: &Expr, out: &mut Vec<Expr>) {
    match pred {
        Expr::Binary(crate::expr::BinOp::And, lhs, rhs) => {
            collect_conjuncts(lhs, out);
            collect_conjuncts(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// A conservative per-query event prefilter derived from the pattern (see
/// the module docs). Built once at deploy time with
/// [`EventFilter::for_query`]; consulted per event on the splitter's
/// window-open path via [`relevant`](EventFilter::relevant).
#[derive(Debug, Clone)]
pub struct EventFilter {
    alternatives: Vec<MatcherFilter>,
}

impl EventFilter {
    /// Derives the filter for `query`, or `None` when the pattern admits
    /// unconstrained events (some matcher has neither an event-type test
    /// nor any self-contained conjunct), in which case filtering cannot
    /// exclude anything and the caller should skip the per-event checks
    /// entirely.
    pub fn for_query(query: &Query) -> Option<EventFilter> {
        let mut alternatives = Vec::new();
        for step in query.pattern().steps() {
            let binding: &[ElemMatcher] = match &step.kind {
                StepKind::One(m) | StepKind::Plus(m) => std::slice::from_ref(m),
                StepKind::Set(members) => members,
            };
            for m in binding.iter().chain(step.forbid.iter()) {
                let alt = MatcherFilter::for_matcher(m);
                if alt.is_pass_all() {
                    return None;
                }
                alternatives.push(alt);
            }
        }
        Some(EventFilter { alternatives })
    }

    /// `true` when `event` could bind at some step or trigger some guard
    /// of the query — i.e. the query might have to look at it. `false` is
    /// a proof of irrelevance: no window consisting solely of irrelevant
    /// events can produce output or consume anything.
    pub fn relevant(&self, event: &Event) -> bool {
        self.alternatives.iter().any(|alt| alt.passes(event))
    }

    /// Number of matcher alternatives (diagnostics).
    pub fn alternative_count(&self) -> usize {
        self.alternatives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ConsumptionPolicy;
    use crate::queries::{self, Direction};
    use crate::window::WindowSpec;
    use crate::Pattern;
    use spectre_events::Schema;

    fn quote(schema: &mut Schema, close: f64, open: f64) -> Event {
        let vocab = queries::StockVocab::install(schema);
        Event::builder(vocab.quote)
            .attr(vocab.open_price, open)
            .attr(vocab.close_price, close)
            .attr(vocab.leading, false)
            .build()
    }

    #[test]
    fn q2_filter_rejects_quotes_on_the_limits() {
        let mut schema = Schema::new();
        let q = queries::q2(&mut schema, 10.0, 20.0, 100, 10);
        let f = EventFilter::for_query(&q).expect("Q2 is fully constrained");
        // Below, between and above all bind somewhere.
        assert!(f.relevant(&quote(&mut schema, 5.0, 0.0)));
        assert!(f.relevant(&quote(&mut schema, 15.0, 0.0)));
        assert!(f.relevant(&quote(&mut schema, 25.0, 0.0)));
        // Exactly on a limit matches no step of Q2.
        assert!(!f.relevant(&quote(&mut schema, 10.0, 0.0)));
        assert!(!f.relevant(&quote(&mut schema, 20.0, 0.0)));
    }

    #[test]
    fn q1_filter_keeps_any_rising_quote() {
        let mut schema = Schema::new();
        let q = queries::q1(&mut schema, 3, 100, Direction::Rising);
        let f = EventFilter::for_query(&q).expect("Q1 is fully constrained");
        // A non-leading rising quote binds at the RE steps.
        assert!(f.relevant(&quote(&mut schema, 12.0, 10.0)));
        // Falling quotes bind nowhere in rising Q1.
        assert!(!f.relevant(&quote(&mut schema, 10.0, 12.0)));
    }

    #[test]
    fn unconstrained_matcher_disables_the_filter() {
        let pattern = Pattern::builder().one("A", Expr::truth()).build().unwrap();
        let q = Query::builder("any")
            .pattern(pattern)
            .window(WindowSpec::count_sliding(4, 2).unwrap())
            .consumption(ConsumptionPolicy::All)
            .build()
            .unwrap();
        assert!(EventFilter::for_query(&q).is_none());
    }

    #[test]
    fn cross_element_conjuncts_are_ignored_conservatively() {
        let mut schema = Schema::new();
        let x = schema.attr("x");
        // B's predicate is (current.x > 0) AND (current.x > bound A.x); only
        // the self-contained first conjunct may prefilter.
        let pattern = Pattern::builder()
            .one("A", Expr::current(x).lt(Expr::value(0.0)))
            .one(
                "B",
                Expr::current(x)
                    .gt(Expr::value(0.0))
                    .and(Expr::current(x).gt(Expr::attr(crate::ElemRef::Bound(ElemId::new(0)), x))),
            )
            .build()
            .unwrap();
        let q = Query::builder("cross")
            .pattern(pattern)
            .window(WindowSpec::count_sliding(4, 2).unwrap())
            .build()
            .unwrap();
        let f = EventFilter::for_query(&q).expect("both matchers constrained");
        let ty = schema.event_type("T");
        let pos = Event::builder(ty).attr(x, 1.0).build();
        let neg = Event::builder(ty).attr(x, -1.0).build();
        let zero = Event::builder(ty).attr(x, 0.0).build();
        assert!(f.relevant(&pos));
        assert!(f.relevant(&neg));
        assert!(!f.relevant(&zero));
    }

    #[test]
    fn forbid_guards_keep_their_triggers_relevant() {
        let mut schema = Schema::new();
        let x = schema.attr("x");
        let pattern = Pattern::builder()
            .one("A", Expr::current(x).eq_(Expr::value(1.0)))
            .forbid("C", Expr::current(x).eq_(Expr::value(9.0)))
            .one("B", Expr::current(x).eq_(Expr::value(2.0)))
            .build()
            .unwrap();
        let q = Query::builder("guarded")
            .pattern(pattern)
            .window(WindowSpec::count_sliding(4, 2).unwrap())
            .build()
            .unwrap();
        let f = EventFilter::for_query(&q).expect("constrained");
        let ty = schema.event_type("T");
        // The guard's trigger must stay relevant even though it never binds.
        let trigger = Event::builder(ty).attr(x, 9.0).build();
        let noise = Event::builder(ty).attr(x, 7.0).build();
        assert!(f.relevant(&trigger));
        assert!(!f.relevant(&noise));
    }

    #[test]
    fn typed_matchers_filter_by_event_type() {
        let mut schema = Schema::new();
        let quote_ty = schema.event_type("Quote");
        let other_ty = schema.event_type("Other");
        let x = schema.attr("x");
        let pattern = Pattern::builder()
            .one_typed("A", quote_ty, Expr::truth())
            .build()
            .unwrap();
        let q = Query::builder("typed")
            .pattern(pattern)
            .window(WindowSpec::count_sliding(4, 2).unwrap())
            .build()
            .unwrap();
        let f = EventFilter::for_query(&q).expect("type test constrains");
        assert!(f.relevant(&Event::builder(quote_ty).attr(x, 1.0).build()));
        assert!(!f.relevant(&Event::builder(other_ty).attr(x, 1.0).build()));
        assert_eq!(f.alternative_count(), 1);
    }
}
