//! Pattern specification language and incremental matcher for SPECTRE.
//!
//! This crate implements the query side of the paper: event patterns with
//! sequence, Kleene-`+` and unordered-set steps, negation guards, predicate
//! expressions over event attributes, sliding-window specifications
//! (`WITHIN … FROM …`), and *selection* / *consumption* policies
//! (paper §2.1, §5). It provides:
//!
//! * [`Expr`] — predicate/arithmetic expressions over the current event and
//!   earlier pattern bindings,
//! * [`Pattern`] / [`PatternBuilder`] — the pattern structure,
//! * [`Query`] / [`QueryBuilder`] — pattern + window + policies,
//! * [`PartialMatch`] — the incremental match machine with completion
//!   distance δ (the state the paper's Markov model is built over),
//! * [`WindowDetector`] — per-window pattern detection with the feedback
//!   actions of paper Fig. 8 (consumption-group creation / completion /
//!   abandonment),
//! * [`EventFilter`] — a conservative per-event relevance prefilter
//!   derived from the pattern (used by the engine's splitter to skip
//!   windows a query cannot match in),
//! * [`parse_query`] — a parser for the paper's extended `MATCH_RECOGNIZE`
//!   notation (Fig. 9),
//! * [`queries`] — ready-made builders for the paper's queries Q1, Q2, Q3
//!   and the introduction's example query QE.
//!
//! # Example: the paper's example query QE
//!
//! ```
//! use spectre_events::Schema;
//! use spectre_query::queries;
//!
//! let mut schema = Schema::new();
//! let q = queries::qe(&mut schema, 60_000);
//! assert_eq!(q.pattern().step_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod detector;
mod expr;
mod matcher;
mod policy;
mod query;

pub mod filter;
pub mod parser;
pub mod pattern;
pub mod queries;
pub mod window;

pub use complex::ComplexEvent;
pub use detector::{DetectorAction, MatchId, WindowDetector};
pub use expr::{BinOp, ElemRef, EvalContext, Expr, UnaryOp};
pub use filter::EventFilter;
pub use matcher::{FeedOutcome, PartialMatch};
pub use parser::{parse_query, ParseError};
pub use pattern::{ElemId, ElemMatcher, Pattern, PatternBuilder, Step, StepId, StepKind};
pub use policy::{ConsumptionPolicy, SelectionPolicy};
pub use query::{Query, QueryBuilder, QueryError};
pub use window::{WindowClose, WindowOpen, WindowSpec};
