use std::sync::Arc;

use spectre_events::{Event, Seq};

use crate::expr::EvalContext;
use crate::pattern::{ElemId, ElemMatcher, Pattern, StepKind};

/// Result of feeding one event into a [`PartialMatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// The event did not affect the match.
    Ignored,
    /// The event was bound/absorbed by element `elem`; the match is still
    /// partial.
    Absorbed {
        /// Element that absorbed the event.
        elem: ElemId,
    },
    /// The event was absorbed and completed the pattern.
    Completed {
        /// Element that absorbed the completing event.
        elem: ElemId,
    },
    /// A negation guard fired; the match (and its consumption group) is
    /// abandoned.
    Abandoned,
}

/// An incremental partial match of a [`Pattern`] (paper §3.1).
///
/// A partial match walks the pattern's steps in order. Its *completion
/// distance* δ — the minimum number of further events required to complete —
/// is the state variable of SPECTRE's Markov completion-probability model
/// (paper §3.2.1, Fig. 5).
///
/// Semantics (deterministic *skip-till-next-match*):
///
/// * events matching nothing are skipped,
/// * `One` steps bind the first matching event and advance,
/// * `Plus` steps absorb matching events greedily but yield to the *next*
///   step as soon as it matches; a trailing `Plus` completes on its first
///   match (minimal-match semantics),
/// * `Set` steps bind each member to the first event matching it, in any
///   event order; ties between members resolve in member order,
/// * negation guards of the pending step abandon the match when they fire.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::{Event, Schema};
/// use spectre_query::{Expr, FeedOutcome, PartialMatch, Pattern};
///
/// let mut schema = Schema::new();
/// let ty = schema.event_type("E");
/// let x = schema.attr("x");
/// let pattern = Arc::new(
///     Pattern::builder()
///         .one("A", Expr::current(x).lt(Expr::value(0.0)))
///         .one("B", Expr::current(x).gt(Expr::value(0.0)))
///         .build()?,
/// );
/// let mut m = PartialMatch::new(pattern);
/// assert_eq!(m.delta(), 2);
/// let a = Event::builder(ty).seq(1).attr(x, -1.0).build();
/// let b = Event::builder(ty).seq(2).attr(x, 1.0).build();
/// m.feed(&a);
/// assert_eq!(m.delta(), 1);
/// assert!(matches!(m.feed(&b), FeedOutcome::Completed { .. }));
/// # Ok::<(), spectre_query::pattern::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PartialMatch {
    pattern: Arc<Pattern>,
    step: usize,
    plus_entered: bool,
    set_mask: u128,
    bindings: Vec<Option<Event>>,
    participants: Vec<(ElemId, Seq)>,
    abandoned: bool,
    complete: bool,
}

struct Ctx<'a> {
    current: &'a Event,
    bindings: &'a [Option<Event>],
}

impl EvalContext for Ctx<'_> {
    fn current(&self) -> &Event {
        self.current
    }
    fn bound(&self, elem: ElemId) -> Option<&Event> {
        self.bindings.get(elem.index())?.as_ref()
    }
}

impl PartialMatch {
    /// Creates a fresh match at the first step.
    pub fn new(pattern: Arc<Pattern>) -> Self {
        let elems = pattern.elem_count();
        PartialMatch {
            pattern,
            step: 0,
            plus_entered: false,
            set_mask: 0,
            bindings: vec![None; elems],
            participants: Vec::new(),
            abandoned: false,
            complete: false,
        }
    }

    /// Tests whether `ev` could start a fresh match of `pattern` (i.e.
    /// matches the first step with no bindings).
    pub fn event_starts(pattern: &Pattern, ev: &Event) -> bool {
        let bindings: [Option<Event>; 0] = [];
        let ctx = Ctx {
            current: ev,
            bindings: &bindings,
        };
        match &pattern.first_step().kind {
            StepKind::One(m) | StepKind::Plus(m) => matcher_matches(m, &ctx),
            StepKind::Set(members) => members.iter().any(|m| matcher_matches(m, &ctx)),
        }
    }

    /// The match's pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// `true` once the pattern completed.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// `true` once a negation guard abandoned the match.
    pub fn is_abandoned(&self) -> bool {
        self.abandoned
    }

    /// The completion distance δ: the minimum number of additional events
    /// needed to complete the pattern (0 when complete).
    pub fn delta(&self) -> usize {
        if self.complete {
            return 0;
        }
        let steps = self.pattern.steps();
        let mut d = 0usize;
        for (i, step) in steps.iter().enumerate().skip(self.step) {
            if i == self.step {
                d += match &step.kind {
                    StepKind::One(_) => 1,
                    StepKind::Plus(_) => usize::from(!self.plus_entered),
                    StepKind::Set(members) => members.len() - (self.set_mask.count_ones() as usize),
                };
            } else {
                d += step.kind.min_events();
            }
        }
        d
    }

    /// Events absorbed so far as `(element, sequence number)` pairs, in
    /// absorption order. Kleene elements appear once per absorbed event.
    pub fn participants(&self) -> &[(ElemId, Seq)] {
        &self.participants
    }

    /// The event bound by `elem`, if any. Kleene elements report their first
    /// absorbed event.
    pub fn binding(&self, elem: ElemId) -> Option<&Event> {
        self.bindings.get(elem.index())?.as_ref()
    }

    /// Feeds the next window event into the match.
    ///
    /// Completed or abandoned matches ignore further events.
    pub fn feed(&mut self, ev: &Event) -> FeedOutcome {
        if self.complete || self.abandoned {
            return FeedOutcome::Ignored;
        }
        let steps = self.pattern.steps();

        // Negation guards of the pending step.
        {
            let ctx = Ctx {
                current: ev,
                bindings: &self.bindings,
            };
            if steps[self.step]
                .forbid
                .iter()
                .any(|g| matcher_matches(g, &ctx))
            {
                self.abandoned = true;
                return FeedOutcome::Abandoned;
            }
        }

        // If inside a Plus step, give the next step priority.
        if self.plus_entered && self.step + 1 < steps.len() {
            if let Some(elem) = self.try_apply(self.step + 1, ev) {
                return self.outcome_after_apply(elem);
            }
        }

        if let Some(elem) = self.try_apply(self.step, ev) {
            return self.outcome_after_apply(elem);
        }
        FeedOutcome::Ignored
    }

    /// Re-arms the last step after a completion: the last binding is removed
    /// and the match becomes partial again, waiting for another last-step
    /// event. Used by the `EachLast` selection policy ("first A, each B").
    ///
    /// # Panics
    ///
    /// Panics if the match is not complete or the last step is not
    /// [`StepKind::One`] (query validation enforces this).
    pub fn rearm_last(&mut self) {
        assert!(self.complete, "rearm_last on incomplete match");
        let steps = self.pattern.steps();
        let last = steps.len() - 1;
        let StepKind::One(m) = &steps[last].kind else {
            panic!("rearm_last requires a One last step");
        };
        let elem = m.elem.expect("binding element");
        self.bindings[elem.index()] = None;
        if let Some(pos) = self.participants.iter().rposition(|(e, _)| *e == elem) {
            self.participants.remove(pos);
        }
        self.complete = false;
        self.step = last;
        self.plus_entered = false;
        self.set_mask = 0;
    }

    /// Attempts to apply `ev` at step `idx`; on success records the binding,
    /// advances the step cursor as appropriate and returns the element that
    /// absorbed the event.
    fn try_apply(&mut self, idx: usize, ev: &Event) -> Option<ElemId> {
        let pattern = Arc::clone(&self.pattern);
        let steps = pattern.steps();
        let step = &steps[idx];
        let ctx = Ctx {
            current: ev,
            bindings: &self.bindings,
        };
        match &step.kind {
            StepKind::One(m) => {
                if !matcher_matches(m, &ctx) {
                    return None;
                }
                let elem = m.elem.expect("binding element");
                self.bind(elem, ev);
                self.step = idx + 1;
                self.plus_entered = false;
                self.set_mask = 0;
                if self.step == steps.len() {
                    self.complete = true;
                }
                Some(elem)
            }
            StepKind::Plus(m) => {
                if !matcher_matches(m, &ctx) {
                    return None;
                }
                let elem = m.elem.expect("binding element");
                let first = self.step != idx || !self.plus_entered;
                if first {
                    self.bind(elem, ev);
                } else {
                    // Subsequent absorption: record participation, keep the
                    // first event as the element's binding.
                    self.participants.push((elem, ev.seq()));
                }
                self.step = idx;
                self.plus_entered = true;
                self.set_mask = 0;
                if idx == steps.len() - 1 {
                    // Trailing Plus: minimal-match completion.
                    self.complete = true;
                }
                Some(elem)
            }
            StepKind::Set(members) => {
                let mask = if idx == self.step { self.set_mask } else { 0 };
                for (i, m) in members.iter().enumerate() {
                    if mask & (1u128 << i) != 0 {
                        continue;
                    }
                    if matcher_matches(m, &ctx) {
                        let elem = m.elem.expect("binding element");
                        self.bind(elem, ev);
                        if idx != self.step {
                            // advancing from a Plus into this set
                            self.set_mask = 0;
                        }
                        self.step = idx;
                        self.plus_entered = false;
                        self.set_mask |= 1u128 << i;
                        if self.set_mask.count_ones() as usize == members.len() {
                            self.step = idx + 1;
                            self.set_mask = 0;
                            if self.step == steps.len() {
                                self.complete = true;
                            }
                        }
                        return Some(elem);
                    }
                }
                None
            }
        }
    }

    fn outcome_after_apply(&self, elem: ElemId) -> FeedOutcome {
        if self.complete {
            FeedOutcome::Completed { elem }
        } else {
            FeedOutcome::Absorbed { elem }
        }
    }

    fn bind(&mut self, elem: ElemId, ev: &Event) {
        self.bindings[elem.index()] = Some(ev.clone());
        self.participants.push((elem, ev.seq()));
    }
}

fn matcher_matches(m: &ElemMatcher, ctx: &dyn EvalContext) -> bool {
    if let Some(ty) = m.event_type {
        if ctx.current().event_type() != ty {
            return false;
        }
    }
    m.pred.matches(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ElemRef, Expr};
    use spectre_events::{AttrKey, EventType, Schema};

    fn schema() -> (Schema, AttrKey) {
        let mut s = Schema::new();
        s.event_type("E");
        let x = s.attr("x");
        (s, x)
    }

    fn ev(seq: Seq, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(seq)
            .attr(AttrKey::new(0), x)
            .build()
    }

    fn x_is(v: f64) -> Expr {
        Expr::current(AttrKey::new(0)).eq_(Expr::value(v))
    }

    fn seq_pattern(vals: &[f64]) -> Arc<Pattern> {
        let mut b = Pattern::builder();
        for (i, v) in vals.iter().enumerate() {
            b = b.one(&format!("S{i}"), x_is(*v));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn sequence_completes_in_order_skipping_noise() {
        let p = seq_pattern(&[1.0, 2.0, 3.0]);
        let mut m = PartialMatch::new(p);
        assert_eq!(m.delta(), 3);
        assert_eq!(m.feed(&ev(1, 9.0)), FeedOutcome::Ignored);
        assert!(matches!(m.feed(&ev(2, 1.0)), FeedOutcome::Absorbed { .. }));
        assert_eq!(m.delta(), 2);
        // out-of-order value for step 3 is skipped while waiting for step 2
        assert_eq!(m.feed(&ev(3, 3.0)), FeedOutcome::Ignored);
        assert!(matches!(m.feed(&ev(4, 2.0)), FeedOutcome::Absorbed { .. }));
        assert_eq!(m.delta(), 1);
        assert!(matches!(m.feed(&ev(5, 3.0)), FeedOutcome::Completed { .. }));
        assert_eq!(m.delta(), 0);
        assert!(m.is_complete());
        let seqs: Vec<_> = m.participants().iter().map(|(_, s)| *s).collect();
        assert_eq!(seqs, vec![2, 4, 5]);
    }

    #[test]
    fn completed_match_ignores_further_events() {
        let p = seq_pattern(&[1.0]);
        let mut m = PartialMatch::new(p);
        assert!(matches!(m.feed(&ev(1, 1.0)), FeedOutcome::Completed { .. }));
        assert_eq!(m.feed(&ev(2, 1.0)), FeedOutcome::Ignored);
    }

    #[test]
    fn kleene_absorbs_then_yields_to_next_step() {
        // A(1) B+(2) C(3)
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .plus("B", x_is(2.0))
                .one("C", x_is(3.0))
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p.clone());
        m.feed(&ev(1, 1.0));
        assert_eq!(m.delta(), 2); // A bound; still needs ≥1 B and C
        assert!(matches!(m.feed(&ev(2, 2.0)), FeedOutcome::Absorbed { .. }));
        assert_eq!(m.delta(), 1); // plus entered, only C left
        assert!(matches!(m.feed(&ev(3, 2.0)), FeedOutcome::Absorbed { .. }));
        assert_eq!(m.delta(), 1);
        assert!(matches!(m.feed(&ev(4, 3.0)), FeedOutcome::Completed { .. }));
        let seqs: Vec<_> = m.participants().iter().map(|(_, s)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        // B's binding is its first absorbed event
        let b = p.elem_by_name("B").unwrap();
        assert_eq!(m.binding(b).unwrap().seq(), 2);
    }

    #[test]
    fn kleene_requires_at_least_one() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .plus("B", x_is(2.0))
                .one("C", x_is(3.0))
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p);
        m.feed(&ev(1, 1.0));
        // C before any B: the next step (B) hasn't been entered, so C is
        // ignored (B+ needs at least one event).
        assert_eq!(m.feed(&ev(2, 3.0)), FeedOutcome::Ignored);
        assert!(!m.is_complete());
    }

    #[test]
    fn trailing_kleene_completes_on_first_match() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .plus("B", x_is(2.0))
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p);
        m.feed(&ev(1, 1.0));
        assert!(matches!(m.feed(&ev(2, 2.0)), FeedOutcome::Completed { .. }));
    }

    #[test]
    fn set_matches_in_any_order() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(0.0))
                .set(vec![
                    ("X1".into(), x_is(1.0)),
                    ("X2".into(), x_is(2.0)),
                    ("X3".into(), x_is(3.0)),
                ])
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p.clone());
        m.feed(&ev(1, 0.0));
        assert_eq!(m.delta(), 3);
        assert!(matches!(m.feed(&ev(2, 3.0)), FeedOutcome::Absorbed { .. }));
        assert_eq!(m.delta(), 2);
        assert_eq!(m.feed(&ev(3, 3.0)), FeedOutcome::Ignored); // already matched
        assert!(matches!(m.feed(&ev(4, 1.0)), FeedOutcome::Absorbed { .. }));
        assert!(matches!(m.feed(&ev(5, 2.0)), FeedOutcome::Completed { .. }));
        let x3 = p.elem_by_name("X3").unwrap();
        assert_eq!(m.binding(x3).unwrap().seq(), 2);
    }

    #[test]
    fn set_member_tie_breaks_by_member_order() {
        let p = Arc::new(
            Pattern::builder()
                .set(vec![("X1".into(), x_is(1.0)), ("X2".into(), x_is(1.0))])
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p.clone());
        let FeedOutcome::Absorbed { elem } = m.feed(&ev(1, 1.0)) else {
            panic!("expected absorb");
        };
        assert_eq!(elem, p.elem_by_name("X1").unwrap());
        let FeedOutcome::Completed { elem } = m.feed(&ev(2, 1.0)) else {
            panic!("expected completion");
        };
        assert_eq!(elem, p.elem_by_name("X2").unwrap());
    }

    #[test]
    fn negation_guard_abandons() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .forbid("C", x_is(9.0))
                .one("B", x_is(2.0))
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p);
        m.feed(&ev(1, 1.0));
        assert_eq!(m.feed(&ev(2, 9.0)), FeedOutcome::Abandoned);
        assert!(m.is_abandoned());
        assert_eq!(m.feed(&ev(3, 2.0)), FeedOutcome::Ignored);
    }

    #[test]
    fn guard_not_active_before_its_step() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .forbid("C", x_is(9.0))
                .one("B", x_is(2.0))
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p);
        // the guard is attached to step B; while waiting for A it must not fire
        assert_eq!(m.feed(&ev(1, 9.0)), FeedOutcome::Ignored);
        assert!(!m.is_abandoned());
    }

    #[test]
    fn cross_element_predicate() {
        let (_s, x) = schema();
        // B.x > A.x
        let p = Arc::new(
            Pattern::builder()
                .one("A", Expr::truth())
                .one(
                    "B",
                    Expr::current(x).gt(Expr::attr(ElemRef::Bound(ElemId::new(0)), x)),
                )
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p);
        m.feed(&ev(1, 5.0));
        assert_eq!(m.feed(&ev(2, 4.0)), FeedOutcome::Ignored);
        assert!(matches!(m.feed(&ev(3, 6.0)), FeedOutcome::Completed { .. }));
    }

    #[test]
    fn event_starts_checks_first_step_only() {
        let p = Pattern::builder()
            .one("A", x_is(1.0))
            .one("B", x_is(2.0))
            .build()
            .unwrap();
        assert!(PartialMatch::event_starts(&p, &ev(1, 1.0)));
        assert!(!PartialMatch::event_starts(&p, &ev(1, 2.0)));
        let set = Pattern::builder()
            .set(vec![("X".into(), x_is(1.0)), ("Y".into(), x_is(2.0))])
            .build()
            .unwrap();
        assert!(PartialMatch::event_starts(&set, &ev(1, 2.0)));
        assert!(!PartialMatch::event_starts(&set, &ev(1, 3.0)));
    }

    #[test]
    fn rearm_last_reopens_completed_match() {
        let p = Arc::new(
            Pattern::builder()
                .one("A", x_is(1.0))
                .one("B", x_is(2.0))
                .build()
                .unwrap(),
        );
        let mut m = PartialMatch::new(p.clone());
        m.feed(&ev(1, 1.0));
        assert!(matches!(m.feed(&ev(2, 2.0)), FeedOutcome::Completed { .. }));
        m.rearm_last();
        assert!(!m.is_complete());
        assert_eq!(m.delta(), 1);
        // A binding survives, B is free again
        assert_eq!(m.binding(p.elem_by_name("A").unwrap()).unwrap().seq(), 1);
        assert!(m.binding(p.elem_by_name("B").unwrap()).is_none());
        assert!(matches!(m.feed(&ev(3, 2.0)), FeedOutcome::Completed { .. }));
        let seqs: Vec<_> = m.participants().iter().map(|(_, s)| *s).collect();
        assert_eq!(seqs, vec![1, 3]);
    }

    #[test]
    fn delta_for_q1_like_pattern_decreases_monotonically() {
        let vals: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let p = seq_pattern(&vals);
        let mut m = PartialMatch::new(p);
        let mut prev = m.delta();
        assert_eq!(prev, 40);
        for (i, v) in vals.iter().enumerate() {
            m.feed(&ev(i as u64, *v));
            let d = m.delta();
            assert_eq!(d, prev - 1);
            prev = d;
        }
        assert!(m.is_complete());
    }
}
